//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use rand::Rng;

/// Builds a record by directly encoding every vehicle (the fast path the
/// experiment harness uses), for comparison against protocol-produced
/// records.
pub fn direct_record(
    scheme: &EncodingScheme,
    location: LocationId,
    period: PeriodId,
    size: BitmapSize,
    vehicles: &[VehicleSecrets],
) -> TrafficRecord {
    let mut record = TrafficRecord::new(location, period, size);
    for v in vehicles {
        record.encode(scheme, v);
    }
    record
}

/// Generates `n` vehicles.
pub fn fleet<R: Rng + ?Sized>(rng: &mut R, n: usize, s: u32) -> Vec<VehicleSecrets> {
    (0..n).map(|_| VehicleSecrets::generate(rng, s)).collect()
}
