//! Integration coverage for the extension features: calendar queries,
//! route-aware trips, the k-way estimator, error bars, and the city matrix.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::kway::KwayEstimator;
use ptm_core::params::SystemParams;
use ptm_core::point::PointEstimator;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_integration_tests::fleet;
use ptm_traffic::generate::fill_transients;
use ptm_traffic::periods::{Calendar, Weekday};
use ptm_traffic::sioux_falls;
use ptm_traffic::trips::TripSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

#[test]
fn calendar_selected_queries_estimate_the_right_populations() {
    // Three weeks of daily records with a Monday-only population: querying
    // Mondays finds it, querying all days finds nothing.
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0xCAFE_D00D, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(77);
    let calendar = Calendar::new(Weekday::Monday, 21);
    let location = LocationId::new(8);
    let vendors = fleet(&mut rng, 400, 3);
    let size = params.bitmap_size(3_500.0);

    let records: Vec<TrafficRecord> = calendar
        .all_periods()
        .into_iter()
        .map(|period| {
            let mut record = TrafficRecord::new(location, period, size);
            if calendar.weekday_of(period) == Weekday::Monday {
                for v in &vendors {
                    record.encode(&scheme, v);
                }
            }
            fill_transients(&mut record, 3_000, &mut rng);
            record
        })
        .collect();

    let mondays: Vec<TrafficRecord> = calendar
        .periods_on(Weekday::Monday)
        .into_iter()
        .map(|p| records[p.get() as usize].clone())
        .collect();
    assert_eq!(mondays.len(), 3);
    let est = PointEstimator::new()
        .estimate(&mondays)
        .expect("sized records");
    assert!((est - 400.0).abs() / 400.0 < 0.15, "Monday estimate {est}");

    let everything = PointEstimator::new()
        .estimate(&records)
        .expect("sized records");
    assert!(
        everything.abs() < 60.0,
        "all-days estimate {everything} should be ~0"
    );
}

#[test]
fn routed_commuters_are_p2p_persistent_along_their_whole_route() {
    // A fleet of commuters all driving the same OD pair: every node on the
    // route sees them as point-persistent, and any two route nodes see them
    // as p2p-persistent.
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0x70C4, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(5);
    let network = sioux_falls::road_network();
    let path = network
        .shortest_path(
            ptm_traffic::network::NodeId::new(0),
            ptm_traffic::network::NodeId::new(19),
        )
        .expect("connected");
    assert!(path.nodes.len() >= 3, "need intermediate nodes");

    let commuters = fleet(&mut rng, 300, 3);
    let size = params.bitmap_size(2_000.0);
    let t = 4u32;
    // location id = node index + 1; one record per route node per period.
    let mut per_node_records: Vec<Vec<TrafficRecord>> = vec![Vec::new(); path.nodes.len()];
    for period in 0..t {
        for (k, node) in path.nodes.iter().enumerate() {
            let loc = LocationId::new(node.index() as u64 + 1);
            let mut record = TrafficRecord::new(loc, PeriodId::new(period), size);
            for v in &commuters {
                record.encode(&scheme, v);
            }
            fill_transients(&mut record, 1_500, &mut rng);
            per_node_records[k].push(record);
        }
    }
    // Point persistent at the route midpoint.
    let mid = path.nodes.len() / 2;
    let est = PointEstimator::new()
        .estimate(&per_node_records[mid])
        .expect("estimate");
    assert!(
        (est - 300.0).abs() / 300.0 < 0.15,
        "midpoint estimate {est}"
    );
    // P2p persistent between first and last route nodes.
    let p2p = ptm_core::p2p::PointToPointEstimator::new(3)
        .estimate(
            &per_node_records[0],
            &per_node_records[path.nodes.len() - 1],
        )
        .expect("estimate");
    assert!(
        (p2p - 300.0).abs() / 300.0 < 0.2,
        "endpoint p2p estimate {p2p}"
    );
}

#[test]
fn trip_sampler_feeds_realistic_volumes() {
    // Sampling ~3606 trips (1% of the table) gives per-node pass counts
    // roughly proportional to involving volumes.
    let network = sioux_falls::road_network();
    let table = sioux_falls::trip_table();
    let sampler = TripSampler::new(&table);
    let mut rng = ChaCha12Rng::seed_from_u64(6);
    let mut passes = vec![0u64; sioux_falls::NUM_NODES];
    for _ in 0..3_606 {
        let trip = sampler.sample_trip(&network, &mut rng).expect("connected");
        for node in &trip.nodes {
            passes[node.index()] += 1;
        }
    }
    // Node 10 (index 9) is the busiest interchange; it must lead.
    let max_idx = (0..sioux_falls::NUM_NODES)
        .max_by_key(|&i| passes[i])
        .expect("non-empty");
    assert!(
        passes[9] >= passes[max_idx] * 7 / 10,
        "node 10 should be near the top: {passes:?}"
    );
}

#[test]
fn kway_and_halves_agree_through_public_api() {
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0x4A4A, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let location = LocationId::new(2);
    let commons = fleet(&mut rng, 800, 3);
    let size = params.bitmap_size(5_000.0);
    let records: Vec<TrafficRecord> = (0..8u32)
        .map(|p| {
            let mut record = TrafficRecord::new(location, PeriodId::new(p), size);
            for v in &commons {
                record.encode(&scheme, v);
            }
            fill_transients(&mut record, 4_000, &mut rng);
            record
        })
        .collect();
    let halves = PointEstimator::new().estimate(&records).expect("estimate");
    let kway = KwayEstimator::new(4).estimate(&records).expect("estimate");
    assert!((halves - 800.0).abs() / 800.0 < 0.1, "halves {halves}");
    assert!((kway - 800.0).abs() / 800.0 < 0.1, "kway {kway}");
    // Error bars bracket the truth at 3 sigma (conservative bars).
    let with_err = PointEstimator::new()
        .estimate_with_error(&records)
        .expect("estimate");
    let (lo, hi) = with_err.interval(3.0);
    assert!(
        lo <= 800.0 && 800.0 <= hi,
        "interval [{lo}, {hi}] misses truth"
    );
}
