//! Seeded chaos tests for the store/RPC stack: deterministic fault plans
//! drive disk-full and fsync failures, connection resets, truncated frames,
//! and overload bursts against a real daemon on a loopback socket.
//!
//! The invariants under test, across every seed:
//!
//! - **Zero acked-record loss**: a record the client saw acked is on disk
//!   after any crash/restart sequence — the served ack is never ahead of
//!   durable state.
//! - **Shedding is explicit**: an overloaded or degraded daemon answers
//!   `Overloaded` with a retry hint instead of hanging or silently dropping.
//! - **Recovery is exact**: once the faults clear, estimates served over the
//!   wire match an in-process [`CentralServer`] fed the same records,
//!   bit for bit.
//!
//! Timing-sensitive tests share the process-global `ptm-obs` registry and
//! loopback ports, so everything serializes on [`lock`]. The whole suite is
//! budgeted to stay well under a minute (it is part of `scripts/ci.sh`).

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_fault::{sites, FaultAction, FaultPlan, Rule};
use ptm_integration_tests::{direct_record, fleet};
use ptm_net::CentralServer;
use ptm_rpc::proto::{decode_response, encode_request};
use ptm_rpc::{
    read_frame, write_frame, ClientConfig, ClientError, ErrorCode, ReadOutcome, Request, Response,
    RpcClient, RpcServer, ServerConfig, DEFAULT_MAX_FRAME_LEN,
};
use ptm_store::SyncPolicy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Barrier, Mutex, MutexGuard};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn temp_archive(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ptm-chaos-{}-{name}.ptma", std::process::id()));
    // The path may hold a leftover v1 file or a v2 segment directory.
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn cleanup_archive(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir_all(path);
}

/// Every `seg-*.ptms` file in the archive directory, lowest id first (the
/// zero-padded names sort numerically). The last entry is the active
/// segment — crash simulations tear its tail, exactly where a dying
/// process would leave a half-written frame.
fn segment_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("archive dir")
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("seg-") && name.ends_with(".ptms"))
        })
        .collect();
    segments.sort();
    segments
}

/// The unsealed (active) segment's file, per the durable manifest. Not
/// simply the highest-numbered file: a compacted segment's id exceeds the
/// active segment's, so after a merge the write head is mid-list.
fn active_segment_file(dir: &Path) -> PathBuf {
    let manifest = ptm_store::Manifest::load(dir)
        .expect("manifest readable")
        .expect("manifest present");
    let active = manifest
        .segments
        .iter()
        .find(|s| !s.sealed)
        .expect("an active segment");
    dir.join(format!("seg-{:08}.ptms", active.id))
}

/// A small deterministic campaign (chaos runs restart daemons repeatedly,
/// so records stay light: 40 persistent + 80 transient vehicles, 1 KiB
/// bitmaps).
fn small_campaign(location: u64, periods: u32, seed: u64) -> Vec<TrafficRecord> {
    let scheme = EncodingScheme::new(11, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let persistent = fleet(&mut rng, 40, 3);
    let size = BitmapSize::new(1024).expect("pow2");
    (0..periods)
        .map(|p| {
            let transient = fleet(&mut rng, 80, 3);
            let mut all = persistent.clone();
            all.extend(transient);
            direct_record(
                &scheme,
                LocationId::new(location),
                PeriodId::new(p),
                size,
                &all,
            )
        })
        .collect()
}

fn reference_for(records: &[TrafficRecord]) -> CentralServer {
    let reference = CentralServer::new(3);
    for record in records {
        reference.submit(record.clone()).expect("reference submit");
    }
    reference
}

/// Asserts every estimate kind matches the in-process reference bit for bit.
fn assert_estimates_exact(
    client: &mut RpcClient,
    reference: &CentralServer,
    locations: &[u64],
    periods: u32,
    context: &str,
) {
    let periods: Vec<PeriodId> = (0..periods).map(PeriodId::new).collect();
    for &loc in locations {
        let location = LocationId::new(loc);
        let over_wire = client.query_point(location, &periods).expect("point");
        let in_process = reference
            .estimate_point_persistent(location, &periods)
            .expect("point");
        assert_eq!(
            over_wire.to_bits(),
            in_process.to_bits(),
            "point at {loc} ({context})"
        );
        let over_wire = client.query_volume(location, periods[0]).expect("volume");
        let in_process = reference
            .estimate_volume(location, periods[0])
            .expect("volume");
        assert_eq!(
            over_wire.to_bits(),
            in_process.to_bits(),
            "volume at {loc} ({context})"
        );
    }
    if locations.len() >= 2 {
        let a = LocationId::new(locations[0]);
        let b = LocationId::new(locations[1]);
        let over_wire = client.query_p2p(a, b, &periods).expect("p2p");
        let in_process = reference
            .estimate_p2p_persistent(a, b, &periods)
            .expect("p2p");
        assert_eq!(over_wire.to_bits(), in_process.to_bits(), "p2p ({context})");
    }
}

/// An upload that tolerates the two application-level failure shapes chaos
/// injects on the wire: a request chopped mid-frame earns a `Malformed`
/// answer (the real client would resend), and everything transport-level is
/// already retried inside [`RpcClient`].
fn upload_acked(client: &mut RpcClient, record: &TrafficRecord, context: &str) {
    let mut resends = 5u32;
    loop {
        match client.upload(record) {
            Ok(summary) => {
                assert_eq!(
                    summary.accepted + summary.duplicates,
                    1,
                    "one upload, one outcome ({context})"
                );
                return;
            }
            // The server read a truncated request and said so; resend.
            Err(ClientError::Server {
                code: ErrorCode::Malformed,
                ..
            }) if resends > 0 => resends -= 1,
            Err(err) => panic!("upload failed ({context}): {err}"),
        }
    }
}

// ---------------------------------------------------------------------------
// 1. The seeded fault storm: disk-full, fsync failure, connection reset,
//    truncated frames, and a torn crash tail — across five fixed seeds.
// ---------------------------------------------------------------------------

fn storm_plan(seed: u64, fsync: bool) -> FaultPlan {
    let mut builder = FaultPlan::builder(seed)
        // The second committed batch hits a short write, then ENOSPC on the
        // continuation: the commit fails mid-frame and must roll back.
        .rule(sites::STORE_WRITE, Rule::nth(2, FaultAction::Short(4)))
        .rule(
            sites::STORE_WRITE,
            Rule::nth(3, FaultAction::Error(io::ErrorKind::StorageFull)),
        )
        // Some response frame dies mid-write: the ack is lost after the
        // commit, and the retry must land as an idempotent duplicate.
        .rule(sites::RPC_WRITE, Rule::nth(4, FaultAction::Reset))
        // Some request read dies: either an idle poll (silent close) or a
        // frame mid-read (the server answers Malformed and closes).
        .rule(sites::RPC_READ, Rule::nth(6, FaultAction::Reset))
        // And some later read sees a truncated stream (injected EOF).
        .rule(sites::RPC_READ, Rule::nth(8, FaultAction::Truncate));
    if fsync {
        // Under SyncPolicy::Fsync a commit is only durable after fsync;
        // fail one of those too.
        builder = builder.rule(
            sites::STORE_SYNC,
            Rule::nth(2, FaultAction::Error(io::ErrorKind::Other)),
        );
    }
    builder.build().expect("storm plan")
}

fn storm_server_config(plan: Option<&FaultPlan>, fsync: bool) -> ServerConfig {
    ServerConfig {
        s: 3,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        retry_after_ms: 15,
        degraded_after_failures: 4,
        sync_policy: if fsync {
            SyncPolicy::Fsync
        } else {
            SyncPolicy::Flush
        },
        fault_plan: plan.cloned(),
        ..ServerConfig::default()
    }
}

fn storm_client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(2),
        max_attempts: 10,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(30),
        jitter_seed: seed,
        deadline: Some(Duration::from_secs(10)),
        breaker_threshold: 0,
        ..ClientConfig::default()
    }
}

fn run_storm(seed: u64) {
    let fsync = seed % 2 == 1;
    let path = temp_archive(&format!("storm-{seed}"));
    let plan = storm_plan(seed, fsync);
    let locations: Vec<u64> = vec![11, 12, 13];
    let all: Vec<TrafficRecord> = locations
        .iter()
        .flat_map(|&loc| small_campaign(loc, 3, seed.wrapping_mul(1000) + loc))
        .collect();

    // Phase 1: upload under fire. Every upload below must end acked even
    // though commits fail mid-frame, acks get reset, and reads get chopped.
    let mut acked = 0usize;
    {
        let server = RpcServer::start(
            "127.0.0.1:0",
            &path,
            storm_server_config(Some(&plan), fsync),
        )
        .expect("start");
        let mut client =
            RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("client");
        for record in &all[..5] {
            upload_acked(&mut client, record, &format!("seed {seed} phase 1"));
            acked += 1;
        }
        assert!(
            !server.degraded(),
            "transient faults must not trip degraded mode (seed {seed})"
        );
        server.shutdown().expect("shutdown");
    }

    // Crash simulation: a torn frame header lands on the tail of the
    // active segment, as if the process died mid-append.
    {
        use std::io::Write as _;
        let active = segment_files(&path).pop().expect("active segment");
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(active)
            .expect("open for tearing");
        file.write_all(&[0x40, 0x00, 0x00, 0x00, 0xAB, 0xCD])
            .expect("torn tail");
    }

    // Phase 2: restart on the damaged file, with the same plan (schedules
    // carry across the restart). Replay must hold exactly the acked set.
    {
        let server = RpcServer::start(
            "127.0.0.1:0",
            &path,
            storm_server_config(Some(&plan), fsync),
        )
        .expect("restart");
        let replay = server.replay_report();
        assert_eq!(
            replay.records, acked,
            "zero acked-record loss across the crash (seed {seed})"
        );
        assert!(
            replay.torn_bytes > 0,
            "the torn tail must be detected and discarded (seed {seed})"
        );
        let mut client =
            RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("client");
        for record in &all[5..] {
            upload_acked(&mut client, record, &format!("seed {seed} phase 2"));
        }
        // An RSU that lost its ack log re-sends everything; the daemon must
        // absorb the full campaign as duplicates without re-archiving.
        let summary = client.upload_batch(&all).expect("idempotent re-upload");
        assert_eq!(summary.accepted, 0, "nothing new in the re-upload");
        assert_eq!(summary.duplicates as usize, all.len());
        server.shutdown().expect("shutdown");
    }

    // Phase 3: a clean daemon (no faults) on the same archive answers every
    // estimate exactly like an in-process engine fed the same records.
    {
        let server = RpcServer::start("127.0.0.1:0", &path, storm_server_config(None, fsync))
            .expect("clean restart");
        let replay = server.replay_report();
        assert_eq!(
            replay.records,
            all.len(),
            "full campaign on disk (seed {seed})"
        );
        assert_eq!(replay.torn_bytes, 0, "clean shutdown left no torn tail");
        assert_eq!(server.record_count(), all.len());
        let reference = reference_for(&all);
        let mut client =
            RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("client");
        assert_estimates_exact(
            &mut client,
            &reference,
            &locations,
            3,
            &format!("seed {seed} post-recovery"),
        );
        server.shutdown().expect("shutdown");
    }
    cleanup_archive(&path);
}

#[test]
fn seeded_fault_storm_loses_no_acked_record() {
    let _guard = lock();
    for seed in [3, 8, 42, 1337, 9002] {
        run_storm(seed);
    }
}

// ---------------------------------------------------------------------------
// 2. Overload burst: concurrent uncached estimates against a gate of one.
// ---------------------------------------------------------------------------

#[test]
fn overload_burst_sheds_explicitly_and_answers_the_rest_exactly() {
    let _guard = lock();
    let path = temp_archive("burst");
    let plan = FaultPlan::builder(7)
        // Every estimate takes 150 ms, so a synchronized burst of six
        // identical queries piles onto the single in-flight slot.
        .rule(
            sites::RPC_ESTIMATE,
            Rule::every(1, 1, FaultAction::Delay(Duration::from_millis(150))),
        )
        .build()
        .expect("burst plan");
    let config = ServerConfig {
        s: 3,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        cache_capacity: 0, // every query computes; nothing hides behind the cache
        max_inflight_estimates: 1,
        retry_after_ms: 25,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let addr = server.local_addr();

    let records = small_campaign(31, 2, 4242);
    let mut client = RpcClient::connect(addr, ClientConfig::default()).expect("client");
    client.upload_batch(&records).expect("upload");

    ptm_obs::enable_metrics();
    let shed_before = ptm_obs::registry().counter("rpc.shed.estimates").get();

    // Six raw-frame clients fire the same uncached query at the same
    // instant. No retries here: each thread records the daemon's one
    // answer, served or shed.
    let periods = vec![PeriodId::new(0), PeriodId::new(1)];
    let request = encode_request(&Request::QueryPoint {
        location: LocationId::new(31),
        periods: periods.clone(),
    });
    let barrier = Barrier::new(6);
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let request = &request;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .expect("timeout");
                    barrier.wait();
                    write_frame(&mut stream, request).expect("send");
                    match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("read") {
                        ReadOutcome::Frame(payload) => decode_response(&payload).expect("decode"),
                        other => panic!("expected a response frame, got {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    let reference = reference_for(&records);
    let expected = reference
        .estimate_point_persistent(LocationId::new(31), &periods)
        .expect("reference point");
    let mut served = 0usize;
    let mut shed = 0usize;
    for response in &responses {
        match response {
            Response::Estimate(value) => {
                served += 1;
                assert_eq!(
                    value.to_bits(),
                    expected.to_bits(),
                    "served answers stay bit-exact under load"
                );
            }
            Response::Overloaded { retry_after_ms } => {
                shed += 1;
                assert_eq!(
                    *retry_after_ms, 25,
                    "shed responses carry the configured hint"
                );
            }
            other => panic!("expected Estimate or Overloaded, got {other:?}"),
        }
    }
    assert_eq!(served + shed, 6);
    assert!(served >= 1, "the gate admits at least one query");
    assert!(shed >= 1, "a synchronized burst against one slot must shed");
    let shed_after = ptm_obs::registry().counter("rpc.shed.estimates").get();
    assert!(
        shed_after >= shed_before + shed as u64,
        "rpc.shed.estimates counts every shed: {shed_before} -> {shed_after} ({shed} observed)"
    );
    ptm_obs::set_metrics_enabled(false);

    // A normal retrying client gets through once the burst is over.
    let over_wire = client
        .query_point(LocationId::new(31), &periods)
        .expect("post-burst query");
    assert_eq!(over_wire.to_bits(), expected.to_bits());
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

// ---------------------------------------------------------------------------
// 3. Degraded mode: a failing archive backend sheds uploads, keeps serving
//    queries, and recovers through the cooldown-gated reopen probe.
// ---------------------------------------------------------------------------

#[test]
fn degraded_mode_sheds_uploads_serves_queries_then_recovers() {
    let _guard = lock();
    let path = temp_archive("degraded");
    // The second and third commits fail; everything after is healthy.
    let plan = FaultPlan::builder(99)
        .rule(
            sites::STORE_WRITE,
            Rule::every(2, 1, FaultAction::Error(io::ErrorKind::Other)).times(2),
        )
        .build()
        .expect("degraded plan");
    let config = ServerConfig {
        s: 3,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        retry_after_ms: 10,
        degraded_after_failures: 2,
        degraded_cooldown: Duration::from_millis(150),
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let records = small_campaign(21, 2, 2121);
    let reference = reference_for(&records);

    ptm_obs::enable_metrics();
    let entries_before = ptm_obs::registry()
        .counter("store.recovery.degraded_entries")
        .get();
    let reopens_before = ptm_obs::registry().counter("store.recovery.reopens").get();

    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let addr = server.local_addr();
    let mut client = RpcClient::connect(
        addr,
        ClientConfig {
            max_attempts: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            breaker_threshold: 0,
            ..ClientConfig::default()
        },
    )
    .expect("client");
    // A client with a single attempt surfaces each shed directly.
    let mut one_shot = RpcClient::connect(
        addr,
        ClientConfig {
            max_attempts: 1,
            breaker_threshold: 0,
            ..ClientConfig::default()
        },
    )
    .expect("one-shot client");

    // Commit 1 succeeds; commits 2 and 3 hit the injected backend failures
    // and cross the degraded threshold.
    client.upload(&records[0]).expect("first upload");
    for round in 0..2 {
        match one_shot.upload(&records[1]) {
            Err(ClientError::Exhausted { last, .. }) => {
                assert!(
                    last.contains("overloaded"),
                    "storage failure surfaces as an explicit shed, got {last:?} (round {round})"
                );
            }
            other => panic!("expected a shed, got {other:?} (round {round})"),
        }
    }
    assert!(
        server.degraded(),
        "two consecutive commit failures trip degraded mode"
    );
    assert!(
        client.ping().expect("ping").degraded,
        "Pong reports degraded"
    );

    // Degraded means read-only, not down: queries still serve, exactly.
    let over_wire = client
        .query_volume(LocationId::new(21), PeriodId::new(0))
        .expect("query while degraded");
    let in_process = reference
        .estimate_volume(LocationId::new(21), PeriodId::new(0))
        .expect("reference volume");
    assert_eq!(over_wire.to_bits(), in_process.to_bits());

    // Inside the cooldown the daemon sheds without touching the backend.
    assert!(
        one_shot.upload(&records[1]).is_err(),
        "uploads inside the cooldown are shed"
    );
    assert!(server.degraded());

    // After the cooldown the next upload triggers the reopen probe; the
    // fault budget is exhausted, so ingest resumes and the record lands.
    std::thread::sleep(Duration::from_millis(250));
    let summary = client.upload(&records[1]).expect("upload after recovery");
    assert_eq!(summary.accepted, 1);
    assert!(!server.degraded(), "successful probe leaves degraded mode");
    let info = client.ping().expect("ping");
    assert!(!info.degraded);
    assert_eq!(info.records, 2);

    let entries_after = ptm_obs::registry()
        .counter("store.recovery.degraded_entries")
        .get();
    let reopens_after = ptm_obs::registry().counter("store.recovery.reopens").get();
    assert_eq!(entries_after, entries_before + 1, "one degraded entry");
    assert_eq!(reopens_after, reopens_before + 1, "one recovery reopen");
    ptm_obs::set_metrics_enabled(false);
    server.shutdown().expect("shutdown");

    // A clean restart replays both records and answers exactly.
    let server = RpcServer::start(
        "127.0.0.1:0",
        &path,
        ServerConfig {
            s: 3,
            read_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("clean restart");
    assert_eq!(
        server.replay_report().records,
        2,
        "both acked records survived"
    );
    let mut client =
        RpcClient::connect(server.local_addr(), ClientConfig::default()).expect("client");
    assert_estimates_exact(&mut client, &reference, &[21], 2, "post-degraded recovery");
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

// ---------------------------------------------------------------------------
// 4. Segment-lifecycle storms: kills landing inside rotation (seal) and
//    compaction (manifest swap) must never lose an acked record.
// ---------------------------------------------------------------------------

/// Server config for the segment-lifecycle storms: a tiny rotation
/// threshold (frames are ~150 bytes, so every third commit rotates) and,
/// when `compact_ms` is set, an aggressive maintenance cadence.
fn lifecycle_server_config(
    plan: Option<&FaultPlan>,
    rotate_bytes: u64,
    compact_ms: u64,
) -> ServerConfig {
    ServerConfig {
        rotate_bytes,
        compact_interval: Duration::from_millis(compact_ms),
        ..storm_server_config(plan, false)
    }
}

fn run_rotation_storm(seed: u64) {
    let path = temp_archive(&format!("rotate-{seed}"));
    // The first two seal attempts fail: those rotations defer (the commit
    // that triggered them still acks) and retry on a later commit.
    let plan = FaultPlan::builder(seed)
        .rule(
            sites::STORE_SEAL,
            Rule::every(1, 1, FaultAction::Error(io::ErrorKind::Other)).times(2),
        )
        .build()
        .expect("rotation plan");
    let locations: Vec<u64> = vec![41, 42];
    let all: Vec<TrafficRecord> = locations
        .iter()
        .flat_map(|&loc| small_campaign(loc, 4, seed.wrapping_mul(77) + loc))
        .collect();

    // Phase 1: upload one record at a time so every commit is a rotation
    // candidate; every upload must end acked despite the failing seals.
    {
        let server = RpcServer::start(
            "127.0.0.1:0",
            &path,
            lifecycle_server_config(Some(&plan), 400, 0),
        )
        .expect("start");
        let mut client =
            RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("client");
        for record in &all {
            upload_acked(&mut client, record, &format!("rotation seed {seed}"));
        }
        assert!(
            !server.degraded(),
            "deferred rotations must not trip degraded mode (seed {seed})"
        );
        server.shutdown().expect("shutdown");
    }

    // Crash simulation for a kill mid-rotation: the last sealed segment
    // loses half its trailer (as if the process died inside seal) and the
    // active segment gains a torn frame (as if it died mid-append).
    {
        use std::io::Write as _;
        let segments = segment_files(&path);
        assert!(
            segments.len() >= 3,
            "tiny threshold forces rotations (seed {seed}): {segments:?}"
        );
        let sealed = &segments[segments.len() - 2];
        let len = std::fs::metadata(sealed).expect("sealed metadata").len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(sealed)
            .expect("open sealed for tearing");
        file.set_len(len - 7).expect("chop trailer");
        let mut active = std::fs::OpenOptions::new()
            .append(true)
            .open(&segments[segments.len() - 1])
            .expect("open active for tearing");
        active
            .write_all(&[0x40, 0x00, 0x00, 0x00, 0xAB])
            .expect("torn tail");
    }

    // Phase 2: a clean daemon reopens the damaged directory. The chopped
    // trailer forces the scan fallback; no acked record may be missing and
    // every estimate must match the in-process reference bit for bit.
    {
        let server = RpcServer::start("127.0.0.1:0", &path, lifecycle_server_config(None, 400, 0))
            .expect("restart");
        let replay = server.replay_report();
        assert_eq!(
            replay.records,
            all.len(),
            "zero acked-record loss across the rotation kill (seed {seed})"
        );
        assert!(
            replay.torn_bytes > 0,
            "the torn active tail must be detected (seed {seed})"
        );
        let reference = reference_for(&all);
        let mut client =
            RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("client");
        assert_estimates_exact(
            &mut client,
            &reference,
            &locations,
            4,
            &format!("rotation seed {seed} post-recovery"),
        );
        server.shutdown().expect("shutdown");
    }
    cleanup_archive(&path);
}

#[test]
fn kill_during_rotation_storm_loses_no_acked_record() {
    let _guard = lock();
    for seed in [5, 71] {
        run_rotation_storm(seed);
    }
}

fn run_compaction_storm(seed: u64) {
    let path = temp_archive(&format!("compact-{seed}"));
    // Two manifest commits fail mid-storm: a rotation's commit failure
    // defers the rotation (the footer is truncated back off and the
    // segment stays the write head) and a compaction's rolls the whole
    // merge back. The budget then runs dry, so a later compaction pass
    // succeeds.
    let plan = FaultPlan::builder(seed)
        .rule(
            sites::STORE_MANIFEST,
            Rule::every(2, 2, FaultAction::Error(io::ErrorKind::Other)).times(2),
        )
        .build()
        .expect("compaction plan");
    let locations: Vec<u64> = vec![51, 52];
    let all: Vec<TrafficRecord> = locations
        .iter()
        .flat_map(|&loc| small_campaign(loc, 4, seed.wrapping_mul(131) + loc))
        .collect();
    let reference = reference_for(&all);

    ptm_obs::enable_metrics();
    let runs_before = ptm_obs::registry().counter("store.compact.runs").get();

    // Phase 1: per-record commits against a 400-byte rotation threshold
    // fragment the archive while the maintenance thread compacts every
    // 40 ms under manifest fire.
    {
        let server = RpcServer::start(
            "127.0.0.1:0",
            &path,
            lifecycle_server_config(Some(&plan), 400, 40),
        )
        .expect("start");
        let mut client =
            RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("client");
        for record in &all {
            upload_acked(&mut client, record, &format!("compaction seed {seed}"));
        }
        // Give the maintenance thread a few intervals: at least one
        // compaction must land once the injected faults are spent.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ptm_obs::registry().counter("store.compact.runs").get() == runs_before {
            assert!(
                std::time::Instant::now() < deadline,
                "compaction never succeeded (seed {seed})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!server.degraded(), "compaction faults stay internal");
        // Reads through the compacted layout stay bit-exact while the
        // daemon is live.
        assert_estimates_exact(
            &mut client,
            &reference,
            &locations,
            4,
            &format!("compaction seed {seed} live"),
        );
        server.shutdown().expect("shutdown");
    }
    ptm_obs::set_metrics_enabled(false);

    // Crash simulation: a kill right after compaction, mid-append — the
    // active segment gets a torn frame tail.
    {
        use std::io::Write as _;
        let active = active_segment_file(&path);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(active)
            .expect("open for tearing");
        file.write_all(&[0x40, 0x00, 0x00, 0x00, 0xAB, 0xCD])
            .expect("torn tail");
    }

    // Phase 2: clean reopen. The merged layout plus torn tail must still
    // hold every acked record and answer exactly.
    {
        let server = RpcServer::start("127.0.0.1:0", &path, lifecycle_server_config(None, 400, 0))
            .expect("restart");
        let replay = server.replay_report();
        assert_eq!(
            replay.records,
            all.len(),
            "zero acked-record loss across the compaction kill (seed {seed})"
        );
        assert!(replay.torn_bytes > 0, "torn tail detected (seed {seed})");
        let mut client =
            RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("client");
        assert_estimates_exact(
            &mut client,
            &reference,
            &locations,
            4,
            &format!("compaction seed {seed} post-recovery"),
        );
        server.shutdown().expect("shutdown");
    }
    cleanup_archive(&path);
}

#[test]
fn kill_during_compaction_storm_loses_no_acked_record() {
    let _guard = lock();
    for seed in [13, 902] {
        run_compaction_storm(seed);
    }
}

// ---------------------------------------------------------------------------
// 5. Crash forensics: a handler panic dumps the flight recorder.
// ---------------------------------------------------------------------------

/// A panicking ingest (the injected poisoned-lock fault) must leave the
/// flight recorder on disk *before* answering `Internal`: the last spans
/// and events leading up to the crash are the whole point of the ring.
#[test]
fn handler_panic_dumps_a_nonempty_flight_recorder() {
    let _guard = lock();
    // Spans and mirrored events only reach the recorder while tracing is
    // on; no writer is needed — the ring is independent of the JSONL sink.
    ptm_obs::enable_tracing();

    let dump = std::env::temp_dir().join(format!(
        "ptm-chaos-{}-recorder-dump.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&dump);
    let path = temp_archive("recorder");
    // The panic rides the registered rpc.ingest site: the first ingest
    // job (the pre-panic upload) passes, the second panics inside the
    // writer lock.
    let plan = FaultPlan::parse("rpc.ingest@2=panic", 77).expect("plan");
    let config = ServerConfig {
        recorder_dump: Some(dump.clone()),
        ..storm_server_config(Some(&plan), false)
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("daemon");
    let mut client =
        RpcClient::connect(server.local_addr(), storm_client_config(77)).expect("client");

    let records = small_campaign(21, 2, 77);
    upload_acked(&mut client, &records[0], "pre-panic upload");
    match client.upload(&records[1]) {
        Err(ClientError::Server {
            code: ErrorCode::Internal,
            ..
        }) => {}
        other => panic!("expected Internal after the injected panic, got {other:?}"),
    }

    // Read the dump before shutdown: this is the panic-time snapshot, not
    // the clean-exit one (shutdown re-dumps over it).
    let dumped = std::fs::read_to_string(&dump).expect("panic dumped the flight recorder");
    assert!(
        !dumped.trim().is_empty(),
        "flight-recorder dump must not be empty"
    );
    for line in dumped.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "dump is JSONL, got line {line:?}"
        );
    }
    assert!(
        dumped.contains("rpc.server.dispatch"),
        "the spans leading up to the panic are in the dump: {dumped}"
    );

    drop(client);
    server.shutdown().expect("clean shutdown");
    ptm_obs::set_tracing_enabled(false);
    let _ = std::fs::remove_file(&dump);
    let _ = std::fs::remove_file(&path);
}
