//! End-to-end request tracing over a real loopback daemon: one traced
//! upload→ack round trip must yield one *connected* span tree — a single
//! trace id, every parent pointing at another span in the same trace, and
//! stage timings in dispatch order — written as schema-clean JSONL.
//!
//! Tracing state (the enabled flag, the trace writer, the flight
//! recorder) is process-global, so every test here takes [`lock`].

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_integration_tests::{direct_record, fleet};
use ptm_rpc::{ClientConfig, RpcClient, RpcServer, ServerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn temp_archive(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ptm-trace-it-{}-{name}.ptma", std::process::id()));
    // The path may hold a leftover v1 file or a v2 segment directory.
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn cleanup_archive(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir_all(path);
}

/// A `Write` sink the test can read back after the daemon wrote to it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take_string(&self) -> String {
        let mut guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
        String::from_utf8(std::mem::take(&mut guard)).expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One parsed span line. The JSONL fields are flat and the ids are
/// fixed-width hex strings, so a tiny scanner beats a JSON dependency.
#[derive(Debug, Clone)]
struct Span {
    trace: String,
    span: String,
    parent: Option<String>,
    name: String,
    start_ns: u64,
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag).unwrap_or_else(|| panic!("{key} in {line}")) + tag.len()..];
    let end = rest
        .char_indices()
        .scan(false, |in_str, (i, c)| {
            if c == '"' {
                *in_str = !*in_str;
            }
            if (c == ',' || c == '}') && !*in_str {
                Some(Some(i))
            } else {
                Some(None)
            }
        })
        .flatten()
        .next()
        .unwrap_or(rest.len());
    &rest[..end]
}

fn parse_spans(jsonl: &str) -> Vec<Span> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let unquote = |raw: &str| raw.trim_matches('"').to_string();
            let hex = |key: &str| {
                let value = unquote(field(line, key));
                assert_eq!(value.len(), 16, "{key} is 16 hex digits in {line}");
                assert!(
                    value.bytes().all(|b| b.is_ascii_hexdigit()),
                    "{key} is hex in {line}"
                );
                value
            };
            let parent_raw = field(line, "parent");
            Span {
                trace: hex("trace"),
                span: hex("span"),
                parent: (parent_raw != "null").then(|| unquote(parent_raw)),
                name: unquote(field(line, "name")),
                start_ns: field(line, "start_ns").parse().expect("start_ns uint"),
            }
        })
        .collect()
}

fn campaign(location: u64, periods: u32, seed: u64) -> Vec<TrafficRecord> {
    let scheme = EncodingScheme::new(11, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vehicles = fleet(&mut rng, 80, 3);
    let size = BitmapSize::new(2048).expect("pow2");
    (0..periods)
        .map(|p| {
            direct_record(
                &scheme,
                LocationId::new(location),
                PeriodId::new(p),
                size,
                &vehicles,
            )
        })
        .collect()
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(5),
        max_attempts: 4,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..ClientConfig::default()
    }
}

#[test]
fn traced_upload_and_query_each_yield_one_connected_span_tree() {
    let _guard = lock();
    let sink = SharedBuf::default();
    ptm_obs::set_trace_writer(Some(Box::new(sink.clone())));
    ptm_obs::set_trace_seed(0x7AC3);
    ptm_obs::enable_tracing();

    let archive = temp_archive("tree");
    let server =
        RpcServer::start("127.0.0.1:0", &archive, ServerConfig::default()).expect("daemon starts");
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");

    let records = campaign(7, 3, 40);
    let summary = client.upload_batch(&records).expect("upload acked");
    assert_eq!(summary.accepted, 3);
    let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
    let estimate = client
        .query_point(LocationId::new(7), &periods)
        .expect("query answered");
    assert!(estimate.is_finite());

    // Shutdown joins the handler threads, so every span guard has dropped
    // (and emitted) before tracing is switched back off.
    drop(client);
    server.shutdown().expect("clean shutdown");
    ptm_obs::set_tracing_enabled(false);
    ptm_obs::set_trace_writer(None);
    cleanup_archive(&archive);

    let spans = parse_spans(&sink.take_string());
    let mut by_trace: BTreeMap<String, Vec<Span>> = BTreeMap::new();
    for span in &spans {
        by_trace
            .entry(span.trace.clone())
            .or_default()
            .push(span.clone());
    }

    // Every trace must be a connected tree: exactly one root, and every
    // parent id resolves to another span of the same trace.
    for (trace, tree) in &by_trace {
        let ids: Vec<&str> = tree.iter().map(|s| s.span.as_str()).collect();
        let roots = tree.iter().filter(|s| s.parent.is_none()).count();
        assert_eq!(roots, 1, "trace {trace} has {roots} roots: {tree:?}");
        for span in tree {
            if let Some(parent) = &span.parent {
                assert!(
                    ids.contains(&parent.as_str()),
                    "span {} of trace {trace} has dangling parent {parent}",
                    span.name
                );
            }
        }
    }

    let tree_with = |name: &str| {
        by_trace
            .values()
            .find(|t| t.iter().any(|s| s.name == name))
            .unwrap_or_else(|| panic!("no trace contains {name}"))
    };
    let named = |tree: &[Span], name: &str| -> Span {
        tree.iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from {tree:?}"))
            .clone()
    };

    // The upload round trip: client root, dispatch joined via the wire
    // context, and the ingest stages in dispatch order.
    let upload = tree_with("rpc.server.commit");
    let client_root = named(upload, "rpc.client.request");
    assert!(client_root.parent.is_none(), "client call roots the trace");
    let dispatch = named(upload, "rpc.server.dispatch");
    assert_eq!(
        dispatch.parent.as_deref(),
        Some(client_root.span.as_str()),
        "the daemon joins the trace carried on the wire"
    );
    let stages = [
        named(upload, "rpc.server.queue_wait"),
        named(upload, "rpc.server.lock_wait"),
        named(upload, "rpc.server.commit"),
        named(upload, "rpc.server.encode_reply"),
    ];
    for pair in stages.windows(2) {
        assert!(
            pair[0].start_ns <= pair[1].start_ns,
            "stage {} starts after {}: {pair:?}",
            pair[0].name,
            pair[1].name
        );
    }
    assert!(
        stages.iter().all(|s| s.start_ns >= client_root.start_ns),
        "server stages start inside the client call"
    );

    // The query round trip is a *different* trace, with its own stages.
    let query = tree_with("rpc.server.estimate");
    assert_ne!(
        query[0].trace, upload[0].trace,
        "upload and query are separate traces"
    );
    named(query, "rpc.client.request");
    named(query, "rpc.server.cache_lookup");
    named(query, "rpc.server.encode_reply");
}

#[test]
fn stats_snapshot_reports_shards_percentiles_and_recorder() {
    let _guard = lock();
    ptm_obs::enable_tracing();
    ptm_obs::set_metrics_enabled(true);

    let archive = temp_archive("stats");
    let server =
        RpcServer::start("127.0.0.1:0", &archive, ServerConfig::default()).expect("daemon starts");
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");
    client
        .upload_batch(&campaign(3, 2, 41))
        .expect("upload acked");

    let json = client.stats().expect("stats answered");
    drop(client);
    server.shutdown().expect("clean shutdown");
    ptm_obs::set_tracing_enabled(false);
    ptm_obs::set_metrics_enabled(false);
    cleanup_archive(&archive);

    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"records\":2"), "{json}");
    assert!(json.contains("\"shards\":[{\"location\":3,"), "{json}");
    // Ingest ran with metrics on, so its histogram shows up with
    // percentiles, and the traced upload left spans in the recorder.
    assert!(json.contains("\"percentiles\":{"), "{json}");
    assert!(json.contains("\"rpc.server.ingest\""), "{json}");
    assert!(json.contains("\"recorder\":["), "{json}");
    assert!(json.contains("rpc.server.dispatch"), "{json}");
}

#[test]
fn untraced_clients_still_get_local_server_traces() {
    let _guard = lock();
    let sink = SharedBuf::default();
    ptm_obs::set_trace_writer(Some(Box::new(sink.clone())));
    ptm_obs::enable_tracing();

    let archive = temp_archive("local");
    let server =
        RpcServer::start("127.0.0.1:0", &archive, ServerConfig::default()).expect("daemon starts");

    // A raw v1 frame: no flags byte, no trace context on the wire.
    {
        use ptm_rpc::frame::{read_frame, write_frame};
        use ptm_rpc::DEFAULT_MAX_FRAME_LEN;
        let mut stream =
            std::net::TcpStream::connect(server.local_addr()).expect("loopback connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        write_frame(&mut stream, &[1u8, 1u8]).expect("send v1 ping");
        read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN).expect("pong frame");
    }

    server.shutdown().expect("clean shutdown");
    ptm_obs::set_tracing_enabled(false);
    ptm_obs::set_trace_writer(None);
    cleanup_archive(&archive);

    let spans = parse_spans(&sink.take_string());
    let dispatch = spans
        .iter()
        .find(|s| s.name == "rpc.server.dispatch")
        .expect("v1 request still dispatched under a span");
    assert!(
        dispatch.parent.is_none(),
        "headerless request gets a locally minted root trace: {dispatch:?}"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.name == "rpc.server.encode_reply" && s.trace == dispatch.trace),
        "reply encode joins the local trace"
    );
}
