//! End-to-end accuracy: the estimators hit the paper's accuracy regime on
//! workloads built through the public APIs of `ptm-traffic` + `ptm-core`.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::SystemParams;
use ptm_core::point::{NaiveAndEstimator, PointEstimator};
use ptm_sim::stats::{mean, relative_error};
use ptm_sim::workload::{build_p2p_records, build_point_records};
use ptm_traffic::generate::{P2pScenario, PointScenario};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

#[test]
fn point_estimation_stays_under_ten_percent_at_paper_settings() {
    // f = 2, s = 3, t = 5, persistent core 20% of n_min: Fig. 5's regime.
    let params = SystemParams::paper_default();
    let errors: Vec<f64> = (0..10)
        .map(|run| {
            let seed = ptm_sim::trial_seed(1, &[run]);
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let scheme = EncodingScheme::new(seed, 3);
            let scenario = PointScenario::synthetic(&mut rng, 5, 0.2);
            let records =
                build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);
            let est = PointEstimator::new()
                .estimate(&records)
                .expect("no saturation");
            relative_error(scenario.persistent as f64, est)
        })
        .collect();
    let avg = mean(&errors);
    assert!(
        avg < 0.1,
        "mean relative error {avg} across runs {errors:?}"
    );
}

#[test]
fn p2p_estimation_stays_under_fifteen_percent_at_paper_settings() {
    let params = SystemParams::paper_default();
    let errors: Vec<f64> = (0..10)
        .map(|run| {
            let seed = ptm_sim::trial_seed(2, &[run]);
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let scheme = EncodingScheme::new(seed, 3);
            let scenario = P2pScenario::synthetic(&mut rng, 5, 0.2);
            let records = build_p2p_records(
                &scheme,
                &params,
                &scenario,
                LocationId::new(1),
                LocationId::new(2),
                None,
                &mut rng,
            );
            let est = PointToPointEstimator::new(3)
                .estimate(&records.records_l, &records.records_lp)
                .expect("no saturation");
            relative_error(scenario.persistent as f64, est)
        })
        .collect();
    let avg = mean(&errors);
    assert!(
        avg < 0.15,
        "mean relative error {avg} across runs {errors:?}"
    );
}

#[test]
fn proposed_beats_benchmark_by_an_order_of_magnitude_at_small_cores() {
    // Fig. 4's regime at the small end: persistent core = 2% of n_min.
    let params = SystemParams::paper_default();
    let mut proposed_errs = Vec::new();
    let mut benchmark_errs = Vec::new();
    for run in 0..10u64 {
        let seed = ptm_sim::trial_seed(3, &[run]);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let scheme = EncodingScheme::new(seed, 3);
        let scenario = PointScenario::synthetic(&mut rng, 5, 0.02);
        let records =
            build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);
        let truth = scenario.persistent as f64;
        proposed_errs.push(relative_error(
            truth,
            PointEstimator::new()
                .estimate(&records)
                .expect("no saturation"),
        ));
        benchmark_errs.push(relative_error(
            truth,
            NaiveAndEstimator::new()
                .estimate(&records)
                .expect("no saturation"),
        ));
    }
    let p = mean(&proposed_errs);
    let b = mean(&benchmark_errs);
    assert!(
        b > 5.0 * p,
        "benchmark ({b}) should be at least 5x worse than proposed ({p}) at tiny cores"
    );
}

#[test]
fn ten_periods_beat_five_periods() {
    // Fig. 4, left vs right panel: error shrinks with t.
    let params = SystemParams::paper_default();
    let mut err_by_t = Vec::new();
    for &t in &[5usize, 10] {
        let errors: Vec<f64> = (0..12)
            .map(|run| {
                let seed = ptm_sim::trial_seed(4, &[t as u64, run]);
                let mut rng = ChaCha12Rng::seed_from_u64(seed);
                let scheme = EncodingScheme::new(seed, 3);
                let scenario = PointScenario::synthetic(&mut rng, t, 0.05);
                let records =
                    build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);
                let est = PointEstimator::new()
                    .estimate(&records)
                    .expect("no saturation");
                relative_error(scenario.persistent as f64, est)
            })
            .collect();
        err_by_t.push(mean(&errors));
    }
    assert!(
        err_by_t[1] < err_by_t[0] * 1.1,
        "t=10 error {} should not exceed t=5 error {}",
        err_by_t[1],
        err_by_t[0]
    );
}

#[test]
fn mixed_bitmap_sizes_across_periods_still_estimate() {
    // Periods with different expected volumes get different (power-of-two)
    // record sizes; the join expands them (paper Fig. 2/3).
    let params = SystemParams::paper_default();
    let mut rng = ChaCha12Rng::seed_from_u64(55);
    let scheme = EncodingScheme::new(56, 3);
    let location = LocationId::new(4);
    // Note: the size spread is 2x, as in the paper's Fig. 3 example. Wider
    // spreads (4x+) bias the estimator because transients from a small
    // record occupy several correlated replica bits after expansion; the
    // paper's own workloads never mix sizes within one location by more
    // than the day-to-day volume drift.
    let fleet = ptm_traffic::generate::CommonFleet::generate(&mut rng, 700, 3);
    let volumes = [3_000u64, 6_000, 6_000, 6_000, 3_000];
    let records: Vec<_> = volumes
        .iter()
        .enumerate()
        .map(|(j, &volume)| {
            let size = params.bitmap_size(volume as f64);
            let mut record = ptm_core::record::TrafficRecord::new(
                location,
                ptm_core::record::PeriodId::new(j as u32),
                size,
            );
            fleet.encode_into(&scheme, &mut record);
            ptm_traffic::generate::fill_transients(&mut record, volume - 700, &mut rng);
            record
        })
        .collect();
    // Sanity: the sizes really differ.
    let sizes: std::collections::BTreeSet<usize> = records.iter().map(|r| r.len()).collect();
    assert!(sizes.len() >= 2, "test should cover heterogeneous sizes");
    let est = PointEstimator::new()
        .estimate(&records)
        .expect("no saturation");
    let rel = relative_error(700.0, est);
    assert!(rel < 0.15, "estimate {est}, relative error {rel}");
}
