//! Stress tests for the sharded central store behind the RPC daemon:
//! uploaders and queriers hammering the same process concurrently must
//! produce answers bit-for-bit identical to a sequential in-process run,
//! and the epoch-invalidated query cache must invalidate per location.
//!
//! Metric-asserting tests share the process-global `ptm-obs` registry, so
//! every test takes [`lock`] to serialize against the others.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_integration_tests::{direct_record, fleet};
use ptm_net::CentralServer;
use ptm_rpc::{ClientConfig, RpcClient, RpcServer, ServerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn temp_archive(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ptm-shard-it-{}-{name}.ptma", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn server_config() -> ServerConfig {
    ServerConfig {
        s: 3,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(5),
        max_attempts: 4,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..ClientConfig::default()
    }
}

/// A deterministic per-location campaign: `periods` records sharing a
/// persistent fleet plus transient traffic.
fn campaign(location: u64, periods: u32, seed: u64) -> Vec<TrafficRecord> {
    let scheme = EncodingScheme::new(11, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let persistent = fleet(&mut rng, 100, 3);
    let size = BitmapSize::new(4096).expect("pow2");
    (0..periods)
        .map(|p| {
            let transient = fleet(&mut rng, 200, 3);
            let mut all = persistent.clone();
            all.extend(transient);
            direct_record(
                &scheme,
                LocationId::new(location),
                PeriodId::new(p),
                size,
                &all,
            )
        })
        .collect()
}

/// Records are immutable once accepted, so any query that succeeds
/// mid-stress covers exactly the records it will cover in the final state:
/// a point query over all `P` periods only answers once all `P` are
/// present. Every `Ok` answer observed *during* the upload storm must
/// therefore already be bit-for-bit equal to the sequential reference.
#[test]
fn parallel_uploads_and_queries_match_sequential_bit_for_bit() {
    let _guard = lock();
    const PERIODS: u32 = 6;
    const QUERIERS: usize = 3;
    let locations: Vec<u64> = (21..=26).collect();
    let campaigns: Vec<Vec<TrafficRecord>> = locations
        .iter()
        .map(|&loc| campaign(loc, PERIODS, 4000 + loc))
        .collect();
    let periods: Vec<PeriodId> = (0..PERIODS).map(PeriodId::new).collect();

    // The sequential reference, computed before any concurrency exists.
    let reference = CentralServer::new(3);
    for records in &campaigns {
        for record in records {
            reference.submit(record.clone()).expect("reference submit");
        }
    }
    let expected_point: Vec<u64> = locations
        .iter()
        .map(|&loc| {
            reference
                .estimate_point_persistent(LocationId::new(loc), &periods)
                .expect("reference point")
                .to_bits()
        })
        .collect();
    let expected_volume: Vec<u64> = locations
        .iter()
        .map(|&loc| {
            reference
                .estimate_volume(LocationId::new(loc), periods[0])
                .expect("reference volume")
                .to_bits()
        })
        .collect();
    let p2p_pair = (LocationId::new(locations[0]), LocationId::new(locations[1]));
    let expected_p2p = reference
        .estimate_p2p_persistent(p2p_pair.0, p2p_pair.1, &periods)
        .expect("reference p2p")
        .to_bits();

    let path = temp_archive("stress");
    let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("start");
    let addr = server.local_addr();
    let done = AtomicBool::new(false);
    let verified = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Uploaders: one per location, one record per batch so uploads to
        // different locations interleave at the finest grain the protocol
        // allows.
        for records in &campaigns {
            scope.spawn(move || {
                let mut client = RpcClient::connect(addr, client_config()).expect("client");
                for record in records {
                    let summary = client
                        .upload_batch(std::slice::from_ref(record))
                        .expect("upload");
                    assert_eq!(summary.accepted, 1);
                }
            });
        }
        // Queriers: hammer every query kind for the whole storm. A query
        // may fail while its periods are still being uploaded; once it
        // answers, the answer must match the reference exactly. Each
        // querier runs one final full pass after the uploads finish, so
        // post-quiescence answers (including cached ones) are verified too.
        for _ in 0..QUERIERS {
            scope.spawn(|| {
                let mut client = RpcClient::connect(addr, client_config()).expect("client");
                loop {
                    let last_pass = done.load(Ordering::Acquire);
                    for (i, &loc) in locations.iter().enumerate() {
                        let location = LocationId::new(loc);
                        if let Ok(est) = client.query_point(location, &periods) {
                            assert_eq!(est.to_bits(), expected_point[i], "point at {loc}");
                            verified.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Ok(est) = client.query_volume(location, periods[0]) {
                            assert_eq!(est.to_bits(), expected_volume[i], "volume at {loc}");
                            verified.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Ok(est) = client.query_p2p(p2p_pair.0, p2p_pair.1, &periods) {
                        assert_eq!(est.to_bits(), expected_p2p, "p2p");
                        verified.fetch_add(1, Ordering::Relaxed);
                    }
                    if last_pass {
                        break;
                    }
                }
            });
        }
        // Wait for the uploaders (their handles are unnamed, so join via a
        // dedicated marker thread is overkill: the scope joins everything;
        // flip `done` once the record count shows all uploads landed).
        let total = locations.len() * PERIODS as usize;
        while server.record_count() < total {
            std::thread::sleep(Duration::from_millis(2));
        }
        done.store(true, Ordering::Release);
    });

    // Every querier's final pass answered every query.
    let min_verified = QUERIERS * (locations.len() * 2 + 1);
    assert!(
        verified.load(Ordering::Relaxed) >= min_verified,
        "expected at least {min_verified} verified answers, got {}",
        verified.load(Ordering::Relaxed)
    );
    assert_eq!(server.record_count(), locations.len() * PERIODS as usize);
    server.shutdown().expect("shutdown");
    std::fs::remove_file(&path).ok();
}

/// A query racing a *panicking* upload must not end up caching against a
/// stale epoch: the panicked ingest published nothing, so the location's
/// epoch must not move and the cached answer must keep serving as a hit —
/// then move exactly once when the retried upload lands for real.
#[test]
fn panicked_upload_race_does_not_cache_stale_epoch() {
    let _guard = lock();
    let path = temp_archive("panic-epoch");
    // The second ingest job — the fourth-period upload below — panics via
    // the registered rpc.ingest site; the first (the 3-record batch) and
    // the post-panic retry pass untouched.
    let config = ServerConfig {
        fault_plan: Some(ptm_fault::FaultPlan::parse("rpc.ingest@2=panic", 41).expect("plan")),
        ..server_config()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");

    let location = LocationId::new(41);
    let records = campaign(41, 4, 410);
    client
        .upload_batch(&records[..3])
        .expect("upload 3 periods");
    let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();

    ptm_obs::enable_metrics();
    let hits = ptm_obs::registry().counter("rpc.cache.hits");
    let misses = ptm_obs::registry().counter("rpc.cache.misses");
    let stale = ptm_obs::registry().counter("rpc.cache.stale");
    let (hits0, misses0, stale0) = (hits.get(), misses.get(), stale.get());

    let cold = client.query_point(location, &periods).expect("cold query");
    let cached = client
        .query_point(location, &periods)
        .expect("cached query");
    assert_eq!(cold.to_bits(), cached.to_bits());
    assert_eq!((hits.get() - hits0, misses.get() - misses0), (1, 1));

    // The fourth-period upload panics inside ingest while holding the
    // writer lock. The daemon answers Internal and publishes nothing.
    match client.upload_batch(std::slice::from_ref(&records[3])) {
        Err(ptm_rpc::ClientError::Server {
            code: ptm_rpc::ErrorCode::Internal,
            ..
        }) => {}
        other => panic!("expected Internal from panicked ingest, got {other:?}"),
    }

    // Nothing was published, so the epoch must not have moved: the cached
    // answer still serves as a hit, bit-for-bit.
    let after_panic = client.query_point(location, &periods).expect("query");
    assert_eq!(after_panic.to_bits(), cold.to_bits());
    assert_eq!(hits.get() - hits0, 2, "panicked upload must not invalidate");
    assert_eq!(stale.get() - stale0, 0);

    // The retry lands for real (the one-shot rule already fired): now the
    // epoch moves exactly once and the cached entry goes stale.
    let summary = client
        .upload_batch(std::slice::from_ref(&records[3]))
        .expect("retried upload");
    assert_eq!(summary.accepted, 1);
    let recomputed = client.query_point(location, &periods).expect("recompute");
    assert_eq!(
        recomputed.to_bits(),
        cold.to_bits(),
        "same periods, same answer after recompute"
    );
    assert_eq!(stale.get() - stale0, 1, "exactly one invalidation");
    assert_eq!(misses.get() - misses0, 2, "the stale lookup recomputed");

    // Full-window answer matches an in-process reference bit-for-bit.
    let reference = CentralServer::new(3);
    for record in &records {
        reference.submit(record.clone()).expect("reference submit");
    }
    let all_periods: Vec<PeriodId> = (0..4).map(PeriodId::new).collect();
    let over_wire = client
        .query_point(location, &all_periods)
        .expect("full window");
    let in_process = reference
        .estimate_point_persistent(location, &all_periods)
        .expect("reference");
    assert_eq!(over_wire.to_bits(), in_process.to_bits());

    ptm_obs::set_metrics_enabled(false);
    server.shutdown().expect("shutdown");
    std::fs::remove_file(&path).ok();
}

/// An upload to one location must invalidate only that location's cached
/// answers: the other location keeps serving cache hits.
#[test]
fn upload_invalidates_only_that_locations_cached_answers() {
    let _guard = lock();
    let path = temp_archive("cache-inval");
    let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("start");
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");

    let loc_a = LocationId::new(31);
    let loc_b = LocationId::new(32);
    let records_a = campaign(31, 3, 310);
    let records_b = campaign(32, 3, 320);
    client.upload_batch(&records_a[..3]).expect("upload a");
    client.upload_batch(&records_b).expect("upload b");
    let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();

    ptm_obs::enable_metrics();
    let hits = ptm_obs::registry().counter("rpc.cache.hits");
    let misses = ptm_obs::registry().counter("rpc.cache.misses");
    let stale = ptm_obs::registry().counter("rpc.cache.stale");
    let (hits0, misses0, stale0) = (hits.get(), misses.get(), stale.get());

    // Cold, then cached, for both locations.
    let a_first = client.query_point(loc_a, &periods).expect("a cold");
    let a_second = client.query_point(loc_a, &periods).expect("a cached");
    assert_eq!(a_first.to_bits(), a_second.to_bits());
    let b_first = client.query_point(loc_b, &periods).expect("b cold");
    let b_second = client.query_point(loc_b, &periods).expect("b cached");
    assert_eq!(b_first.to_bits(), b_second.to_bits());
    assert_eq!(hits.get() - hits0, 2, "one hit per re-query");
    assert_eq!(misses.get() - misses0, 2, "one miss per cold query");
    assert_eq!(stale.get() - stale0, 0);

    // A fourth period lands at A: A's epoch moves, B's does not.
    let fourth = campaign(31, 4, 310).split_off(3);
    client.upload_batch(&fourth).expect("upload fourth");

    // A's cached answer is stale — dropped and recomputed; the recompute
    // covers the same three periods, so the value itself is unchanged.
    let a_third = client.query_point(loc_a, &periods).expect("a after upload");
    assert_eq!(
        a_third.to_bits(),
        a_first.to_bits(),
        "same periods, same answer"
    );
    assert_eq!(stale.get() - stale0, 1, "A's entry was epoch-invalidated");
    assert_eq!(misses.get() - misses0, 3, "the stale lookup recomputed");

    // B's cached answer is untouched: still a hit, no recompute.
    let b_third = client.query_point(loc_b, &periods).expect("b after upload");
    assert_eq!(b_third.to_bits(), b_first.to_bits());
    assert_eq!(hits.get() - hits0, 3, "B still serves from cache");
    assert_eq!(stale.get() - stale0, 1, "B's entry was not invalidated");

    ptm_obs::set_metrics_enabled(false);
    server.shutdown().expect("shutdown");
    std::fs::remove_file(&path).ok();
}
