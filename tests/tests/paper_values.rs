//! Pins every number the paper publishes that this reproduction derives
//! exactly: the Table I metadata columns and the Table II privacy grid.

#![forbid(unsafe_code)]

use ptm_core::params::SystemParams;
use ptm_core::privacy;
use ptm_traffic::network::NodeId;
use ptm_traffic::sioux_falls;

#[test]
fn table_one_metadata_derives_from_public_data() {
    // The paper's Table I rows n, m, m'/m and n'' all follow from the
    // public Sioux Falls trip table at scale 5 with f = 2 — locations are
    // nodes 15, 12, 7, 24, 6, 18, 2, 3 and L' is node 10.
    let table = sioux_falls::paper_trip_table();
    let params = SystemParams::paper_default();
    let l_prime = NodeId::new(9);
    assert_eq!(table.busiest_node(), l_prime);
    assert_eq!(table.involving_volume(l_prime), 451_000);
    let m_prime = params.bitmap_size(451_000.0).get();
    assert_eq!(m_prime, 1_048_576);

    let published: [(usize, u64, usize, usize, u64); 8] = [
        (15, 213_000, 524_288, 2, 40_000),
        (12, 140_000, 524_288, 2, 20_000),
        (7, 121_000, 262_144, 4, 19_000),
        (24, 78_000, 262_144, 4, 8_000),
        (6, 76_000, 262_144, 4, 8_000),
        (18, 47_000, 131_072, 8, 7_000),
        (2, 40_000, 131_072, 8, 6_000),
        (3, 28_000, 65_536, 16, 3_000),
    ];
    for (label, n, m, ratio, n_common) in published {
        let node = NodeId::new(label - 1);
        assert_eq!(table.involving_volume(node), n, "n at node {label}");
        let m_derived = params.bitmap_size(n as f64).get();
        assert_eq!(m_derived, m, "m at node {label}");
        assert_eq!(m_prime / m_derived, ratio, "m'/m at node {label}");
        assert_eq!(
            table.pair_volume(node, l_prime),
            n_common,
            "n'' at node {label}"
        );
    }
}

#[test]
fn table_two_grid_matches_published_to_four_decimals() {
    #[rustfmt::skip]
    let published: [(u32, [f64; 7]); 4] = [
        (2, [3.4368, 1.8956, 1.2975, 0.9837, 0.7912, 0.6614, 0.5681]),
        (3, [5.1553, 2.8433, 1.9462, 1.4755, 1.1869, 0.9922, 0.8520]),
        (4, [6.8737, 3.7911, 2.5950, 1.9673, 1.5825, 1.3229, 1.1361]),
        (5, [8.5921, 4.7389, 3.2437, 2.4592, 1.9781, 1.6536, 1.4201]),
    ];
    let fs = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
    for (s, row) in published {
        for (f, expected) in fs.iter().zip(row) {
            let got = privacy::asymptotic_ratio(*f, s);
            let rel = (got - expected).abs() / expected;
            assert!(
                rel < 3e-4,
                "s={s} f={f}: computed {got} vs published {expected}"
            );
        }
    }
    let noise_row = [0.6321, 0.4866, 0.3935, 0.3297, 0.2835, 0.2485, 0.2212];
    for (f, expected) in fs.iter().zip(noise_row) {
        let got = privacy::asymptotic_noise(*f);
        assert!(
            (got - expected).abs() < 5e-5,
            "p at f={f}: {got} vs {expected}"
        );
    }
}

#[test]
fn sioux_falls_canonical_shape() {
    assert_eq!(sioux_falls::trip_table().total(), 360_600);
    let net = sioux_falls::road_network();
    assert_eq!(net.num_nodes(), 24);
    assert_eq!(net.num_links(), 76);
    assert!(net.is_strongly_connected());
}

#[test]
fn paper_recommended_operating_point() {
    // Sec. VI-C: f = 2, s = 3; noise ~40%, signal ~20%, ratio ~2.
    let p = privacy::asymptotic_noise(2.0);
    assert!((p - 0.3935).abs() < 1e-4);
    let p_prime = privacy::tracking_probability(p, 3);
    let signal = p_prime - p;
    assert!((signal - 0.2022).abs() < 1e-3);
    let ratio = privacy::asymptotic_ratio(2.0, 3);
    assert!((ratio - 1.9462).abs() < 1e-3);
    assert!(
        ratio > 1.0,
        "noise must outweigh information at the recommended point"
    );
}
