//! Connection-scale storms against the reactor daemon: slow-loris
//! dribblers that never finish a frame, a thousand concurrent loopback
//! connections, and bit-for-bit equivalence between the pipelined and
//! batch upload paths.
//!
//! The old thread-per-connection daemon would have needed a thousand OS
//! threads (and could be wedged by one byte-at-a-time writer holding the
//! accept loop); the reactor owns every socket from one event loop, so
//! these tests double as regression coverage for the accept-loop
//! head-of-line blocking fix.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_integration_tests::{direct_record, fleet};
use ptm_rpc::{
    read_frame, write_frame, ClientConfig, ReadOutcome, RpcClient, RpcServer, ServerConfig,
    DEFAULT_MAX_FRAME_LEN,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn temp_archive(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ptm-storm-{}-{name}.ptma", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn cleanup_archive(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir_all(path);
}

/// After a storm the worker pool's accounting must settle: nothing in
/// flight, every class admission queue empty. A leaked gauge here means
/// a panic or shutdown race lost a decrement.
fn assert_overload_gauges_settled(addr: std::net::SocketAddr, context: &str) {
    let mut client = RpcClient::connect(addr, client_config()).expect("gauge client");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snapshot = client.stats().expect("stats");
        if snapshot.contains("\"worker_inflight\":0")
            && snapshot.contains("\"queue_depth\":{\"control\":0,\"query\":0,\"upload\":0}")
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "overload gauges leaked after the storm ({context}): {snapshot}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        io_timeout: Duration::from_secs(10),
        max_attempts: 4,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..ClientConfig::default()
    }
}

/// A deterministic per-location campaign: `periods` records sharing a
/// persistent fleet plus transient traffic.
fn campaign(location: u64, periods: u32, seed: u64) -> Vec<TrafficRecord> {
    let scheme = EncodingScheme::new(11, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let persistent = fleet(&mut rng, 80, 3);
    let size = BitmapSize::new(2048).expect("pow2");
    (0..periods)
        .map(|p| {
            let transient = fleet(&mut rng, 150, 3);
            let mut all = persistent.clone();
            all.extend(transient);
            direct_record(
                &scheme,
                LocationId::new(location),
                PeriodId::new(p),
                size,
                &all,
            )
        })
        .collect()
}

/// Hundreds of half-open connections dribbling partial frame headers must
/// not starve a healthy client, and the daemon must retire every dribbler
/// on its stall cutoff without writing garbage.
#[test]
fn slow_loris_dribblers_do_not_starve_healthy_clients() {
    let _guard = lock();
    let path = temp_archive("loris");
    let config = ServerConfig {
        s: 3,
        max_connections: 2048,
        // Tight stall cutoff so the dribblers are retired quickly once
        // the healthy work is proven to have gone through.
        read_timeout: Duration::from_millis(750),
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let addr = server.local_addr();

    const DRIBBLERS: usize = 300;
    let mut dribblers = Vec::with_capacity(DRIBBLERS);
    for i in 0..DRIBBLERS {
        let mut stream = TcpStream::connect(addr).expect("dribbler connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // Three bytes of a frame header: never a complete length prefix,
        // so the decoder holds a partial frame forever.
        let teaser = [(i & 0xFF) as u8, 0x00, 0x00];
        stream.write_all(&teaser).expect("dribble");
        dribblers.push(stream);
    }

    // With every dribbler half-open, a healthy client's upload and query
    // must still complete promptly.
    let records = campaign(7, 3, 99);
    let started = Instant::now();
    let mut client = RpcClient::connect(addr, client_config()).expect("client");
    let summary = client.upload_batch(&records).expect("upload under storm");
    assert_eq!(summary.accepted as usize, records.len());
    let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
    let estimate = client
        .query_point(LocationId::new(7), &periods)
        .expect("query under storm");
    assert!(estimate.is_finite());
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "healthy client starved by dribblers: {:?}",
        started.elapsed()
    );

    // Every dribbler is retired once it overstays the stall cutoff. A
    // polite daemon may answer with a Malformed error frame first; either
    // way the connection must reach EOF and never carry unsolicited bytes.
    let deadline = Instant::now() + Duration::from_secs(30);
    for (i, mut stream) in dribblers.into_iter().enumerate() {
        loop {
            match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
                Ok(ReadOutcome::Frame(bytes)) => {
                    let response =
                        ptm_rpc::proto::decode_response(&bytes).expect("decodable farewell");
                    assert!(
                        matches!(
                            response,
                            ptm_rpc::Response::Error {
                                code: ptm_rpc::ErrorCode::Malformed,
                                ..
                            }
                        ),
                        "dribbler {i} got unexpected farewell: {response:?}"
                    );
                }
                Ok(ReadOutcome::Closed) => break,
                Ok(ReadOutcome::Idle) => {}
                // A reset instead of a graceful EOF also proves teardown.
                Err(_) => break,
            }
            assert!(
                Instant::now() < deadline,
                "dribbler {i} never retired by the stall cutoff"
            );
        }
    }

    assert_overload_gauges_settled(addr, "slow loris");
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

/// One thousand concurrent loopback connections, each completing a
/// ping round trip — far beyond what thread-per-connection could hold.
#[test]
fn one_thousand_concurrent_connections_all_get_answered() {
    let _guard = lock();
    let path = temp_archive("1k");
    let config = ServerConfig {
        s: 3,
        max_connections: 1500,
        read_timeout: Duration::from_secs(30),
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let addr = server.local_addr();

    const CONNS: usize = 1000;
    let ping = ptm_rpc::proto::encode_request(&ptm_rpc::Request::Ping);
    let mut streams = Vec::with_capacity(CONNS);
    // Open every connection and write every request before reading any
    // response: all thousand are concurrently live inside the daemon.
    for i in 0..CONNS {
        let mut stream =
            TcpStream::connect(addr).unwrap_or_else(|err| panic!("connect {i} failed: {err}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        write_frame(&mut stream, &ping).unwrap_or_else(|err| panic!("ping {i} failed: {err}"));
        streams.push(stream);
    }
    let mut answered = 0usize;
    for (i, mut stream) in streams.into_iter().enumerate() {
        match read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN) {
            Ok(ReadOutcome::Frame(bytes)) => {
                let response = ptm_rpc::proto::decode_response(&bytes).expect("pong decodes");
                assert!(
                    matches!(response, ptm_rpc::Response::Pong { .. }),
                    "connection {i} got {response:?}"
                );
                answered += 1;
            }
            other => panic!("connection {i} got no answer: {other:?}"),
        }
    }
    assert_eq!(answered, CONNS);

    assert_overload_gauges_settled(addr, "thousand connections");
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

/// The pipelined upload path (coalesced commits, batched acks) must be
/// observationally identical to per-record batch uploads: same ack
/// totals, same record counts, bit-for-bit identical estimates.
#[test]
fn pipelined_uploads_are_bit_for_bit_equivalent_to_batched() {
    let _guard = lock();
    let path_a = temp_archive("pipe-a");
    let path_b = temp_archive("pipe-b");
    let config = || ServerConfig {
        s: 3,
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server_a = RpcServer::start("127.0.0.1:0", &path_a, config()).expect("start a");
    let server_b = RpcServer::start("127.0.0.1:0", &path_b, config()).expect("start b");

    const PERIODS: u32 = 4;
    let locations: Vec<u64> = vec![3, 5, 9];
    for &location in &locations {
        let records = campaign(location, PERIODS, 500 + location);
        let mut client_a =
            RpcClient::connect(server_a.local_addr(), client_config()).expect("client a");
        let pipelined = client_a
            .upload_pipelined(&records, 8)
            .expect("pipelined upload");
        let mut client_b =
            RpcClient::connect(server_b.local_addr(), client_config()).expect("client b");
        let batched = client_b.upload_batch(&records).expect("batch upload");
        assert_eq!(pipelined.accepted, batched.accepted);
        assert_eq!(pipelined.duplicates, batched.duplicates);
        assert_eq!(pipelined.accepted as usize, records.len());
    }
    assert_eq!(server_a.record_count(), server_b.record_count());

    let periods: Vec<PeriodId> = (0..PERIODS).map(PeriodId::new).collect();
    let mut client_a = RpcClient::connect(server_a.local_addr(), client_config()).expect("a");
    let mut client_b = RpcClient::connect(server_b.local_addr(), client_config()).expect("b");
    for &location in &locations {
        let loc = LocationId::new(location);
        let point_a = client_a.query_point(loc, &periods).expect("point a");
        let point_b = client_b.query_point(loc, &periods).expect("point b");
        assert_eq!(point_a.to_bits(), point_b.to_bits(), "point @{location}");
        let vol_a = client_a.query_volume(loc, periods[0]).expect("vol a");
        let vol_b = client_b.query_volume(loc, periods[0]).expect("vol b");
        assert_eq!(vol_a.to_bits(), vol_b.to_bits(), "volume @{location}");
    }
    let p2p_a = client_a
        .query_p2p(LocationId::new(3), LocationId::new(9), &periods)
        .expect("p2p a");
    let p2p_b = client_b
        .query_p2p(LocationId::new(3), LocationId::new(9), &periods)
        .expect("p2p b");
    assert_eq!(p2p_a.to_bits(), p2p_b.to_bits());

    assert_overload_gauges_settled(server_a.local_addr(), "pipelined server a");
    assert_overload_gauges_settled(server_b.local_addr(), "pipelined server b");
    server_a.shutdown().expect("shutdown a");
    server_b.shutdown().expect("shutdown b");
    cleanup_archive(&path_a);
    cleanup_archive(&path_b);
}
