//! The experiment harness encodes vehicles directly into records; the V2I
//! substrate runs the full beacon/verify/DH/encrypt/ack protocol. Over a
//! lossless channel the two paths must produce **bit-identical** traffic
//! records — this is what justifies using the fast path for the large
//! parameter sweeps.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::SystemParams;
use ptm_core::record::PeriodId;
use ptm_integration_tests::direct_record;
use ptm_net::{SimConfig, SimDuration, V2iSimulator};

#[test]
fn protocol_records_equal_direct_encoding() {
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0xE0E0, params.num_representatives());
    let size = params.bitmap_size(300.0);
    let locations = [LocationId::new(7), LocationId::new(9)];
    let specs: Vec<_> = locations.iter().map(|&l| (l, size)).collect();
    let mut sim = V2iSimulator::new(SimConfig::default(), scheme, &specs, 31337);

    let vehicles: Vec<usize> = (0..250).map(|_| sim.add_vehicle()).collect();
    let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
    for &p in &periods {
        for (k, &v) in vehicles.iter().enumerate() {
            sim.schedule_pass(v, 0, SimDuration::from_millis(40 * k as u64));
            if k % 2 == 0 {
                sim.schedule_pass(v, 1, SimDuration::from_millis(20_000 + 40 * k as u64));
            }
        }
        sim.run_period(p).expect("unique periods");
    }

    // Rebuild each record by direct encoding of exactly the vehicles that
    // passed, and compare bit for bit.
    let secrets: Vec<_> = vehicles
        .iter()
        .map(|&v| sim.vehicle_secrets(v).clone())
        .collect();
    for &p in &periods {
        let all = direct_record(&scheme, locations[0], p, size, &secrets);
        let protocol = sim.server().record(locations[0], p).expect("uploaded");
        assert_eq!(
            protocol.bitmap(),
            all.bitmap(),
            "location 7, period {}",
            p.get()
        );

        let evens: Vec<_> = secrets.iter().step_by(2).cloned().collect();
        let partial = direct_record(&scheme, locations[1], p, size, &evens);
        let protocol = sim.server().record(locations[1], p).expect("uploaded");
        assert_eq!(
            protocol.bitmap(),
            partial.bitmap(),
            "location 9, period {}",
            p.get()
        );
    }
}

#[test]
fn protocol_estimates_match_direct_estimates() {
    // Same records => same estimates, end to end through the server.
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0xE5E5, params.num_representatives());
    let size = params.bitmap_size(500.0);
    let location = LocationId::new(3);
    let mut sim = V2iSimulator::new(SimConfig::default(), scheme, &[(location, size)], 99);

    let commons: Vec<usize> = (0..150).map(|_| sim.add_vehicle()).collect();
    let periods: Vec<PeriodId> = (0..4).map(PeriodId::new).collect();
    let mut direct_records = Vec::new();
    for &p in &periods {
        let mut present = Vec::new();
        for (k, &v) in commons.iter().enumerate() {
            sim.schedule_pass(v, 0, SimDuration::from_millis(30 * k as u64));
            present.push(sim.vehicle_secrets(v).clone());
        }
        for k in 0..250usize {
            let t = sim.add_vehicle();
            sim.schedule_pass(t, 0, SimDuration::from_millis(10_000 + 30 * k as u64));
            present.push(sim.vehicle_secrets(t).clone());
        }
        sim.run_period(p).expect("unique periods");
        direct_records.push(direct_record(&scheme, location, p, size, &present));
    }

    let via_protocol = sim
        .server()
        .estimate_point_persistent(location, &periods)
        .expect("records uploaded");
    let via_direct = ptm_core::point::PointEstimator::new()
        .estimate(&direct_records)
        .expect("same records");
    assert_eq!(
        via_protocol, via_direct,
        "identical records give identical estimates"
    );
}
