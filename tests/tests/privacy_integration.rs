//! Privacy properties verified through the real encoding / protocol stack —
//! not just the closed forms.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::privacy;
use ptm_core::record::{PeriodId, TrafficRecord};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Empirically measure p and p' by running the *actual* vehicle encoding
/// (not the abstract simulation in `ptm_core::privacy`): generate traffic
/// at L', check whether the tracked vehicle's L-bit is set at L'.
fn empirical_noise_information(f: f64, s: u32, n_prime: u64, trials: u32, seed: u64) -> (f64, f64) {
    let m_prime = (n_prime as f64 * f).round() as usize;
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let scheme = EncodingScheme::new(seed ^ 0x77, s);
    let loc_l = LocationId::new(1);
    let loc_lp = LocationId::new(2);
    let mut hits_noise = 0u32;
    let mut hits_info = 0u32;
    for _ in 0..trials {
        let tracked = VehicleSecrets::generate(&mut rng, s);
        // The index the tracker observed at L, reduced into L''s bitmap.
        let observed = scheme.encode(&tracked, loc_l) % m_prime as u64;
        // Build L''s bitmap from other traffic only.
        let mut bitmap = vec![false; m_prime];
        for _ in 0..n_prime {
            let other = VehicleSecrets::generate(&mut rng, s);
            bitmap[scheme.encode_index(&other, loc_lp, m_prime)] = true;
        }
        if bitmap[observed as usize] {
            hits_noise += 1;
            hits_info += 1;
        } else if scheme.encode_index(&tracked, loc_lp, m_prime) == observed as usize {
            hits_info += 1;
        }
    }
    (
        hits_noise as f64 / trials as f64,
        hits_info as f64 / trials as f64,
    )
}

#[test]
fn real_encoding_matches_privacy_analysis() {
    // Small n' keeps the test fast; the formulas are exact at any scale.
    let (f, s, n_prime) = (2.0, 3u32, 400u64);
    let (p_hat, p_prime_hat) = empirical_noise_information(f, s, n_prime, 3_000, 9);
    let p = privacy::noise_probability(n_prime, (n_prime as f64 * f) as usize);
    let p_prime = privacy::tracking_probability(p, s);
    assert!(
        (p_hat - p).abs() < 0.03,
        "noise: empirical {p_hat} vs analytic {p}"
    );
    assert!(
        (p_prime_hat - p_prime).abs() < 0.03,
        "tracking: empirical {p_prime_hat} vs analytic {p_prime}"
    );
    // And the headline claim: noise outweighs information at f = 2, s = 3.
    let info = p_prime_hat - p_hat;
    assert!(
        p_hat > 1.5 * info,
        "noise {p_hat} should clearly outweigh information {info}"
    );
}

#[test]
fn vehicle_changes_bits_across_locations() {
    // Unlinkability source: with s = 3, most vehicles map to different bits
    // at different locations.
    let scheme = EncodingScheme::new(123, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(10);
    let m = 1 << 16;
    let mut moved = 0;
    let total = 500;
    for _ in 0..total {
        let v = VehicleSecrets::generate(&mut rng, 3);
        let at_l = scheme.encode_index(&v, LocationId::new(1), m);
        let at_lp = scheme.encode_index(&v, LocationId::new(2), m);
        if at_l != at_lp {
            moved += 1;
        }
    }
    // P(same representative chosen) = 1/s = 1/3, so ~2/3 should move.
    let fraction = moved as f64 / total as f64;
    assert!(
        (0.55..0.8).contains(&fraction),
        "fraction of vehicles changing bits: {fraction}"
    );
}

#[test]
fn records_carry_no_identity_bytes() {
    // Serialize a record built from a known identity and scan for it.
    let scheme = EncodingScheme::new(5, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let id = VehicleId::new(0x1234_5678_9ABC_DEF0);
    let v = VehicleSecrets::generate_with_id(&mut rng, id, 3);
    let mut record = TrafficRecord::new(
        LocationId::new(1),
        PeriodId::new(0),
        BitmapSize::new(1 << 12).expect("pow2"),
    );
    record.encode(&scheme, &v);
    let json = serde_json::to_string(&record).expect("serialize");
    assert!(
        !json.contains("1234"),
        "id fragments must not appear: {json}"
    );
    assert!(!json.contains(&id.get().to_string()));
}

#[test]
fn same_vehicle_same_location_is_linkable_only_within_design() {
    // The design accepts that one vehicle sets the same bit at the same
    // location every period (needed for persistence measurement); verify
    // the flip side — the bit alone cannot distinguish it from colliding
    // traffic (multiple vehicles share bits in a loaded record).
    let scheme = EncodingScheme::new(6, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(12);
    let m = 256; // small bitmap => guaranteed collisions at 500 vehicles
    let mut owners: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    for _ in 0..500 {
        let v = VehicleSecrets::generate(&mut rng, 3);
        *owners
            .entry(scheme.encode_index(&v, LocationId::new(1), m))
            .or_default() += 1;
    }
    let shared = owners.values().filter(|&&c| c > 1).count();
    assert!(
        shared > owners.len() / 2,
        "most occupied bits should be shared by multiple vehicles ({shared}/{})",
        owners.len()
    );
}
