//! Seeded overload storms against the deadline-aware reactor daemon.
//!
//! Each storm saturates a two-worker daemon with slow ingest jobs (every
//! commit stalls via the `rpc.ingest` fault site) while probing the three
//! overload-control guarantees end to end:
//!
//! * **doomed work never executes** — uploads stamped with a 1 ms wire
//!   deadline that expire in the queue are answered `DeadlineExceeded`
//!   and must be absent from the store afterwards, while every
//!   `UploadOk` ack must survive restart;
//! * **control stays answerable** — `Stats` returns while every worker
//!   is parked, because control frames run inline on the reactor;
//! * **drain loses nothing** — a draining daemon answers `GoingAway`,
//!   quiesces, and a clean restart replays exactly the acked set with
//!   estimates bit-for-bit equal to an in-process reference.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_fault::FaultPlan;
use ptm_integration_tests::{direct_record, fleet};
use ptm_net::CentralServer;
use ptm_rpc::proto::{decode_response, encode_request_with};
use ptm_rpc::{
    read_frame, write_frame, ClientConfig, ClientError, ErrorCode, ReadOutcome, Request, Response,
    RpcClient, RpcServer, ServerConfig, DEFAULT_MAX_FRAME_LEN,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn temp_archive(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ptm-overload-{}-{name}.ptma", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn cleanup_archive(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir_all(path);
}

fn campaign(location: u64, periods: u32, seed: u64) -> Vec<TrafficRecord> {
    let scheme = EncodingScheme::new(11, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let persistent = fleet(&mut rng, 40, 3);
    let size = BitmapSize::new(1024).expect("pow2");
    (0..periods)
        .map(|p| {
            let transient = fleet(&mut rng, 80, 3);
            let mut all = persistent.clone();
            all.extend(transient);
            direct_record(
                &scheme,
                LocationId::new(location),
                PeriodId::new(p),
                size,
                &all,
            )
        })
        .collect()
}

fn storm_client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(5),
        max_attempts: 10,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(30),
        jitter_seed: seed,
        // A generous budget: it stamps FLAG_DEADLINE on every frame (so
        // the whole storm exercises the deadline wire path) without ever
        // dooming the uploads themselves.
        deadline: Some(Duration::from_secs(30)),
        breaker_threshold: 0,
        ..ClientConfig::default()
    }
}

/// One raw v3 request/response exchange on an already-open stream,
/// stamped with `deadline_ms`.
fn raw_exchange(stream: &mut TcpStream, request: &Request, deadline_ms: Option<u32>) -> Response {
    let payload = encode_request_with(request, None, deadline_ms);
    write_frame(stream, &payload).expect("raw write");
    match read_frame(stream, DEFAULT_MAX_FRAME_LEN).expect("raw read") {
        ReadOutcome::Frame(bytes) => decode_response(&bytes).expect("raw decode"),
        other => panic!("expected a frame, got {other:?}"),
    }
}

/// Polls the live `Stats` snapshot until the overload gauges report a
/// fully settled pool: nothing in flight, every class queue empty.
fn assert_gauges_settle(client: &mut RpcClient, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snapshot = client.stats().expect("stats");
        if snapshot.contains("\"worker_inflight\":0")
            && snapshot.contains("\"queue_depth\":{\"control\":0,\"query\":0,\"upload\":0}")
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "overload gauges never settled ({context}): {snapshot}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn run_overload_storm(seed: u64) {
    let path = temp_archive(&format!("storm-{seed}"));
    // Every ingest commit stalls 25 ms: three uploader threads against two
    // workers keeps the pool saturated for the whole storm.
    let plan = FaultPlan::parse("rpc.ingest@1/1=delay:25", seed).expect("plan");
    let config = ServerConfig {
        s: 3,
        workers: 2,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(1),
        retry_after_ms: 10,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let addr = server.local_addr();

    ptm_obs::enable_metrics();
    let doomed_before = ptm_obs::registry()
        .counter("rpc.server.deadline_dropped")
        .get();

    let locations: Vec<u64> = vec![21, 22, 23];
    let campaigns: Vec<Vec<TrafficRecord>> = locations
        .iter()
        .map(|&loc| campaign(loc, 6, seed.wrapping_mul(1000) + loc))
        .collect();

    // Saturate: one uploader thread per location, one ingest job (and one
    // 25 ms stall) per record.
    let uploaders: Vec<_> = campaigns
        .iter()
        .map(|records| {
            let records = records.clone();
            std::thread::spawn(move || {
                let mut client =
                    RpcClient::connect(addr, storm_client_config(seed)).expect("uploader connect");
                for record in &records {
                    let summary = client.upload(record).expect("storm upload");
                    assert_eq!(summary.accepted + summary.duplicates, 1);
                }
            })
        })
        .collect();

    // While the pool is saturated, Stats must keep answering (control
    // frames run inline on the reactor, never through the worker pool).
    let mut stats_client =
        RpcClient::connect(addr, storm_client_config(seed ^ 1)).expect("stats connect");
    std::thread::sleep(Duration::from_millis(30));
    for _ in 0..5 {
        let snapshot = stats_client.stats().expect("stats under saturation");
        assert!(
            snapshot.contains("\"overload\""),
            "stats must carry the overload block (seed {seed})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Doom probes: raw v3 uploads for a sentinel location carrying a 1 ms
    // wire deadline. Parked behind 25 ms ingest stalls, most expire in the
    // queue; the server must answer DeadlineExceeded *without executing*
    // them — verified against the store after restart.
    let sentinel = 900 + seed;
    let sentinel_records = campaign(sentinel, 8, seed.wrapping_mul(7919));
    let mut probe = TcpStream::connect(addr).expect("probe connect");
    probe
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("probe timeout");
    let mut doomed_periods = Vec::new();
    let mut acked_periods = Vec::new();
    for (period, record) in sentinel_records.iter().enumerate() {
        match raw_exchange(&mut probe, &Request::Upload(record.clone()), Some(1)) {
            Response::DeadlineExceeded => doomed_periods.push(period),
            Response::UploadOk {
                accepted,
                duplicates,
            } => {
                assert_eq!(accepted + duplicates, 1, "one probe, one outcome");
                acked_periods.push(period);
            }
            other => panic!("probe got unexpected answer (seed {seed}): {other:?}"),
        }
    }
    assert!(
        !doomed_periods.is_empty(),
        "a saturated pool must doom at least one 1 ms-deadline probe (seed {seed})"
    );

    for uploader in uploaders {
        uploader.join().expect("uploader thread");
    }

    // Every doomed reply must be a drop, not an execution: the counter
    // moved once per doomed probe and nothing else doomed (the storm
    // clients carry a 30 s budget).
    let doomed_after = ptm_obs::registry()
        .counter("rpc.server.deadline_dropped")
        .get();
    assert_eq!(
        doomed_after - doomed_before,
        doomed_periods.len() as u64,
        "deadline_dropped must move exactly once per doomed probe (seed {seed})"
    );

    // The storm is over: queue-depth and in-flight gauges must settle to
    // zero (no phantom queue entries, no leaked in-flight slots).
    assert_gauges_settle(&mut stats_client, &format!("seed {seed}"));

    // Drain: new work is answered GoingAway with the hand-off hint while
    // the daemon quiesces.
    server.drain();
    match raw_exchange(&mut probe, &Request::Ping, None) {
        // The hand-off hint is floored by the measured queue-delay EWMA,
        // so after a storm of 25 ms sojourns it can exceed the configured
        // 10 ms — but never undercut it.
        Response::GoingAway { retry_after_ms } => assert!(retry_after_ms >= 10),
        other => panic!("draining daemon must answer GoingAway (seed {seed}): {other:?}"),
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.drain_complete() {
        assert!(
            Instant::now() < deadline,
            "drain never reached quiescence (seed {seed})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(probe);
    drop(stats_client);
    server.shutdown().expect("shutdown");
    ptm_obs::set_metrics_enabled(false);

    // Clean restart: exactly the acked set survives — every campaign
    // record plus the probe uploads that were acked, none that doomed —
    // and estimates match an in-process reference bit for bit.
    let clean = ServerConfig {
        s: 3,
        poll_interval: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, clean).expect("clean restart");
    let expected: usize = campaigns.iter().map(Vec::len).sum::<usize>() + acked_periods.len();
    assert_eq!(
        server.replay_report().records,
        expected,
        "drain must lose zero acked records (seed {seed})"
    );
    let reference = CentralServer::new(3);
    for record in campaigns.iter().flatten() {
        reference.submit(record.clone()).expect("reference submit");
    }
    for &period in &acked_periods {
        reference
            .submit(sentinel_records[period].clone())
            .expect("reference sentinel");
    }
    let mut client =
        RpcClient::connect(server.local_addr(), storm_client_config(seed)).expect("verify client");
    for &loc in &locations {
        let location = LocationId::new(loc);
        for period in 0..6 {
            let period = PeriodId::new(period);
            let over_wire = client.query_volume(location, period).expect("volume");
            let in_process = reference.estimate_volume(location, period).expect("volume");
            assert_eq!(
                over_wire.to_bits(),
                in_process.to_bits(),
                "volume at {loc} (seed {seed})"
            );
        }
    }
    let sentinel_loc = LocationId::new(sentinel);
    for &period in &acked_periods {
        let period = PeriodId::new(period as u32);
        let over_wire = client
            .query_volume(sentinel_loc, period)
            .expect("acked sentinel");
        let in_process = reference
            .estimate_volume(sentinel_loc, period)
            .expect("acked sentinel");
        assert_eq!(over_wire.to_bits(), in_process.to_bits());
    }
    for &period in &doomed_periods {
        match client.query_volume(sentinel_loc, PeriodId::new(period as u32)) {
            Err(ClientError::Server {
                code: ErrorCode::MissingRecord,
                ..
            }) => {}
            other => panic!(
                "doomed period {period} must never have been executed (seed {seed}): {other:?}"
            ),
        }
    }
    server.shutdown().expect("clean shutdown");
    cleanup_archive(&path);
}

#[test]
fn seeded_overload_storms_hold_every_invariant() {
    let _guard = lock();
    for seed in [2, 9, 41, 777, 5309] {
        run_overload_storm(seed);
    }
}

/// Deterministic saturation: with a single worker parked on a 400 ms
/// ingest stall, `Stats` and `Ping` must answer long before the stall
/// ends — control never queues behind the pool.
#[test]
fn stats_answers_while_every_worker_is_parked() {
    let _guard = lock();
    let path = temp_archive("parked");
    let plan = FaultPlan::parse("rpc.ingest@1=delay:400", 5).expect("plan");
    let config = ServerConfig {
        s: 3,
        workers: 1,
        poll_interval: Duration::from_millis(1),
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let addr = server.local_addr();

    // Park the only worker: send the upload raw and do not read its ack.
    let record = campaign(31, 1, 99).remove(0);
    let mut parker = TcpStream::connect(addr).expect("parker connect");
    parker
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("parker timeout");
    let payload = encode_request_with(&Request::Upload(record), None, None);
    write_frame(&mut parker, &payload).expect("park write");
    std::thread::sleep(Duration::from_millis(50));

    let mut client = RpcClient::connect(addr, ClientConfig::default()).expect("client");
    let started = Instant::now();
    let snapshot = client.stats().expect("stats while parked");
    let info = client.ping().expect("ping while parked");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(300),
        "control answers must not wait out the 400 ms park (took {elapsed:?})"
    );
    assert!(snapshot.contains("\"worker_inflight\":1"), "{snapshot}");
    assert_eq!(info.records, 0, "the parked upload has not committed yet");

    // The parked upload still completes normally once the stall elapses.
    match read_frame(&mut parker, DEFAULT_MAX_FRAME_LEN).expect("park read") {
        ReadOutcome::Frame(bytes) => match decode_response(&bytes).expect("park decode") {
            Response::UploadOk { accepted, .. } => assert_eq!(accepted, 1),
            other => panic!("parked upload must still commit: {other:?}"),
        },
        other => panic!("expected the parked ack, got {other:?}"),
    }
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}
