//! Cross-crate glue: the crypto substrate feeding the protocol layer, and
//! record round-trips through serialization (RSU → central server uploads).

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_crypto::cert::TrustedAuthority;
use ptm_crypto::group::{is_prime, Group};
use ptm_crypto::{Hash64, SipHash24};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

#[test]
fn record_upload_roundtrips_through_json() {
    // RSUs serialize records to the central server; joins must survive it.
    let scheme = EncodingScheme::new(1, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let location = LocationId::new(8);
    let size = BitmapSize::new(1 << 12).expect("pow2");
    let fleet: Vec<VehicleSecrets> = (0..300)
        .map(|_| VehicleSecrets::generate(&mut rng, 3))
        .collect();
    let mut records = Vec::new();
    for p in 0..4u32 {
        let mut record = TrafficRecord::new(location, PeriodId::new(p), size);
        for v in &fleet {
            record.encode(&scheme, v);
        }
        // Round-trip through the wire format.
        let wire = serde_json::to_vec(&record).expect("serialize");
        let back: TrafficRecord = serde_json::from_slice(&wire).expect("deserialize");
        assert_eq!(back, record);
        records.push(back);
    }
    let est = ptm_core::point::PointEstimator::new()
        .estimate(&records)
        .expect("estimate over deserialized records");
    assert!((est - 300.0).abs() / 300.0 < 0.1, "estimate {est}");
}

#[test]
fn certificate_chain_survives_serialization() {
    let mut authority = TrustedAuthority::from_seed(77);
    let cred = authority.issue("rsu-serialized");
    let wire = serde_json::to_string(cred.certificate()).expect("serialize");
    let cert: ptm_crypto::Certificate = serde_json::from_str(&wire).expect("deserialize");
    assert!(authority.root().verify_certificate(&cert).is_ok());

    // A deserialized-then-tampered certificate still fails.
    let mut bad = wire.replace("rsu-serialized", "rsu-tampered!!");
    if bad == wire {
        bad = wire.clone();
    }
    if let Ok(tampered) = serde_json::from_str::<ptm_crypto::Certificate>(&bad) {
        assert!(
            authority.root().verify_certificate(&tampered).is_err()
                || tampered.subject() == "rsu-serialized"
        );
    }
}

#[test]
fn encoding_uses_the_shared_hash_universe() {
    // The Hash64 abstraction: the same SipHash key must give the same
    // encoding whether called through the trait or the scheme.
    let hasher = SipHash24::new(42, 42u64.rotate_left(31) ^ 0x9e37_79b9_7f4a_7c15);
    let via_trait = hasher.hash64(&7u64.to_le_bytes());
    assert_eq!(via_trait, hasher.hash_u64(7));
}

#[test]
fn simulation_group_is_sound() {
    // The DH/Schnorr group that the V2I handshake depends on: safe prime,
    // prime order subgroup, generator of the right order.
    let group = Group::simulation_default();
    assert!(is_prime(group.p));
    assert!(is_prime(group.q));
    assert_eq!(group.p, 2 * group.q + 1);
    assert_eq!(group.pow(group.g, group.q), 1);
    // A full key agreement through the protocol helpers.
    let (a_sec, a_pub) = ptm_net::message::dh_keypair(111);
    let (b_sec, b_pub) = ptm_net::message::dh_keypair(222);
    assert_eq!(
        ptm_net::message::dh_shared(b_pub, a_sec),
        ptm_net::message::dh_shared(a_pub, b_sec)
    );
}

#[test]
fn hash_collisions_are_the_privacy_mechanism_not_a_bug() {
    // Two distinct vehicles encoded to the same bit produce identical
    // observable effects — the record genuinely cannot distinguish them.
    let scheme = EncodingScheme::new(3, 3);
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let location = LocationId::new(1);
    let m = 64usize;
    // Find a colliding pair by generation.
    let mut by_index: std::collections::HashMap<usize, VehicleSecrets> =
        std::collections::HashMap::new();
    let (a, b) = loop {
        let v = VehicleSecrets::generate(&mut rng, 3);
        let idx = scheme.encode_index(&v, location, m);
        if let Some(existing) = by_index.get(&idx) {
            break (existing.clone(), v);
        }
        by_index.insert(idx, v);
    };
    let size = BitmapSize::new(m).expect("pow2");
    let mut ra = TrafficRecord::new(location, PeriodId::new(0), size);
    ra.encode(&scheme, &a);
    let mut rb = TrafficRecord::new(location, PeriodId::new(0), size);
    rb.encode(&scheme, &b);
    assert_eq!(
        ra.bitmap(),
        rb.bitmap(),
        "colliding vehicles are indistinguishable"
    );
}
