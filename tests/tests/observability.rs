//! Cross-crate observability tests: the ptm-obs registry is process-global,
//! so these check that the instrumentation woven through ptm-core / ptm-net /
//! ptm-sim records the right things, stays race-free under `run_trials`
//! parallelism, and produces thread-count-independent snapshots.
//!
//! The enabled flag and the registry are shared by every test in this
//! binary; `obs_lock()` serializes them, and each test measures *deltas*
//! (value after minus value before) rather than absolute counter values.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::record::PeriodId;
use ptm_integration_tests::{direct_record, fleet};
use ptm_net::{SimConfig, SimDuration, V2iSimulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn counter_value(name: &str) -> u64 {
    ptm_obs::registry().counter(name).get()
}

fn histogram_count(name: &str) -> u64 {
    ptm_obs::registry().histogram(name).count()
}

#[test]
fn concurrent_counter_and_histogram_recording_is_exact() {
    let _guard = obs_lock();
    ptm_obs::set_metrics_enabled(true);
    const TRIALS: usize = 64;
    const PER_TRIAL: u64 = 1000;
    let counter = ptm_obs::registry().counter("itest.concurrent.counter");
    let hist = ptm_obs::registry().histogram("itest.concurrent.hist");
    let counter_before = counter.get();
    let hist_before = hist.count();

    // Hammer one counter and one histogram from all run_trials workers.
    ptm_sim::runner::run_trials(TRIALS, 8, |trial| {
        for i in 0..PER_TRIAL {
            counter.inc();
            hist.record(trial as u64 * PER_TRIAL + i);
        }
    });

    assert_eq!(
        counter.get() - counter_before,
        TRIALS as u64 * PER_TRIAL,
        "no increments may be lost under contention"
    );
    assert_eq!(hist.count() - hist_before, TRIALS as u64 * PER_TRIAL);
    ptm_obs::set_metrics_enabled(false);
}

/// Runs the same deterministic encode workload under `run_trials` and
/// returns the deltas of the encode counters it produced.
fn encode_workload_deltas(threads: usize) -> BTreeMap<&'static str, u64> {
    let names = [
        "core.encode.vehicles",
        "core.encode.bits_set",
        "core.encode.collisions",
    ];
    let before: BTreeMap<&str, u64> = names.iter().map(|&n| (n, counter_value(n))).collect();
    let span_before = histogram_count("core.encode.record");

    ptm_sim::runner::run_trials(16, threads, |trial| {
        let scheme = EncodingScheme::new(0x0B5E, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(trial as u64);
        let vehicles = fleet(&mut rng, 50, 3);
        direct_record(
            &scheme,
            LocationId::new(trial as u64 + 1),
            PeriodId::new(0),
            BitmapSize::new(1 << 12).expect("pow2"),
            &vehicles,
        )
    });

    let mut deltas: BTreeMap<&'static str, u64> = names
        .iter()
        .map(|&n| (n, counter_value(n) - before[n]))
        .collect();
    deltas.insert(
        "span:core.encode.record",
        histogram_count("core.encode.record") - span_before,
    );
    deltas
}

#[test]
fn snapshot_deltas_are_independent_of_thread_count() {
    let _guard = obs_lock();
    ptm_obs::set_metrics_enabled(true);
    let single = encode_workload_deltas(1);
    let parallel = encode_workload_deltas(8);
    assert_eq!(
        single, parallel,
        "the same workload must record identical counts at any thread count"
    );
    // Sanity: the workload did record something, and the parts add up.
    assert_eq!(single["core.encode.vehicles"], 16 * 50);
    assert_eq!(
        single["core.encode.bits_set"] + single["core.encode.collisions"],
        single["core.encode.vehicles"]
    );
    assert_eq!(single["span:core.encode.record"], 16 * 50);
    ptm_obs::set_metrics_enabled(false);
}

#[test]
fn snapshots_of_settled_state_are_deterministic() {
    let _guard = obs_lock();
    ptm_obs::set_metrics_enabled(true);
    ptm_obs::registry()
        .counter("itest.deterministic.counter")
        .add(5);
    ptm_obs::registry()
        .histogram("itest.deterministic.hist")
        .record(77);
    ptm_obs::set_metrics_enabled(false);
    // With no writers running, repeated snapshots must match exactly —
    // including their JSON rendering (sorted names).
    let first = ptm_obs::snapshot();
    let second = ptm_obs::snapshot();
    assert_eq!(first, second);
    assert_eq!(first.to_json_pretty(), second.to_json_pretty());
}

#[test]
fn pipeline_metrics_cover_encode_submit_estimate() {
    let _guard = obs_lock();
    ptm_obs::set_metrics_enabled(true);
    let submit_before = counter_value("net.server.submit.accepted");
    let bits_before = counter_value("net.server.bits_stored");
    let query_before = counter_value("net.server.query.point");
    let join_before = counter_value("core.join.and.ops");
    let period_spans_before = histogram_count("net.sim.period");

    // Encode → submit → estimate through the full V2I simulator.
    let scheme = EncodingScheme::new(0x0B55, 3);
    let size = BitmapSize::new(1 << 11).expect("pow2");
    let mut sim = V2iSimulator::new(
        SimConfig::default(),
        scheme,
        &[(LocationId::new(1), size)],
        1234,
    );
    let vehicles: Vec<usize> = (0..60).map(|_| sim.add_vehicle()).collect();
    let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
    for &p in &periods {
        for (k, &v) in vehicles.iter().enumerate() {
            sim.schedule_pass(v, 0, SimDuration::from_millis(100 * k as u64));
        }
        sim.run_period(p).expect("period runs");
    }
    sim.server()
        .estimate_point_persistent(LocationId::new(1), &periods)
        .expect("estimate");
    // The encode-latency histogram is fed by the direct-encoding fast path.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let vs: Vec<VehicleSecrets> = fleet(&mut rng, 10, 3);
    direct_record(&scheme, LocationId::new(2), PeriodId::new(0), size, &vs);
    // Touch the trial runner so its span/timing metrics are registered
    // regardless of test ordering within this binary.
    ptm_sim::runner::run_trials(2, 2, |i| i);
    ptm_obs::set_metrics_enabled(false);

    assert_eq!(
        counter_value("net.server.submit.accepted") - submit_before,
        3
    );
    assert!(counter_value("net.server.bits_stored") > bits_before);
    assert_eq!(counter_value("net.server.query.point") - query_before, 1);
    assert!(
        counter_value("core.join.and.ops") > join_before,
        "point estimate AND-joins"
    );
    assert_eq!(histogram_count("net.sim.period") - period_spans_before, 3);

    // The acceptance-criteria names all appear in the JSON snapshot.
    let json = ptm_obs::snapshot().to_json_pretty();
    for name in [
        "net.server.submit.accepted",
        "net.server.bits_stored",
        "net.server.records",
        "core.encode.bits_set",
        "core.encode.record",
        "core.join.and.ops",
        "core.join.fan_in",
        "net.sim.period",
        "sim.run_trials",
        "sim.trial.wall_ns",
        "sim.trials.completed",
    ] {
        assert!(
            json.contains(&format!("\"{name}\"")),
            "snapshot missing {name}:\n{json}"
        );
    }
}

#[test]
fn disabled_metrics_record_nothing_anywhere() {
    let _guard = obs_lock();
    ptm_obs::set_metrics_enabled(false);
    let snap_before = ptm_obs::snapshot();
    let scheme = EncodingScheme::new(0x0FF0, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let vehicles = fleet(&mut rng, 40, 3);
    let record = direct_record(
        &scheme,
        LocationId::new(8),
        PeriodId::new(0),
        BitmapSize::new(1 << 10).expect("pow2"),
        &vehicles,
    );
    assert!(
        record.bitmap().count_ones() > 0,
        "the workload itself still works"
    );
    let snap_after = ptm_obs::snapshot();
    assert_eq!(
        snap_before, snap_after,
        "disabled instrumentation must leave every metric untouched"
    );
}
