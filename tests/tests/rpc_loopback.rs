//! End-to-end tests for the `ptm-rpc` upload channel: a real daemon on a
//! loopback socket, concurrent clients, restart replay, and fault
//! injection (lost connections, corrupt frames, oversized frames).
//!
//! Metric-asserting tests share the process-global `ptm-obs` registry, so
//! every test takes [`lock`] to serialize against the others.

#![forbid(unsafe_code)]

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_integration_tests::{direct_record, fleet};
use ptm_net::CentralServer;
use ptm_rpc::{
    ClientConfig, ClientError, ErrorCode, RpcClient, RpcServer, ServerConfig, PROTOCOL_VERSION,
};
use ptm_store::{SegmentStore, StoreOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn temp_archive(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ptm-rpc-it-{}-{name}.ptma", std::process::id()));
    // The path may hold a leftover v1 file or a v2 segment directory.
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn cleanup_archive(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir_all(path);
}

fn server_config() -> ServerConfig {
    ServerConfig {
        s: 3,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(5),
        max_attempts: 4,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..ClientConfig::default()
    }
}

/// A deterministic per-location campaign: `periods` records sharing a
/// persistent fleet plus transient traffic.
fn campaign(location: u64, periods: u32, seed: u64) -> Vec<TrafficRecord> {
    let scheme = EncodingScheme::new(11, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let persistent = fleet(&mut rng, 120, 3);
    let size = BitmapSize::new(4096).expect("pow2");
    (0..periods)
        .map(|p| {
            let transient = fleet(&mut rng, 250, 3);
            let mut all = persistent.clone();
            all.extend(transient);
            direct_record(
                &scheme,
                LocationId::new(location),
                PeriodId::new(p),
                size,
                &all,
            )
        })
        .collect()
}

#[test]
fn concurrent_uploads_match_in_process_estimates_bit_for_bit() {
    let _guard = lock();
    let path = temp_archive("e2e");
    let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("start");
    let addr = server.local_addr();

    const PERIODS: u32 = 4;
    let locations: Vec<u64> = (1..=6).collect();
    let campaigns: Vec<Vec<TrafficRecord>> = locations
        .iter()
        .map(|&loc| campaign(loc, PERIODS, 1000 + loc))
        .collect();

    // M client threads, one per location, each uploading its records.
    std::thread::scope(|scope| {
        for records in &campaigns {
            scope.spawn(move || {
                let mut client = RpcClient::connect(addr, client_config()).expect("client");
                let summary = client.upload_batch(records).expect("upload");
                assert_eq!(summary.accepted as usize, records.len());
                assert_eq!(summary.duplicates, 0);
            });
        }
    });
    assert_eq!(server.record_count(), locations.len() * PERIODS as usize);

    // The reference: the same records submitted to an in-process engine.
    let reference = CentralServer::new(3);
    for records in &campaigns {
        for record in records {
            reference.submit(record.clone()).expect("reference submit");
        }
    }

    let periods: Vec<PeriodId> = (0..PERIODS).map(PeriodId::new).collect();
    let mut client = RpcClient::connect(addr, client_config()).expect("client");
    for &loc in &locations {
        let location = LocationId::new(loc);
        let over_wire = client.query_point(location, &periods).expect("point");
        let in_process = reference
            .estimate_point_persistent(location, &periods)
            .expect("point");
        assert_eq!(over_wire.to_bits(), in_process.to_bits(), "point at {loc}");

        let over_wire = client.query_volume(location, periods[0]).expect("volume");
        let in_process = reference
            .estimate_volume(location, periods[0])
            .expect("volume");
        assert_eq!(over_wire.to_bits(), in_process.to_bits(), "volume at {loc}");
    }
    let a = LocationId::new(locations[0]);
    let b = LocationId::new(locations[1]);
    let over_wire = client.query_p2p(a, b, &periods).expect("p2p");
    let in_process = reference
        .estimate_p2p_persistent(a, b, &periods)
        .expect("p2p");
    assert_eq!(over_wire.to_bits(), in_process.to_bits(), "p2p");

    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

#[test]
fn restart_replays_archive_and_answers_identically() {
    let _guard = lock();
    let path = temp_archive("replay");
    let records = campaign(9, 5, 77);
    let periods: Vec<PeriodId> = (0..5).map(PeriodId::new).collect();
    let location = LocationId::new(9);

    let first_answer;
    {
        let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("start");
        let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");
        client.upload_batch(&records).expect("upload");
        first_answer = client.query_point(location, &periods).expect("query");
        server.shutdown().expect("shutdown");
    }

    // A fresh daemon process on the same archive answers from disk alone.
    let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("restart");
    assert_eq!(server.replay_report().records, records.len());
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");
    let second_answer = client.query_point(location, &periods).expect("query");
    assert_eq!(first_answer.to_bits(), second_answer.to_bits());
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

#[test]
fn retry_after_server_killed_mid_campaign_leaves_no_duplicate_frames() {
    let _guard = lock();
    let path = temp_archive("kill-retry");
    let records = campaign(3, 6, 13);

    // The daemon dies after only part of the campaign is acked.
    {
        let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("start");
        let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");
        client.upload_batch(&records[..4]).expect("partial upload");
        server.shutdown().expect("kill");
    }

    // The RSU cannot know which records were acked, so its retry re-sends
    // the whole campaign to the restarted daemon.
    let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("restart");
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");
    let summary = client.upload_batch(&records).expect("retry upload");
    assert_eq!(summary.accepted, 2, "only the unacked tail is new");
    assert_eq!(summary.duplicates, 4, "the acked prefix is idempotent");
    server.shutdown().expect("shutdown");

    // The store holds exactly one live frame per record — no duplicates
    // (a re-archived duplicate would supersede, not coexist, so the key
    // count equals the record count exactly).
    let opened = SegmentStore::open_or_migrate(&path, StoreOptions::default()).expect("open");
    let store = opened.store;
    assert_eq!(store.record_count(), records.len());
    let mut keys = 0usize;
    for location in store.locations() {
        keys += store.periods_for_location(location).len();
    }
    assert_eq!(keys, records.len(), "every archived frame is unique");
    cleanup_archive(&path);
}

#[test]
fn client_retries_transparently_after_idle_disconnect() {
    let _guard = lock();
    let path = temp_archive("idle-retry");
    // An aggressive idle cutoff severs the client's connection quickly.
    let config = ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..server_config()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");
    assert_eq!(client.ping().expect("ping").version, PROTOCOL_VERSION);

    // Wait until the server has dropped the idle connection, then call
    // again: the client must notice the dead stream and reconnect.
    std::thread::sleep(Duration::from_millis(400));
    let records = campaign(5, 2, 5);
    let summary = client
        .upload_batch(&records)
        .expect("upload after disconnect");
    assert_eq!(summary.accepted as usize, records.len());
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

#[test]
fn corrupt_and_oversized_frames_close_the_connection_not_the_daemon() {
    let _guard = lock();
    use std::io::{Read, Write};
    let path = temp_archive("faults");
    let config = ServerConfig {
        max_frame_len: 64 * 1024,
        ..server_config()
    };
    let server = RpcServer::start("127.0.0.1:0", &path, config).expect("start");
    let addr = server.local_addr();

    ptm_obs::enable_metrics();
    let bad_before = ptm_obs::registry().counter("rpc.server.frames.bad").get();

    // Fault 1: a frame whose checksum is wrong.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut junk = Vec::new();
        junk.extend_from_slice(&4u32.to_le_bytes());
        junk.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        junk.extend_from_slice(&[9, 9, 9, 9]);
        stream.write_all(&junk).expect("write");
        // The server sends a best-effort error frame, then closes: the
        // stream must reach EOF.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read until close");
    }

    // Fault 2: a header advertising a frame far over the limit.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut junk = Vec::new();
        junk.extend_from_slice(&(u32::MAX).to_le_bytes());
        junk.extend_from_slice(&0u32.to_le_bytes());
        stream.write_all(&junk).expect("write");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read until close");
    }

    let bad_after = ptm_obs::registry().counter("rpc.server.frames.bad").get();
    assert!(
        bad_after >= bad_before + 2,
        "bad-frame counter must count both faults: {bad_before} -> {bad_after}"
    );
    ptm_obs::set_metrics_enabled(false);

    // The daemon survived both and still serves healthy clients.
    let mut client = RpcClient::connect(addr, client_config()).expect("client");
    assert_eq!(client.ping().expect("ping").version, PROTOCOL_VERSION);
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}

#[test]
fn conflicting_record_is_fatal_not_retried() {
    let _guard = lock();
    let path = temp_archive("conflict-fatal");
    let server = RpcServer::start("127.0.0.1:0", &path, server_config()).expect("start");
    let mut client = RpcClient::connect(server.local_addr(), client_config()).expect("client");

    let records = campaign(8, 1, 21);
    client.upload_batch(&records).expect("first upload");
    // Same slot, different contents: the daemon must refuse, and the
    // client must surface it as a server error without burning retries.
    let conflicting = campaign(8, 1, 22);
    match client.upload_batch(&conflicting) {
        Err(ClientError::Server {
            code: ErrorCode::DuplicateConflict,
            ..
        }) => {}
        other => panic!("expected DuplicateConflict, got {other:?}"),
    }
    // The engine still answers with the original record.
    let vol = client
        .query_volume(LocationId::new(8), PeriodId::new(0))
        .expect("volume");
    assert!(vol.is_finite());
    server.shutdown().expect("shutdown");
    cleanup_archive(&path);
}
