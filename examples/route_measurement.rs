//! City-wide route-aware measurement on the Sioux Falls network.
//!
//! Unlike the synthetic workloads, vehicles here drive *routes*: a commuter
//! sampled for OD pair (15 → 10) also passes every intermediate
//! intersection on the shortest path, and an RSU at **every** node encodes
//! it. The central server then answers persistent-traffic queries for any
//! location or pair — demonstrating that one bitmap per RSU per day
//! supports the whole query surface at once.
//!
//! ```sh
//! cargo run --release -p ptm-examples --bin route_measurement
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::SystemParams;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_net::CentralServer;
use ptm_traffic::network::NodeId;
use ptm_traffic::presence::PresenceLog;
use ptm_traffic::sioux_falls;
use ptm_traffic::trips::TripSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn location_of(node: NodeId) -> LocationId {
    LocationId::new(node.index() as u64 + 1)
}

fn main() {
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0x2077, params.num_representatives());
    let network = sioux_falls::road_network();
    let table = sioux_falls::trip_table();
    let sampler = TripSampler::new(&table);
    let mut rng = ChaCha12Rng::seed_from_u64(3);

    // 400 commuters with fixed routes, driving every day.
    let commuters: Vec<(VehicleSecrets, ptm_traffic::trips::Trip)> = (0..400)
        .map(|_| {
            let secrets = VehicleSecrets::generate(&mut rng, params.num_representatives());
            let trip = sampler
                .sample_trip(&network, &mut rng)
                .expect("connected network");
            (secrets, trip)
        })
        .collect();

    let periods: Vec<PeriodId> = (0..5).map(PeriodId::new).collect();
    let daily_transient_trips = 3_000usize;

    // Expected per-node volume for sizing: estimate from one dry-run day of
    // sampled routes (the "historical average" of paper Eq. 2).
    let mut expected = [0u64; sioux_falls::NUM_NODES];
    for _ in 0..daily_transient_trips {
        let trip = sampler.sample_trip(&network, &mut rng).expect("connected");
        for node in &trip.nodes {
            expected[node.index()] += 1;
        }
    }
    for (secrets, trip) in commuters.iter() {
        let _ = secrets;
        for node in &trip.nodes {
            expected[node.index()] += 1;
        }
    }

    let server = CentralServer::new(params.num_representatives());
    let mut presence = PresenceLog::new();
    for &period in &periods {
        // One record per RSU (node), sized from the expected volume.
        let mut records: Vec<TrafficRecord> = (0..sioux_falls::NUM_NODES)
            .map(|i| {
                let size = params.bitmap_size(expected[i].max(8) as f64);
                TrafficRecord::new(location_of(NodeId::new(i)), period, size)
            })
            .collect();

        for (secrets, trip) in &commuters {
            for node in &trip.nodes {
                records[node.index()].encode(&scheme, secrets);
                presence.record(location_of(*node), period, secrets.id());
            }
        }
        for _ in 0..daily_transient_trips {
            let secrets = VehicleSecrets::generate(&mut rng, params.num_representatives());
            let trip = sampler.sample_trip(&network, &mut rng).expect("connected");
            for node in &trip.nodes {
                records[node.index()].encode(&scheme, &secrets);
                presence.record(location_of(*node), period, secrets.id());
            }
        }
        for record in records {
            server
                .submit(record)
                .expect("unique (location, period) keys");
        }
    }

    println!(
        "{} RSUs x {} days uploaded {} records\n",
        sioux_falls::NUM_NODES,
        periods.len(),
        server.record_count()
    );

    // Query the three busiest intersections for their persistent core.
    let mut by_volume: Vec<usize> = (0..sioux_falls::NUM_NODES).collect();
    by_volume.sort_by_key(|&i| std::cmp::Reverse(expected[i]));
    let mut out = ptm_report::TextTable::new(vec![
        "intersection".into(),
        "daily volume".into(),
        "persistent (true)".into(),
        "persistent (est)".into(),
    ]);
    for &i in by_volume.iter().take(6) {
        let node = NodeId::new(i);
        let truth = presence.point_persistent(location_of(node), &periods);
        let est = server
            .estimate_point_persistent(location_of(node), &periods)
            .expect("all records present");
        out.add_row(vec![
            format!("node {}", node),
            expected[i].to_string(),
            truth.to_string(),
            format!("{est:.0}"),
        ]);
    }
    println!(
        "point persistent traffic per intersection:\n{}",
        out.render()
    );

    // And a point-to-point query on the heaviest corridor.
    let (a, b) = (NodeId::new(9), NodeId::new(15)); // nodes 10 and 16
    let truth = presence.p2p_persistent(location_of(a), location_of(b), &periods);
    let est = server
        .estimate_p2p_persistent(location_of(a), location_of(b), &periods)
        .expect("all records present");
    println!(
        "corridor {} <-> {}: true persistent {}, estimated {:.0}",
        a, b, truth, est
    );
    println!("\n(each vehicle was encoded at every intersection on its route —");
    println!(" one anonymous bit per RSU per day answers all of the above)");
}
