//! Calendar-shaped persistent-traffic queries.
//!
//! The paper motivates queries like "the persistent traffic over the
//! workdays of a week" or "over the Mondays of several weeks" (Sec. I).
//! This example runs a 21-day campaign at one RSU with three behavioural
//! populations and shows that the *same* daily bitmaps answer all of the
//! calendar queries:
//!
//! * market vendors — every Monday only,
//! * commuters — every workday,
//! * weekend hikers — Saturdays and Sundays.
//!
//! ```sh
//! cargo run --release -p ptm-examples --bin calendar_queries
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::SystemParams;
use ptm_core::point::PointEstimator;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_traffic::generate::fill_transients;
use ptm_traffic::periods::{Calendar, Weekday};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0xCA1E, params.num_representatives());
    let mut rng = ChaCha12Rng::seed_from_u64(21);
    let location = LocationId::new(5);
    let calendar = Calendar::new(Weekday::Monday, 21);

    let gen_fleet = |rng: &mut ChaCha12Rng, n: usize| -> Vec<VehicleSecrets> {
        (0..n)
            .map(|_| VehicleSecrets::generate(rng, params.num_representatives()))
            .collect()
    };
    let vendors = gen_fleet(&mut rng, 300);
    let commuters = gen_fleet(&mut rng, 1_200);
    let hikers = gen_fleet(&mut rng, 500);

    // Build one record per day; ~6000 vehicles on a typical day.
    let size = params.bitmap_size(6_000.0);
    let mut records = Vec::new();
    for period in calendar.all_periods() {
        let weekday = calendar.weekday_of(period);
        let mut record = TrafficRecord::new(location, period, size);
        if weekday == Weekday::Monday {
            for v in &vendors {
                record.encode(&scheme, v);
            }
        }
        if weekday.is_workday() {
            for v in &commuters {
                record.encode(&scheme, v);
            }
        } else {
            for v in &hikers {
                record.encode(&scheme, v);
            }
        }
        fill_transients(&mut record, 4_000, &mut rng);
        records.push(record);
    }
    let pick = |periods: &[PeriodId]| -> Vec<TrafficRecord> {
        periods
            .iter()
            .map(|p| records[p.get() as usize].clone())
            .collect()
    };
    let estimator = PointEstimator::new();

    println!("one RSU, 21 daily bitmaps, three calendar queries:\n");

    // Query 1: Mondays of three consecutive weeks.
    let mondays = calendar.periods_on(Weekday::Monday);
    let est = estimator.estimate(&pick(&mondays)).expect("sized records");
    println!(
        "Mondays x3 weeks       -> estimated {est:>6.0}  (truth {}: vendors + commuters)",
        vendors.len() + commuters.len()
    );

    // Query 2: the workdays of week 2.
    let workdays = calendar.workdays_of_week(1);
    let est = estimator.estimate(&pick(&workdays)).expect("sized records");
    println!(
        "Mon-Fri of week 2      -> estimated {est:>6.0}  (truth {}: commuters only)",
        commuters.len()
    );

    // Query 3: the weekends.
    let weekends: Vec<PeriodId> = calendar
        .all_periods()
        .into_iter()
        .filter(|&p| !calendar.weekday_of(p).is_workday())
        .collect();
    let est = estimator.estimate(&pick(&weekends)).expect("sized records");
    println!(
        "all weekend days       -> estimated {est:>6.0}  (truth {}: hikers only)",
        hikers.len()
    );

    // Query 4: every day of the month — nobody shows up all 21 days.
    let est = estimator.estimate(&records).expect("sized records");
    println!("all 21 days            -> estimated {est:>6.0}  (truth 0)");
}
