//! Weekday core traffic: the paper's motivating point-measurement scenario.
//!
//! "We may want to learn the persistent traffic volume over the workdays of
//! a week" (Sec. I). Here a downtown RSU sees different volumes each
//! weekday — so the central server provisions *different bitmap sizes* per
//! day — and we compare the proposed estimator with the naive AND benchmark
//! as the persistent core shrinks.
//!
//! ```sh
//! cargo run -p ptm-examples --bin weekday_core_traffic
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::SystemParams;
use ptm_core::point::{NaiveAndEstimator, PointEstimator};
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_traffic::generate::{fill_transients, CommonFleet};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0x3EEDA1, params.num_representatives());
    let mut rng = ChaCha12Rng::seed_from_u64(11);
    let location = LocationId::new(42);

    // Monday..Friday volumes; Friday is the heavy shopping day.
    let weekdays = ["Mon", "Tue", "Wed", "Thu", "Fri"];
    let volumes: [u64; 5] = [5_200, 4_800, 5_000, 5_600, 9_400];

    let mut table = ptm_report::TextTable::new(vec![
        "core size".into(),
        "proposed".into(),
        "err %".into(),
        "benchmark".into(),
        "err %".into(),
    ]);

    for &core in &[2_000u64, 800, 300, 100] {
        let commuters = CommonFleet::generate(&mut rng, core, params.num_representatives());
        let mut records = Vec::new();
        for (day, (&volume, name)) in volumes.iter().zip(weekdays).enumerate() {
            // Eq. (2): each day's record is sized from its expected volume,
            // so Friday's bitmap is larger — expansion handles the join.
            let size = params.bitmap_size(volume as f64);
            let mut record = TrafficRecord::new(location, PeriodId::new(day as u32), size);
            commuters.encode_into(&scheme, &mut record);
            fill_transients(&mut record, volume - core, &mut rng);
            if core == 2_000 {
                println!("{name}: volume {volume:>5}, bitmap {size} bits");
            }
            records.push(record);
        }
        let proposed = PointEstimator::new()
            .estimate(&records)
            .expect("sized records");
        let benchmark = NaiveAndEstimator::new()
            .estimate(&records)
            .expect("sized records");
        table.add_row(vec![
            core.to_string(),
            format!("{proposed:.0}"),
            format!(
                "{:.1}",
                (proposed - core as f64).abs() / core as f64 * 100.0
            ),
            format!("{benchmark:.0}"),
            format!(
                "{:.1}",
                (benchmark - core as f64).abs() / core as f64 * 100.0
            ),
        ]);
    }

    println!("\npersistent weekday core, proposed estimator vs naive AND benchmark:");
    println!("{}", table.render());
    println!("the benchmark degrades as the core shrinks (transient hash collisions");
    println!("survive the AND); the proposed estimator models them out — Fig. 4's point.");
}
