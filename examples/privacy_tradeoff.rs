//! The accuracy–privacy dial: pick `f` and `s` for your deployment.
//!
//! The paper's Sec. VI-C: larger bitmaps (higher `f`) estimate better but
//! leak more; more representative bits (higher `s`) protect better but cost
//! accuracy. This example sweeps both dials, printing the measured point
//! estimation error next to the analytic noise-to-information ratio, and
//! highlights the paper's recommended compromise (f = 2, s = 3).
//!
//! ```sh
//! cargo run --release -p ptm-examples --bin privacy_tradeoff
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::SystemParams;
use ptm_core::point::PointEstimator;
use ptm_core::privacy;
use ptm_sim::workload::build_point_records;
use ptm_traffic::generate::PointScenario;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn measured_error(f: f64, s: u32, runs: usize) -> f64 {
    let params = SystemParams::new(f, s);
    let mut total = 0.0;
    for run in 0..runs {
        let seed = ptm_sim::trial_seed(404, &[(f * 10.0) as u64, s as u64, run as u64]);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let scheme = EncodingScheme::new(seed, s);
        let scenario = PointScenario::synthetic(&mut rng, 5, 0.15);
        let records =
            build_point_records(&scheme, &params, &scenario, LocationId::new(1), &mut rng);
        let est = PointEstimator::new()
            .estimate(&records)
            .expect("f >= 1 never saturates");
        total += (est - scenario.persistent as f64).abs() / scenario.persistent as f64;
    }
    total / runs as f64
}

fn main() {
    let runs = 15;
    println!("accuracy vs privacy across the parameter grid ({runs} runs per cell)\n");
    let mut table = ptm_report::TextTable::new(vec![
        "f".into(),
        "s".into(),
        "point rel err".into(),
        "privacy ratio".into(),
        "noise p".into(),
        "verdict".into(),
    ]);
    for &f in &[1.0, 2.0, 3.0, 4.0] {
        for &s in &[2u32, 3, 5] {
            let err = measured_error(f, s, runs);
            let ratio = privacy::asymptotic_ratio(f, s);
            let noise = privacy::asymptotic_noise(f);
            let verdict = match (err < 0.1, ratio >= 1.0) {
                (true, true) => "accurate + private",
                (true, false) => "accurate, trackable",
                (false, true) => "private, noisy",
                (false, false) => "worst of both",
            };
            let marker = if f == 2.0 && s == 3 {
                " <= paper's choice"
            } else {
                ""
            };
            table.add_row(vec![
                format!("{f}"),
                s.to_string(),
                format!("{err:.4}"),
                format!("{ratio:.4}"),
                format!("{noise:.4}"),
                format!("{verdict}{marker}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!("ratio >= 1 means random noise outweighs the tracking signal;");
    println!("at f = 2, s = 3 the ratio is ~2: any apparent trajectory match is");
    println!("twice as likely to be noise as to be the tracked vehicle.");
}
