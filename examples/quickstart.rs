//! Quickstart: measure persistent traffic at one intersection over a week.
//!
//! Five hundred commuter vehicles pass the RSU every day; a few thousand
//! other vehicles come and go. The RSU stores only a bitmap per day — no
//! identities — yet the estimator recovers how many vehicles were there
//! *every* day.
//!
//! ```sh
//! cargo run -p ptm-examples --bin quickstart
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::SystemParams;
use ptm_core::point::PointEstimator;
use ptm_core::record::{PeriodId, TrafficRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn main() {
    let params = SystemParams::paper_default(); // f = 2, s = 3
    let scheme = EncodingScheme::new(0xD15C, params.num_representatives());
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let intersection = LocationId::new(1);

    // 500 daily commuters with on-board secrets (ID, private key, constants).
    let commuters: Vec<VehicleSecrets> = (0..500)
        .map(|_| VehicleSecrets::generate(&mut rng, params.num_representatives()))
        .collect();

    // One traffic record per day, sized for the expected ~4500 vehicles/day.
    let size = params.bitmap_size(4_500.0);
    println!(
        "bitmap size m = {size} bits ({} bytes/day uploaded)",
        size.get() / 8
    );

    let mut records = Vec::new();
    for day in 0..7u32 {
        let mut record = TrafficRecord::new(intersection, PeriodId::new(day), size);
        for commuter in &commuters {
            record.encode(&scheme, commuter);
        }
        // Transient traffic differs every day.
        let transients = rng.gen_range(3_500..4_500);
        for _ in 0..transients {
            let passerby = VehicleSecrets::generate(&mut rng, params.num_representatives());
            record.encode(&scheme, &passerby);
        }
        println!(
            "day {day}: {} total vehicles -> {} bits set",
            500 + transients,
            record.bitmap().count_ones()
        );
        records.push(record);
    }

    let estimate = PointEstimator::new()
        .estimate(&records)
        .expect("records are sized for this load");
    println!("\ntrue persistent traffic:      500 vehicles");
    println!("estimated persistent traffic: {estimate:.1} vehicles");
    println!(
        "relative error:               {:.2}%",
        (estimate - 500.0).abs() / 500.0 * 100.0
    );
}
