//! Congestion-source ranking: the paper's motivating point-to-point
//! scenario on real data.
//!
//! "If a location is consistently congested, we can find the sources of the
//! traffic … the persistent point-to-point traffic measurement tells us the
//! minimum amount of traffic contribution that we can always expect from
//! each of those sources. This information helps in determining the
//! priority order for planning measures of traffic relief" (Sec. I).
//!
//! Node 10 is Sioux Falls' busiest location. We measure the *persistent*
//! contribution from each of the paper's eight candidate sources over five
//! weekdays — purely from privacy-preserving bitmaps — and rank them.
//!
//! ```sh
//! cargo run --release -p ptm-examples --bin congestion_sources
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::params::SystemParams;
use ptm_sim::workload::build_p2p_records;
use ptm_traffic::generate::P2pScenario;
use ptm_traffic::network::NodeId;
use ptm_traffic::sioux_falls;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let params = SystemParams::paper_default();
    let table = sioux_falls::paper_trip_table();
    let network = sioux_falls::road_network();
    let congested = table.busiest_node(); // node 10
    println!(
        "congested location: node {} ({} vehicles/day involving it)\n",
        congested,
        table.involving_volume(congested)
    );

    let sources = [15usize, 12, 7, 24, 6, 18, 2, 3];
    let mut rng = ChaCha12Rng::seed_from_u64(99);
    let mut rankings: Vec<(usize, f64, u64, f64)> = sources
        .iter()
        .map(|&label| {
            let node = NodeId::new(label - 1);
            let scenario = P2pScenario::from_trip_table(&table, node, congested, 5);
            let scheme = EncodingScheme::new(label as u64 * 31 + 5, params.num_representatives());
            let records = build_p2p_records(
                &scheme,
                &params,
                &scenario,
                LocationId::new(label as u64),
                LocationId::new(10),
                None,
                &mut rng,
            );
            let estimate = PointToPointEstimator::new(params.num_representatives())
                .estimate(&records.records_l, &records.records_lp)
                .expect("paper-scale records never saturate");
            let hops = network
                .shortest_path(node, congested)
                .map(|p| p.travel_time)
                .unwrap_or(f64::NAN);
            (label, estimate, scenario.persistent, hops)
        })
        .collect();

    rankings.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));

    let mut out = ptm_report::TextTable::new(vec![
        "rank".into(),
        "source node".into(),
        "est. persistent flow".into(),
        "true flow".into(),
        "err %".into(),
        "free-flow min".into(),
    ]);
    for (rank, &(node, est, truth, minutes)) in rankings.iter().enumerate() {
        out.add_row(vec![
            (rank + 1).to_string(),
            node.to_string(),
            format!("{est:.0}"),
            truth.to_string(),
            format!("{:.1}", (est - truth as f64).abs() / truth as f64 * 100.0),
            format!("{minutes:.0}"),
        ]);
    }
    println!("persistent traffic into node {congested}, estimated from bitmaps only:");
    println!("{}", out.render());

    let truth_order: Vec<usize> = {
        let mut v: Vec<(usize, u64)> = rankings.iter().map(|&(n, _, t, _)| (n, t)).collect();
        v.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        v.into_iter().map(|(n, _)| n).collect()
    };
    let est_order: Vec<usize> = rankings.iter().map(|&(n, ..)| n).collect();
    if truth_order == est_order {
        println!("the estimated ranking matches the ground-truth priority order exactly —");
        println!("relief planning can proceed without ever tracking a single vehicle.");
    } else {
        println!("estimated vs true ranking: {est_order:?} vs {truth_order:?}");
    }
}
