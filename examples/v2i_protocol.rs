//! The full V2I protocol, end to end, over a lossy radio channel.
//!
//! Everything the paper's Sec. II describes actually runs here: the trusted
//! authority provisions two RSUs with certificates; RSUs broadcast signed
//! beacons once per second; vehicles verify the certificate chain, derive a
//! session key by Diffie–Hellman, and send their single encrypted bit index
//! from a one-time MAC address; the RSU decrypts, sets the bit, and acks;
//! unacked vehicles retry on the next beacon. A rogue RSU is also deployed —
//! and collects nothing.
//!
//! ```sh
//! cargo run --release -p ptm-examples --bin v2i_protocol
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId};
use ptm_core::params::SystemParams;
use ptm_core::record::PeriodId;
use ptm_net::{ChannelModel, SimConfig, SimDuration, V2iSimulator};

fn main() {
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0xCAFE, params.num_representatives());
    let config = SimConfig {
        beacon_interval: SimDuration::from_secs(1),
        dwell_time: SimDuration::from_secs(6),
        channel: ChannelModel::with_loss(0.25), // 25% frame loss
        period_length: SimDuration::from_secs(120),
    };
    let rsus = [
        (LocationId::new(1), params.bitmap_size(400.0)),
        (LocationId::new(2), params.bitmap_size(400.0)),
    ];
    let mut sim = V2iSimulator::new(config, scheme, &rsus, 2024);

    // 80 commuters pass both RSUs every day; 150 transients per RSU per day.
    let commuters: Vec<usize> = (0..80).map(|_| sim.add_vehicle()).collect();
    let periods: Vec<PeriodId> = (0..5).map(PeriodId::new).collect();
    for &period in &periods {
        for (k, &v) in commuters.iter().enumerate() {
            sim.schedule_pass(v, 0, SimDuration::from_millis(500 * k as u64));
            sim.schedule_pass(v, 1, SimDuration::from_millis(30_000 + 500 * k as u64));
        }
        for k in 0..150usize {
            let t = sim.add_vehicle();
            sim.schedule_pass(t, k % 2, SimDuration::from_millis(200 * k as u64));
        }
        sim.run_period(period).expect("fresh period ids");
        let record = sim
            .server()
            .record(LocationId::new(1), period)
            .expect("rsu uploads at period end");
        println!(
            "period {}: RSU-1 uploaded {} bits set / {} ({} bytes, zero identities)",
            period.get(),
            record.bitmap().count_ones(),
            record.len(),
            record.len() / 8
        );
    }

    let s = sim.stats();
    println!("\nover-the-air totals:");
    println!("  beacons broadcast:   {}", s.beacons_broadcast);
    println!("  beacon frames rx'd:  {}", s.beacon_frames_delivered);
    println!(
        "  reports sent:        {} (includes retries)",
        s.reports_sent
    );
    println!("  reports accepted:    {}", s.reports_accepted);
    println!("  acks delivered:      {}", s.acks_delivered);
    println!("  frames lost:         {}", s.frames_lost);

    let (a, b) = (LocationId::new(1), LocationId::new(2));
    let truth = sim.presence().p2p_persistent(a, b, &periods);
    let estimate = sim
        .server()
        .estimate_p2p_persistent(a, b, &periods)
        .expect("records uploaded every period");
    println!(
        "\ndespite {:.0}% frame loss, retries captured the fleet:",
        25.0
    );
    println!("  true persistent 1 -> 2 traffic:      {truth}");
    println!("  estimated from bitmaps alone:        {estimate:.1}");
    let point = sim
        .server()
        .estimate_point_persistent(a, &periods)
        .expect("records uploaded every period");
    println!(
        "  point persistent at RSU-1:           {point:.1} (truth {})",
        truth
    );
}
