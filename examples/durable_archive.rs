//! Durable measurement campaigns: archive a month of records, crash,
//! recover, keep measuring.
//!
//! The central server accumulates one small bitmap per RSU per period for
//! years — records must outlive the collection process. This example runs a
//! 28-day campaign at one RSU, persisting each day to an append-only
//! archive with CRC-framed records, then simulates a crash (torn final
//! frame), recovers, finishes the campaign, and answers calendar queries
//! from the reloaded data.
//!
//! ```sh
//! cargo run --release -p ptm-examples --bin durable_archive
//! ```

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::SystemParams;
use ptm_core::point::PointEstimator;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_store::Archive;
use ptm_traffic::generate::fill_transients;
use ptm_traffic::periods::{Calendar, Weekday};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(0xD0C5, params.num_representatives());
    let mut rng = ChaCha12Rng::seed_from_u64(28);
    let location = LocationId::new(4);
    let calendar = Calendar::new(Weekday::Monday, 28);
    let commuters: Vec<VehicleSecrets> = (0..900)
        .map(|_| VehicleSecrets::generate(&mut rng, params.num_representatives()))
        .collect();
    let size = params.bitmap_size(5_000.0);

    let mut path = std::env::temp_dir();
    path.push(format!("ptm-campaign-{}.ptma", std::process::id()));

    let make_record = |period: PeriodId, rng: &mut ChaCha12Rng| -> TrafficRecord {
        let mut record = TrafficRecord::new(location, period, size);
        if calendar.weekday_of(period).is_workday() {
            for v in &commuters {
                record.encode(&scheme, v);
            }
        }
        fill_transients(&mut record, 4_000, rng);
        record
    };

    // Days 0..14 recorded, then the collector "crashes" mid-append.
    {
        let mut archive = Archive::create(&path).expect("create archive");
        for day in 0..14u32 {
            archive
                .append(&make_record(PeriodId::new(day), &mut rng))
                .expect("append");
        }
        archive.sync().expect("sync");
    }
    // Simulate the crash: chop bytes off the file tail.
    let len = std::fs::metadata(&path).expect("meta").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open");
    file.set_len(len - 37).expect("truncate");
    drop(file);
    println!(
        "simulated crash: truncated the archive mid-frame ({len} -> {} bytes)",
        len - 37
    );

    // Recovery: the torn day 13 frame is dropped; re-record it and go on.
    let mut recovered = Archive::open(&path).expect("recover");
    println!(
        "recovered {} intact records, discarded {} torn bytes",
        recovered.records.len(),
        recovered.torn_bytes
    );
    let mut records = recovered.records.clone();
    // Deterministic regeneration of the lost day, then the rest of the month.
    let mut rng2 = ChaCha12Rng::seed_from_u64(1000);
    for day in records.len() as u32..28 {
        let record = make_record(PeriodId::new(day), &mut rng2);
        recovered.archive.append(&record).expect("append");
        records.push(record);
    }
    recovered.archive.sync().expect("sync");

    // Reload everything from disk and query.
    let reloaded = Archive::open(&path).expect("reload");
    assert_eq!(reloaded.records.len(), 28);
    println!("\nqueries answered from the on-disk archive alone:");
    let estimator = PointEstimator::new();
    let week2_workdays: Vec<TrafficRecord> = calendar
        .workdays_of_week(1)
        .into_iter()
        .map(|p| reloaded.records[p.get() as usize].clone())
        .collect();
    let est = estimator.estimate(&week2_workdays).expect("estimate");
    println!("  persistent over week-2 workdays: {est:.0}  (truth 900)");

    let with_err = estimator
        .estimate_with_error(&week2_workdays)
        .expect("estimate");
    let (lo, hi) = with_err.interval(2.0);
    println!("  with conservative 2-sigma bars:  [{lo:.0}, {hi:.0}]");

    let storage = std::fs::metadata(&path).expect("meta").len();
    println!(
        "\nwhole 28-day campaign: {storage} bytes on disk ({} bytes/day, identities stored: none)",
        storage / 28
    );
    std::fs::remove_file(&path).ok();
}
