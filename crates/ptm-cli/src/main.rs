//! `ptm` — regenerate every table and figure of the ICDCS 2017 persistent
//! traffic measurement paper from the command line.
//!
//! ```text
//! ptm table1 [--runs N] [--seed S] [--csv DIR]
//! ptm table2 [--csv DIR]
//! ptm fig4   [--t 5|10|both] [--runs N] [--seed S] [--csv DIR]
//! ptm fig5   [--runs N] [--seed S] [--csv DIR]
//! ptm fig6   [--runs N] [--seed S] [--csv DIR]
//! ptm ablations [--runs N] [--seed S]
//! ptm all    [--runs N] [--seed S] [--csv DIR]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ptm_core::params::SystemParams;
use ptm_sim::{ablation, fig4, scatter, table1, table2};

mod rpc;

fn main() -> ExitCode {
    ptm_obs::events::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, options)) = parse(&args) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // --quiet keeps only errors; PTM_LOG still controls format (json/pretty).
    if options.contains_key("quiet") {
        ptm_obs::events::set_max_level(Some(ptm_obs::Level::Error));
    }
    let metrics_path = options.get("metrics").map(PathBuf::from);
    if metrics_path.is_some() {
        ptm_obs::enable_metrics();
    }
    if let Some(path) = options.get("trace") {
        if let Err(message) = enable_trace_output(Path::new(path)) {
            ptm_obs::error!("cli", message);
            return ExitCode::FAILURE;
        }
    }
    let result = run_command(&command, &options);
    // Snapshot even after a failed command — partial metrics help debugging.
    if let Some(path) = metrics_path {
        if let Err(message) = write_metrics(&path, options.contains_key("quiet")) {
            ptm_obs::error!("cli", message);
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            ptm_obs::error!("cli", message);
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ptm — persistent traffic measurement experiments (ICDCS 2017 reproduction)

USAGE:
    ptm <COMMAND> [OPTIONS]

COMMANDS:
    table1      Table I: p2p persistent traffic on Sioux Falls + same-size baseline
    table2      Table II: privacy noise-to-information grid + Monte-Carlo check
    fig4        Fig. 4: point persistent relative error, proposed vs benchmark
    fig5        Fig. 5: actual-vs-estimated scatters (f = 2)
    fig6        Fig. 6: actual-vs-estimated scatters (f = 3)
    ablations   Split strategy, f-frontier, s-sweep, k-way, channel loss
    pair        Estimate p2p persistent traffic for any Sioux Falls node pair
                (--from N --to N [--t T] [--runs N])
    errors      Error-distribution study: bias, CI, histogram per estimator
    matrix      City-wide p2p persistent sweep over all Sioux Falls pairs
    demo        End-to-end V2I protocol demo on the Sioux Falls network
    all         Everything above in sequence
    serve       Run the ptm-rpc record-ingest daemon
                (--archive PATH [--addr A] [--s N] [--duration-secs N]
                 [--cache N: query-cache entries, 0 disables; default 1024]
                 [--max-connections N: 0 removes the cap; default 256]
                 [--inflight N: uncached estimates per location; default 8]
                 [--workers N: reactor worker threads; default 4]
                 [--retry-after-ms N: shed-response hint; default 250]
                 [--sync flush|fsync: archive durability; default flush]
                 [--rotate-bytes N: segment rotation threshold; default 8 MiB]
                 [--compact-ms N: background compaction interval, 0 disables;
                  default 30000]
                 [--recorder-dump P: dump the flight recorder as JSONL to P
                  on panic, degraded transitions, and shutdown]
                 [--drain-file P: graceful-drain hook — when P appears the
                  daemon stops accepting, answers GoingAway, finishes
                  in-flight work, checkpoints, and exits]
                 [--faults SPEC --fault-seed N: deterministic fault plan,
                  see docs/FAULTS.md])
                With --health: probe a running daemon instead (exit 0 iff
                it answers and is not degraded)
    upload      Synthesise a campaign and upload it to a daemon
                (--location L [--addr A] [--periods T] [--vehicles N]
                 [--persistent N] [--seed S]
                 [--pipeline W: pipeline W single-record frames per wave
                  instead of one batch frame; max 256])
    query       Query a daemon (--kind volume|point|p2p --location L
                [--location-b B] [--periods T] [--period P] [--addr A])
    top         Live daemon introspection: records, per-shard depths and
                epochs, latency percentiles, counters, recent flight-recorder
                entries ([--addr A] [--json: raw snapshot])
    trace-validate  Check a span JSONL file against the documented trace
                schema (--file PATH, see docs/OBSERVABILITY.md)

OPTIONS:
    --runs N    Simulation runs per data point (defaults per experiment)
    --seed S    Base RNG seed (default 42)
    --t T       fig4 only: 5, 10, or both (default both)
    --sizing P  fig4 only: campaign-mean (default) or per-period
    --threads N Worker threads (default: all cores)
    --csv DIR   Also write machine-readable CSV/JSON into DIR
    --metrics P Enable metric recording and write a JSON snapshot to path P
                (counters, gauges, latency histograms) plus a summary on stdout
    --trace P   Enable request tracing and append span JSONL to path P; with
                serve, --recorder-dump P additionally dumps the in-memory
                flight recorder on panic, degraded transitions, and shutdown
    --quiet     Suppress progress events (errors still print)

ENVIRONMENT:
    PTM_LOG     Event level and format, comma-separated tokens:
                error|warn|info|debug|trace|off and json|pretty.
                Default: info,pretty. Example: PTM_LOG=debug,json
";

type Options = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Options)> {
    let mut iter = args.iter();
    let command = iter.next()?.clone();
    if command == "--help" || command == "-h" || command == "help" {
        return None;
    }
    let mut options = Options::new();
    while let Some(flag) = iter.next() {
        let key = flag.strip_prefix("--")?;
        // Boolean flags take no value.
        if key == "quiet" || key == "health" || key == "json" {
            options.insert(key.to_owned(), String::new());
            continue;
        }
        let value = iter.next()?;
        options.insert(key.to_owned(), value.clone());
    }
    Some((command, options))
}

fn opt_usize(options: &Options, key: &str) -> Result<Option<usize>, String> {
    options
        .get(key)
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}"))
        })
        .transpose()
}

fn opt_u64(options: &Options, key: &str) -> Result<Option<u64>, String> {
    options
        .get(key)
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}"))
        })
        .transpose()
}

fn csv_dir(options: &Options) -> Result<Option<PathBuf>, String> {
    match options.get("csv") {
        None => Ok(None),
        Some(dir) => {
            let path = PathBuf::from(dir);
            std::fs::create_dir_all(&path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            Ok(Some(path))
        }
    }
}

fn write_artifact(dir: &Path, name: &str, contents: &str) -> Result<(), String> {
    let path = dir.join(name);
    std::fs::write(&path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    ptm_obs::info!("cli", "wrote artifact"; path = path.display().to_string());
    Ok(())
}

/// Dumps the end-of-run metric snapshot as JSON to `path` and, unless
/// quiet, prints the human summary to stdout.
fn write_metrics(path: &Path, quiet: bool) -> Result<(), String> {
    let snapshot = ptm_obs::snapshot();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, snapshot.to_json_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    if !quiet {
        print!("{}", snapshot.render_summary());
    }
    ptm_obs::info!("cli.metrics", "metrics snapshot written";
        path = path.display().to_string(),
        counters = snapshot.counters.len(),
        gauges = snapshot.gauges.len(),
        histograms = snapshot.histograms.len(),
    );
    Ok(())
}

/// `--trace P`: route span JSONL to `path` and turn tracing on. The trace
/// writer flushes after every span, so the file is valid JSONL even if the
/// process is killed mid-run.
fn enable_trace_output(path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let file = std::fs::File::create(path)
        .map_err(|e| format!("cannot open trace output {}: {e}", path.display()))?;
    ptm_obs::set_trace_writer(Some(Box::new(std::io::BufWriter::new(file))));
    ptm_obs::enable_tracing();
    ptm_obs::info!("cli", "tracing enabled"; path = path.display().to_string());
    Ok(())
}

/// `ptm trace-validate --file P`: check every line of a span JSONL file
/// against the trace schema documented in `docs/OBSERVABILITY.md`. Exits
/// non-zero on the first malformed line or if the file holds no entries.
fn cmd_trace_validate(options: &Options) -> Result<(), String> {
    use serde::Content;

    let path = options
        .get("file")
        .ok_or("trace-validate requires --file <span JSONL>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let hex16 = |c: &Content| {
        matches!(c, Content::Str(s) if s.len() == 16
        && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()))
    };
    let uint = |c: &Content| matches!(c, Content::U64(_));
    let string = |c: &Content| matches!(c, Content::Str(_));

    let (mut spans, mut events) = (0usize, 0usize);
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let content: Content =
            serde_json::from_str(line).map_err(|e| format!("{path}:{lineno}: not JSON: {e}"))?;
        let Content::Map(fields) = &content else {
            return Err(format!("{path}:{lineno}: entry is not a JSON object"));
        };
        let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let expect = |name: &str, ok: &dyn Fn(&Content) -> bool, want: &str| {
            field(name)
                .filter(|v| ok(v))
                .map(drop)
                .ok_or(format!("{path}:{lineno}: field {name:?} must be {want}"))
        };
        if field("trace").is_some() {
            // Span entry.
            expect("trace", &hex16, "a 16-digit lowercase hex string")?;
            expect("span", &hex16, "a 16-digit lowercase hex string")?;
            let parent_ok = field("parent").is_some_and(|v| matches!(v, Content::Null) || hex16(v));
            if !parent_ok {
                return Err(format!(
                    "{path}:{lineno}: field \"parent\" must be null or a 16-digit hex string"
                ));
            }
            expect("name", &string, "a string")?;
            expect("start_ns", &uint, "a non-negative integer")?;
            expect("dur_ns", &uint, "a non-negative integer")?;
            spans += 1;
        } else if field("event").is_some() {
            // Flight-recorder event entry.
            expect("event", &string, "a string")?;
            expect("target", &string, "a string")?;
            expect("message", &string, "a string")?;
            expect("at_ns", &uint, "a non-negative integer")?;
            events += 1;
        } else {
            return Err(format!(
                "{path}:{lineno}: entry is neither a span (no \"trace\") nor an event"
            ));
        }
    }
    if spans + events == 0 {
        return Err(format!("{path}: no trace entries found"));
    }
    println!("{path}: {spans} spans, {events} events — schema OK");
    Ok(())
}

fn run_command(command: &str, options: &Options) -> Result<(), String> {
    let _t = ptm_obs::span!("cli.command");
    ptm_obs::debug!("cli", "dispatching command"; command = command);
    let seed = opt_u64(options, "seed")?.unwrap_or(42);
    let runs = opt_usize(options, "runs")?;
    let threads = opt_usize(options, "threads")?.unwrap_or_else(ptm_sim::runner::default_threads);
    let csv = csv_dir(options)?;

    match command {
        "table1" => cmd_table1(seed, runs, threads, csv.as_deref()),
        "table2" => cmd_table2(csv.as_deref()),
        "fig4" => cmd_fig4(seed, runs, threads, options, csv.as_deref()),
        "fig5" => cmd_scatter(2.0, seed, runs, threads, csv.as_deref()),
        "fig6" => cmd_scatter(3.0, seed, runs, threads, csv.as_deref()),
        "ablations" => cmd_ablations(seed, runs, threads),
        "pair" => cmd_pair(seed, runs, threads, options),
        "errors" => cmd_errors(seed, runs, threads),
        "matrix" => cmd_matrix(seed, threads, csv.as_deref()),
        "demo" => cmd_demo(seed),
        "serve" => rpc::cmd_serve(options),
        "upload" => rpc::cmd_upload(options),
        "query" => rpc::cmd_query(options),
        "top" => rpc::cmd_top(options),
        "trace-validate" => cmd_trace_validate(options),
        "all" => {
            cmd_table1(seed, runs, threads, csv.as_deref())?;
            cmd_fig4(seed, runs, threads, options, csv.as_deref())?;
            cmd_scatter(2.0, seed, runs, threads, csv.as_deref())?;
            cmd_scatter(3.0, seed, runs, threads, csv.as_deref())?;
            cmd_table2(csv.as_deref())?;
            cmd_ablations(seed, runs, threads)
        }
        other => Err(format!("unknown command {other:?}; run `ptm --help`")),
    }
}

fn cmd_table1(
    seed: u64,
    runs: Option<usize>,
    threads: usize,
    csv: Option<&Path>,
) -> Result<(), String> {
    let config = table1::Table1Config {
        runs: runs.unwrap_or(50),
        seed,
        threads,
        ..table1::Table1Config::default()
    };
    ptm_obs::info!("cli.table1", "running Table I"; runs = config.runs, locations = 8);
    let result = table1::run(&config);
    println!("{}", table1::render(&result));
    if let Some(dir) = csv {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        write_artifact(dir, "table1.json", &json)?;
    }
    Ok(())
}

fn cmd_table2(csv: Option<&Path>) -> Result<(), String> {
    let result = table2::run(&table2::Table2Config::default());
    println!("{}", table2::render(&result));
    if let Some(dir) = csv {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        write_artifact(dir, "table2.json", &json)?;
    }
    Ok(())
}

fn cmd_fig4(
    seed: u64,
    runs: Option<usize>,
    threads: usize,
    options: &Options,
    csv: Option<&Path>,
) -> Result<(), String> {
    let ts: Vec<usize> = match options.get("t").map(String::as_str).unwrap_or("both") {
        "5" => vec![5],
        "10" => vec![10],
        "both" => vec![5, 10],
        other => return Err(format!("--t expects 5, 10 or both, got {other:?}")),
    };
    let sizing = match options
        .get("sizing")
        .map(String::as_str)
        .unwrap_or("campaign-mean")
    {
        "campaign-mean" => ptm_sim::workload::SizingPolicy::CampaignMean,
        "per-period" => ptm_sim::workload::SizingPolicy::PerPeriod,
        other => {
            return Err(format!(
                "--sizing expects campaign-mean or per-period, got {other:?}"
            ))
        }
    };
    for t in ts {
        let config = fig4::Fig4Config {
            runs_per_point: runs.unwrap_or(25),
            seed,
            threads,
            sizing,
            ..fig4::Fig4Config::panel(t)
        };
        ptm_obs::info!("cli.fig4", "running Fig. 4 panel";
            t = t,
            fractions = config.fractions.len(),
            runs = config.runs_per_point,
        );
        let panel = fig4::run(&config);
        println!("{}", fig4::render(&panel));
        if let Some(dir) = csv {
            write_artifact(dir, &format!("fig4_t{t}.csv"), &fig4::to_csv(&panel))?;
        }
    }
    Ok(())
}

fn cmd_scatter(
    load_factor: f64,
    seed: u64,
    runs: Option<usize>,
    threads: usize,
    csv: Option<&Path>,
) -> Result<(), String> {
    let fig = if load_factor == 2.0 { 5 } else { 6 };
    let config = scatter::ScatterConfig {
        runs_per_fraction: runs.unwrap_or(1).max(1),
        seed,
        threads,
        ..scatter::ScatterConfig::paper(load_factor)
    };
    ptm_obs::info!("cli.scatter", "running scatter figure"; fig = fig, load_factor = load_factor);
    let result = scatter::run(&config);
    println!("Fig. {fig}:");
    println!("{}", scatter::render(&result));
    println!(
        "rms relative deviation from y = x: point {:.4}, p2p {:.4}\n",
        scatter::ScatterResult::rms_relative_deviation(&result.point),
        scatter::ScatterResult::rms_relative_deviation(&result.p2p),
    );
    if let Some(dir) = csv {
        write_artifact(dir, &format!("fig{fig}.csv"), &scatter::to_csv(&result))?;
    }
    Ok(())
}

fn cmd_ablations(seed: u64, runs: Option<usize>, threads: usize) -> Result<(), String> {
    let runs = runs.unwrap_or(20);
    ptm_obs::info!("cli.ablations", "running ablations"; runs = runs);

    let split = ablation::split_strategy(8, runs, threads, seed);
    println!("Ablation 1 — split strategy on trending volumes (t = 8):");
    println!("  halves (paper): mean relative error {:.4}", split.halves);
    println!(
        "  interleaved:    mean relative error {:.4}\n",
        split.interleaved
    );

    let frontier =
        ablation::tradeoff_frontier(&[1.0, 1.5, 2.0, 2.5, 3.0, 4.0], 5, runs, threads, seed);
    println!("Ablation 2 — accuracy-privacy frontier (s = 3, t = 5):");
    let mut table = ptm_report::TextTable::new(vec![
        "f".into(),
        "point rel err".into(),
        "p2p rel err".into(),
        "privacy ratio".into(),
    ]);
    for p in &frontier {
        table.add_row(vec![
            format!("{}", p.load_factor),
            format!("{:.4}", p.point_rel_err),
            format!("{:.4}", p.p2p_rel_err),
            format!("{:.4}", p.privacy_ratio),
        ]);
    }
    println!("{}", table.render());

    let sweep = ablation::s_sweep(&[1, 2, 3, 4, 5], 5, runs, threads, seed);
    println!("Ablation 3 — s sweep (f = 2, t = 5, p2p):");
    let mut table = ptm_report::TextTable::new(vec![
        "s".into(),
        "p2p rel err".into(),
        "privacy ratio".into(),
    ]);
    for p in &sweep {
        table.add_row(vec![
            p.s.to_string(),
            format!("{:.4}", p.p2p_rel_err),
            format!("{:.4}", p.privacy_ratio),
        ]);
    }
    println!("{}", table.render());

    let sizing = ablation::sizing_policy(5, runs, threads, seed);
    println!("Ablation 4 — bitmap sizing policy (t = 5, point persistent):");
    println!(
        "  per-period sizing (paper Fig. 3): mean relative error {:.4}",
        sizing.per_period
    );
    println!(
        "  campaign-mean sizing:             mean relative error {:.4}\n",
        sizing.campaign_mean
    );

    let kway = ablation::kway_sweep(&[2, 3, 4, 6], 12, runs, threads, seed);
    println!("Ablation 5 — k-way split of Π (t = 12, point persistent):");
    let mut table = ptm_report::TextTable::new(vec!["k".into(), "point rel err".into()]);
    for p in &kway {
        table.add_row(vec![p.k.to_string(), format!("{:.4}", p.rel_err)]);
    }
    println!("{}", table.render());

    let losses = ablation::loss_sensitivity(&[0.0, 0.3, 0.6, 0.9], seed);
    println!("Ablation 6 — channel loss sensitivity (full V2I protocol, 2 s dwell):");
    let mut table = ptm_report::TextTable::new(vec![
        "frame loss".into(),
        "capture rate".into(),
        "truth".into(),
        "estimate".into(),
    ]);
    for p in &losses {
        table.add_row(vec![
            format!("{:.1}", p.loss),
            format!("{:.3}", p.capture_rate),
            format!("{:.0}", p.truth),
            format!("{:.1}", p.estimate),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_matrix(seed: u64, threads: usize, csv: Option<&Path>) -> Result<(), String> {
    use ptm_sim::matrix::{self, MatrixConfig};
    let config = MatrixConfig {
        seed,
        threads,
        ..MatrixConfig::default()
    };
    ptm_obs::info!("cli.matrix", "sweeping all Sioux Falls pairs"; t = config.t);
    let result = matrix::run(&config);
    println!("{}", matrix::render(&result));
    if let Some(dir) = csv {
        write_artifact(dir, "matrix.csv", &matrix::to_csv(&result))?;
    }
    Ok(())
}

fn cmd_errors(seed: u64, runs: Option<usize>, threads: usize) -> Result<(), String> {
    use ptm_sim::distribution::{self, DistributionConfig, Target};
    for target in [Target::Point, Target::PointToPoint] {
        let config = DistributionConfig {
            runs: runs.unwrap_or(200),
            seed,
            threads,
            ..DistributionConfig::paper(target)
        };
        ptm_obs::info!("cli.errors", "sampling error distribution";
            target = format!("{target:?}"),
            runs = config.runs,
        );
        let result = distribution::run(&config);
        println!("{}", distribution::render(&result));
    }
    Ok(())
}

fn cmd_pair(
    seed: u64,
    runs: Option<usize>,
    threads: usize,
    options: &Options,
) -> Result<(), String> {
    use ptm_core::encoding::{EncodingScheme, LocationId};
    use ptm_core::p2p::PointToPointEstimator;
    use ptm_sim::workload::build_p2p_records;
    use ptm_traffic::generate::P2pScenario;
    use ptm_traffic::network::NodeId;
    use ptm_traffic::sioux_falls;

    let parse_node = |key: &str| -> Result<usize, String> {
        let raw = options
            .get(key)
            .ok_or(format!("pair requires --{key} <node 1-24>"))?;
        let n: usize = raw
            .parse()
            .map_err(|_| format!("--{key} expects a node label"))?;
        if (1..=sioux_falls::NUM_NODES).contains(&n) {
            Ok(n)
        } else {
            Err(format!("--{key} must be in 1..=24, got {n}"))
        }
    };
    let from = parse_node("from")?;
    let to = parse_node("to")?;
    if from == to {
        return Err("pair needs two distinct nodes".to_owned());
    }
    let t = opt_usize(options, "t")?.unwrap_or(5);
    let runs = runs.unwrap_or(20);

    let table = sioux_falls::paper_trip_table();
    let params = SystemParams::paper_default();
    let scenario =
        P2pScenario::from_trip_table(&table, NodeId::new(from - 1), NodeId::new(to - 1), t);
    if scenario.persistent == 0 {
        return Err(format!("nodes {from} and {to} share no trip-table demand"));
    }
    println!(
        "pair {from} <-> {to}: volumes n = {}, n' = {}, true persistent n'' = {}",
        scenario.volumes_l[0], scenario.volumes_lp[0], scenario.persistent
    );
    let truth = scenario.persistent as f64;
    let errors = ptm_sim::runner::run_trials(runs, threads, |run_idx| {
        let s = ptm_sim::trial_seed(seed, &[from as u64, to as u64, run_idx as u64]);
        let mut rng = rand_chacha_seed(s);
        let scheme = EncodingScheme::new(s, params.num_representatives());
        let records = build_p2p_records(
            &scheme,
            &params,
            &scenario,
            LocationId::new(from as u64),
            LocationId::new(to as u64),
            None,
            &mut rng,
        );
        let est = PointToPointEstimator::new(params.num_representatives())
            .estimate(&records.records_l, &records.records_lp)
            .expect("paper-scale records never saturate");
        ptm_sim::stats::relative_error(truth, est)
    });
    let summary = ptm_sim::stats::Summary::from_slice(&errors);
    println!(
        "relative error over {} runs (t = {t}): mean {:.4}, std {:.4}, min {:.4}, max {:.4}",
        runs, summary.mean, summary.std_dev, summary.min, summary.max
    );
    Ok(())
}

fn rand_chacha_seed(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha12Rng::seed_from_u64(seed)
}

fn cmd_demo(seed: u64) -> Result<(), String> {
    use ptm_core::encoding::{EncodingScheme, LocationId};
    use ptm_core::record::PeriodId;
    use ptm_net::{SimConfig, SimDuration, V2iSimulator};
    use ptm_traffic::network::NodeId;
    use ptm_traffic::sioux_falls;

    println!("V2I protocol demo: two RSUs on the Sioux Falls network\n");
    let network = sioux_falls::road_network();
    let table = sioux_falls::trip_table();
    let l = NodeId::new(14); // node 15
    let lp = table.busiest_node(); // node 10
    let path = network
        .shortest_path(l, lp)
        .ok_or("sioux falls is connected")?;
    println!(
        "route node {} -> node {}: {} hops, {:.0} min free-flow",
        l,
        lp,
        path.nodes.len() - 1,
        path.travel_time
    );

    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(seed, params.num_representatives());
    let spec = [
        (LocationId::new(15), params.bitmap_size(600.0)),
        (LocationId::new(10), params.bitmap_size(900.0)),
    ];
    let mut sim = V2iSimulator::new(SimConfig::default(), scheme, &spec, seed);

    let commons: Vec<usize> = (0..120).map(|_| sim.add_vehicle()).collect();
    let periods: Vec<PeriodId> = (0..5).map(PeriodId::new).collect();
    for &p in &periods {
        for (k, &v) in commons.iter().enumerate() {
            sim.schedule_pass(v, 0, SimDuration::from_millis(40 * k as u64));
            sim.schedule_pass(v, 1, SimDuration::from_millis(8000 + 40 * k as u64));
        }
        for k in 0..300usize {
            let t = sim.add_vehicle();
            sim.schedule_pass(t, k % 2, SimDuration::from_millis(20 * k as u64));
        }
        sim.run_period(p).map_err(|e| e.to_string())?;
    }

    let stats = sim.stats();
    println!(
        "\nprotocol: {} beacons, {} reports sent, {} accepted, {} acks, {} frames lost",
        stats.beacons_broadcast,
        stats.reports_sent,
        stats.reports_accepted,
        stats.acks_delivered,
        stats.frames_lost
    );

    let (a, b) = (LocationId::new(15), LocationId::new(10));
    let truth_point = sim.presence().point_persistent(a, &periods);
    let truth_p2p = sim.presence().p2p_persistent(a, b, &periods);
    let est_point = sim
        .server()
        .estimate_point_persistent(a, &periods)
        .map_err(|e| e.to_string())?;
    let est_p2p = sim
        .server()
        .estimate_p2p_persistent(a, b, &periods)
        .map_err(|e| e.to_string())?;
    println!("\npoint persistent at node 15:  truth {truth_point}, estimate {est_point:.1}");
    println!("p2p persistent 15 -> 10:      truth {truth_p2p}, estimate {est_p2p:.1}");
    Ok(())
}
