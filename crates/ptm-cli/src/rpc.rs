//! `ptm serve` / `ptm upload` / `ptm query` — drive the `ptm-rpc` channel
//! from two shells.
//!
//! A minimal round trip:
//!
//! ```text
//! shell A$ ptm serve --addr 127.0.0.1:7171 --archive /tmp/ptm.ptma
//! shell B$ ptm upload --addr 127.0.0.1:7171 --location 15 --periods 5 \
//!              --vehicles 400 --persistent 120 --seed 7
//! shell B$ ptm query --addr 127.0.0.1:7171 --kind point --location 15 --periods 5
//! ```
//!
//! `upload` synthesises a measurement campaign the same way the simulator
//! does (a persistent fleet present in every period plus per-period
//! transient traffic), so the point estimate queried afterwards should land
//! near `--persistent`.

use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::{BitmapSize, SystemParams};
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_rpc::{ClientConfig, RpcClient, RpcServer, ServerConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use crate::{opt_u64, opt_usize};

type Options = HashMap<String, String>;

fn required<'a>(options: &'a Options, key: &str, hint: &str) -> Result<&'a str, String> {
    options
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("--{key} is required ({hint})"))
}

/// `ptm serve --health`: one Ping against a running daemon. Healthy means
/// it answers and ingest is not degraded.
fn cmd_health(addr: &str) -> Result<(), String> {
    let config = ClientConfig {
        connect_timeout: Duration::from_secs(1),
        io_timeout: Duration::from_secs(2),
        max_attempts: 1,
        breaker_threshold: 0,
        ..ClientConfig::default()
    };
    let mut client = RpcClient::connect(addr, config).map_err(|e| e.to_string())?;
    let info = client
        .ping()
        .map_err(|e| format!("daemon at {addr} unreachable: {e}"))?;
    let state = if info.degraded {
        "DEGRADED (uploads shed, queries served)"
    } else {
        "healthy"
    };
    println!(
        "daemon at {addr}: {state} — protocol v{}, s = {}, {} records",
        info.version, info.s, info.records
    );
    if info.degraded {
        return Err("daemon is degraded".to_owned());
    }
    Ok(())
}

/// `ptm serve`: run the record-ingest daemon in the foreground (or, with
/// `--health`, probe one that is already running).
pub fn cmd_serve(options: &Options) -> Result<(), String> {
    let addr = options
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7171");
    if options.contains_key("health") {
        return cmd_health(addr);
    }
    let archive = PathBuf::from(required(
        options,
        "archive",
        "path for the write-ahead archive",
    )?);
    let s = opt_u64(options, "s")?.unwrap_or(3) as u32;
    let duration = opt_u64(options, "duration-secs")?;
    let mut config = ServerConfig {
        s,
        ..ServerConfig::default()
    };
    if let Some(cache) = opt_usize(options, "cache")? {
        config.cache_capacity = cache;
    }
    if let Some(cap) = opt_usize(options, "max-connections")? {
        config.max_connections = cap;
    }
    if let Some(inflight) = opt_usize(options, "inflight")? {
        config.max_inflight_estimates = inflight;
    }
    if let Some(workers) = opt_usize(options, "workers")? {
        if workers == 0 {
            return Err("--workers must be at least 1".to_owned());
        }
        config.workers = workers;
    }
    if let Some(hint) = opt_u64(options, "retry-after-ms")? {
        config.retry_after_ms = hint as u32;
    }
    if let Some(bytes) = opt_u64(options, "rotate-bytes")? {
        config.rotate_bytes = bytes;
    }
    if let Some(ms) = opt_u64(options, "compact-ms")? {
        config.compact_interval = Duration::from_millis(ms);
    }
    match options.get("sync").map(String::as_str) {
        None | Some("flush") => {}
        Some("fsync") => config.sync_policy = ptm_store::SyncPolicy::Fsync,
        Some(other) => return Err(format!("--sync expects flush or fsync, got {other:?}")),
    }
    if let Some(spec) = options.get("faults") {
        let seed = opt_u64(options, "fault-seed")?.unwrap_or(42);
        let plan = ptm_fault::FaultPlan::parse(spec, seed)
            .map_err(|e| format!("--faults rejected: {e}"))?;
        println!("fault injection armed (seed {seed}): {spec}");
        config.fault_plan = Some(plan);
    }
    // The daemon itself flushes the metrics snapshot on degraded
    // transitions and shutdown, not just at process exit (the main-level
    // write still runs last and settles the final state).
    config.metrics_snapshot = options.get("metrics").map(PathBuf::from);
    if let Some(path) = options.get("recorder-dump").map(PathBuf::from) {
        config.recorder_dump = Some(path.clone());
        // A panic on any thread — not just a request handler — dumps the
        // flight recorder before the default hook prints the backtrace.
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = ptm_obs::trace::recorder::dump_to(&path);
            previous(info);
        }));
    }

    let server = RpcServer::start(addr, &archive, config).map_err(|e| e.to_string())?;
    let replay = server.replay_report();
    println!(
        "ptm-rpc daemon on {} (archive {}, replayed {} records{})",
        server.local_addr(),
        archive.display(),
        replay.records,
        if replay.torn_bytes > 0 {
            format!(", discarded {} torn bytes", replay.torn_bytes)
        } else {
            String::new()
        }
    );
    let drain_file = options.get("drain-file").map(PathBuf::from);
    let poll = Duration::from_millis(100);
    match (duration, &drain_file) {
        (Some(secs), Some(file)) => {
            println!(
                "serving for {secs}s (touch {} to drain early) ...",
                file.display()
            );
            let until = std::time::Instant::now() + Duration::from_secs(secs);
            while std::time::Instant::now() < until && !file.exists() {
                std::thread::sleep(poll);
            }
        }
        (Some(secs), None) => {
            println!("serving for {secs}s ...");
            std::thread::sleep(Duration::from_secs(secs));
        }
        (None, Some(file)) => {
            println!("touch {} to drain and stop", file.display());
            while !file.exists() {
                std::thread::sleep(poll);
            }
        }
        (None, None) => {
            println!("press Enter (or close stdin) to stop");
            let mut line = String::new();
            let _ = std::io::stdin().read_line(&mut line);
        }
    }
    if let Some(file) = &drain_file {
        // Graceful hand-off: stop taking new work (peers get GoingAway
        // with a reconnect hint), let in-flight jobs finish and their
        // replies flush, then fall through to the checkpointing shutdown.
        println!("draining ...");
        server.drain();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !server.drain_complete() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        if !server.drain_complete() {
            eprintln!("drain timed out after 30s; shutting down anyway");
        }
        // Consume the marker so the next start does not drain immediately.
        let _ = std::fs::remove_file(file);
    }
    let records = server.record_count();
    server.shutdown().map_err(|e| e.to_string())?;
    println!("daemon stopped; archive holds {records} records");
    Ok(())
}

/// Builds the synthetic campaign `upload` ships: `periods` records for one
/// location, each encoding the shared persistent fleet plus fresh transient
/// vehicles.
fn synthesize_records(
    location: LocationId,
    periods: u32,
    vehicles: usize,
    persistent: usize,
    seed: u64,
) -> Result<Vec<TrafficRecord>, String> {
    use rand::SeedableRng;
    if persistent > vehicles {
        return Err(format!(
            "--persistent {persistent} exceeds --vehicles {vehicles}"
        ));
    }
    let params = SystemParams::paper_default();
    let scheme = EncodingScheme::new(seed, params.num_representatives());
    let size: BitmapSize = params.bitmap_size(vehicles as f64);
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    let fleet: Vec<VehicleSecrets> = (0..persistent)
        .map(|_| VehicleSecrets::generate(&mut rng, params.num_representatives()))
        .collect();
    let mut records = Vec::with_capacity(periods as usize);
    for p in 0..periods {
        let mut record = TrafficRecord::new(location, PeriodId::new(p), size);
        for v in &fleet {
            record.encode(&scheme, v);
        }
        for _ in 0..vehicles - persistent {
            let v = VehicleSecrets::generate(&mut rng, params.num_representatives());
            record.encode(&scheme, &v);
        }
        records.push(record);
    }
    Ok(records)
}

fn client(options: &Options) -> Result<RpcClient, String> {
    let addr = options
        .get("addr")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7171");
    RpcClient::connect(addr, ClientConfig::default()).map_err(|e| e.to_string())
}

/// `ptm upload`: synthesise a campaign and batch-upload it.
pub fn cmd_upload(options: &Options) -> Result<(), String> {
    let location = LocationId::new(opt_u64(options, "location")?.unwrap_or(1));
    let periods = opt_u64(options, "periods")?.unwrap_or(5) as u32;
    let vehicles = opt_usize(options, "vehicles")?.unwrap_or(500);
    let persistent = opt_usize(options, "persistent")?.unwrap_or(vehicles / 4);
    let seed = opt_u64(options, "seed")?.unwrap_or(42);

    let records = synthesize_records(location, periods, vehicles, persistent, seed)?;
    let mut client = client(options)?;
    let info = client.ping().map_err(|e| e.to_string())?;
    println!(
        "connected to {} (protocol v{}, s = {})",
        client.addr(),
        info.version,
        info.s
    );
    let summary = match opt_usize(options, "pipeline")? {
        // Pipelined single-record frames: the reactor coalesces the wave
        // into one commit and batches the acks into one write.
        Some(window) => client
            .upload_pipelined(&records, window)
            .map_err(|e| e.to_string())?,
        None => client.upload_batch(&records).map_err(|e| e.to_string())?,
    };
    println!(
        "uploaded {} records for location {} ({} accepted, {} idempotent duplicates); \
         true persistent count is {persistent}",
        records.len(),
        location.get(),
        summary.accepted,
        summary.duplicates,
    );
    Ok(())
}

/// `ptm top`: fetch and render the daemon's live introspection snapshot —
/// record/shard counts, latency percentiles, counters and gauges, and the
/// most recent flight-recorder entries. `--json` prints the raw snapshot.
pub fn cmd_top(options: &Options) -> Result<(), String> {
    use serde::Content;

    let mut client = client(options)?;
    let json = client.stats().map_err(|e| e.to_string())?;
    if options.contains_key("json") {
        println!("{json}");
        return Ok(());
    }
    let snapshot: Content =
        serde_json::from_str(&json).map_err(|e| format!("malformed stats payload: {e}"))?;
    let Content::Map(top) = &snapshot else {
        return Err("malformed stats payload: not a JSON object".to_owned());
    };
    let field = |name: &str| top.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let uint = |name: &str| match field(name) {
        Some(Content::U64(v)) => *v,
        _ => 0,
    };

    let degraded = matches!(field("degraded"), Some(Content::Bool(true)));
    println!(
        "daemon at {}: {} — {} records across {} shards, {} open connections",
        client.addr(),
        if degraded {
            "DEGRADED (uploads shed, queries served)"
        } else {
            "healthy"
        },
        uint("records"),
        uint("locations"),
        uint("connections"),
    );

    // Storage-engine gauges ("store": null means the writer was busy when
    // the snapshot was taken — nothing to show, not an error).
    if let Some(Content::Map(store)) = field("store") {
        let cell = |name: &str| {
            store
                .iter()
                .find(|(k, _)| k == name)
                .map_or_else(|| "?".to_owned(), |(_, v)| render_scalar(v))
        };
        let wedged = store
            .iter()
            .any(|(k, v)| k == "wedged" && matches!(v, Content::Bool(true)));
        println!(
            "store: {} segments ({} sealed), active {} B, cache {} hits / {} misses, \
             {} compactions{}",
            cell("segments"),
            cell("sealed"),
            cell("active_bytes"),
            cell("cache_hits"),
            cell("cache_misses"),
            cell("compactions"),
            if wedged { " — WEDGED" } else { "" },
        );
    }

    if let Some(Content::Seq(shards)) = field("shards") {
        if !shards.is_empty() {
            let mut table = ptm_report::TextTable::new(vec![
                "location".into(),
                "records".into(),
                "epoch".into(),
            ]);
            for shard in shards {
                let Content::Map(fields) = shard else {
                    continue;
                };
                let cell = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map_or_else(|| "?".to_owned(), |(_, v)| render_scalar(v))
                };
                table.add_row(vec![cell("location"), cell("records"), cell("epoch")]);
            }
            println!("\nshards:\n{}", table.render());
        }
    }

    if let Some(Content::Map(hists)) = field("percentiles") {
        if !hists.is_empty() {
            let mut table = ptm_report::TextTable::new(vec![
                "histogram".into(),
                "count".into(),
                "p50".into(),
                "p90".into(),
                "p99".into(),
            ]);
            for (name, summary) in hists {
                let Content::Map(fields) = summary else {
                    continue;
                };
                let cell = |key: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == key)
                        .map_or_else(|| "-".to_owned(), |(_, v)| render_scalar(v))
                };
                table.add_row(vec![
                    name.clone(),
                    cell("count"),
                    cell("p50"),
                    cell("p90"),
                    cell("p99"),
                ]);
            }
            println!("percentiles (ns):\n{}", table.render());
        }
    }

    if let Some(Content::Map(metrics)) = field("metrics") {
        for section in ["counters", "gauges"] {
            let Some((_, Content::Map(entries))) = metrics.iter().find(|(k, _)| k == section)
            else {
                continue;
            };
            if entries.is_empty() {
                continue;
            }
            println!("{section}:");
            for (name, value) in entries {
                println!("  {name} = {}", render_scalar(value));
            }
            println!();
        }
    }

    if let Some(Content::Seq(entries)) = field("recorder") {
        // The snapshot carries the whole ring; the freshest entries are
        // last, and ten of them is plenty for a terminal.
        let tail = entries.len().saturating_sub(10);
        println!("flight recorder ({} entries, newest last):", entries.len());
        for entry in &entries[tail..] {
            println!("  {}", render_recorder_entry(entry));
        }
    }
    Ok(())
}

/// One scalar `Content` cell as a terminal-friendly string.
fn render_scalar(value: &serde::Content) -> String {
    use serde::Content;
    match value {
        Content::Null => "-".to_owned(),
        Content::Bool(b) => b.to_string(),
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::F64(v) => format!("{v:.1}"),
        Content::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

/// One flight-recorder entry as a single summary line.
fn render_recorder_entry(entry: &serde::Content) -> String {
    use serde::Content;
    let Content::Map(fields) = entry else {
        return "?".to_owned();
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    if let Some(Content::Str(level)) = get("event") {
        let target = get("target").map_or_else(|| "?".to_owned(), render_scalar);
        let message = get("message").map_or_else(String::new, render_scalar);
        format!("[{level}] {target}: {message}")
    } else if let Some(Content::Str(name)) = get("name") {
        let trace = get("trace").map_or_else(|| "?".to_owned(), render_scalar);
        let dur = get("dur_ns").map_or_else(|| "?".to_owned(), render_scalar);
        format!("span {name} trace={trace} dur={dur}ns")
    } else {
        "?".to_owned()
    }
}

/// `ptm query`: ask the daemon for an estimate.
pub fn cmd_query(options: &Options) -> Result<(), String> {
    let kind = options.get("kind").map(String::as_str).unwrap_or("point");
    let location = LocationId::new(opt_u64(options, "location")?.ok_or("--location is required")?);
    let periods = opt_u64(options, "periods")?.unwrap_or(5) as u32;
    let period_ids: Vec<PeriodId> = (0..periods).map(PeriodId::new).collect();
    let mut client = client(options)?;
    match kind {
        "volume" => {
            let period = PeriodId::new(opt_u64(options, "period")?.unwrap_or(0) as u32);
            let est = client
                .query_volume(location, period)
                .map_err(|e| e.to_string())?;
            println!(
                "traffic volume at location {} period {}: {est:.1}",
                location.get(),
                period.get()
            );
        }
        "point" => {
            let est = client
                .query_point(location, &period_ids)
                .map_err(|e| e.to_string())?;
            println!(
                "point persistent traffic at location {} over {periods} periods: {est:.1}",
                location.get()
            );
        }
        "p2p" => {
            let location_b = LocationId::new(
                opt_u64(options, "location-b")?.ok_or("--location-b is required for p2p")?,
            );
            let est = client
                .query_p2p(location, location_b, &period_ids)
                .map_err(|e| e.to_string())?;
            println!(
                "p2p persistent traffic {} -> {} over {periods} periods: {est:.1}",
                location.get(),
                location_b.get()
            );
        }
        other => {
            return Err(format!(
                "--kind expects volume, point or p2p, got {other:?}"
            ))
        }
    }
    Ok(())
}
