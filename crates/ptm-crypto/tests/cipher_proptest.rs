//! Property tests for the crypto substrate.

use proptest::prelude::*;
use ptm_crypto::hmac::hmac_sha256;
use ptm_crypto::stream::StreamCipher;
use ptm_crypto::Sha256;

proptest! {
    /// The stream cipher is an involution under a fixed (key, nonce).
    #[test]
    fn stream_cipher_involution(
        key in proptest::collection::vec(any::<u8>(), 0..48),
        nonce in any::<u64>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let cipher = StreamCipher::new(&key, nonce);
        prop_assert_eq!(cipher.apply(&cipher.apply(&plaintext)), plaintext);
    }

    /// SHA-256 streaming matches one-shot across arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..4),
    ) {
        let mut points: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        points.sort_unstable();
        let mut hasher = Sha256::new();
        let mut start = 0usize;
        for &p in &points {
            hasher.update(&data[start..p.max(start)]);
            start = p.max(start);
        }
        hasher.update(&data[start..]);
        prop_assert_eq!(hasher.finalize(), Sha256::digest(&data));
    }

    /// HMAC differs whenever the key differs (no trivial key collisions in
    /// the sampled space).
    #[test]
    fn hmac_keys_separate(
        key_a in proptest::collection::vec(any::<u8>(), 1..32),
        key_b in proptest::collection::vec(any::<u8>(), 1..32),
        message in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(key_a != key_b);
        prop_assert_ne!(hmac_sha256(&key_a, &message), hmac_sha256(&key_b, &message));
    }
}
