//! Simulated PKI: a trusted third party issues certificates that bind an
//! RSU identity to a verification key.
//!
//! The paper's threat model (Sec. II-B) requires that "communications begin
//! with an RSU broadcast beacon, each carrying its public-key certificate,
//! which was obtained from a trusted third party", and that vehicles verify
//! the certificate with the pre-installed authority key before responding.
//! Rogue RSUs "will fail the authentication with the vehicles, which will
//! reject further communications."
//!
//! This module implements exactly that flow with the Schnorr-style scheme
//! from [`crate::schnorr`].

use crate::schnorr::{KeyPair, PublicKey, Signature, VerifyError};
use serde::{Deserialize, Serialize};

/// A certificate binding a subject name to a subject public key, signed by
/// the trusted authority.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    subject: String,
    subject_key: PublicKey,
    serial: u64,
    signature: Signature,
}

impl Certificate {
    /// The subject (RSU) name.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The subject's verification key.
    pub fn subject_key(&self) -> PublicKey {
        self.subject_key
    }

    /// Monotone serial number assigned by the authority.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// The authority signature over the certificate body.
    pub fn signature(&self) -> Signature {
        self.signature
    }

    /// Reassembles a certificate from wire fields. Tampered fields are
    /// caught by [`RootKey::verify_certificate`], never here.
    pub fn from_wire_parts(
        subject: String,
        subject_key_element: u64,
        serial: u64,
        signature: Signature,
    ) -> Self {
        Self {
            subject,
            subject_key: crate::schnorr::PublicKey::from_element(subject_key_element),
            serial,
            signature,
        }
    }

    /// The byte string covered by the authority signature.
    fn to_be_signed(subject: &str, subject_key: PublicKey, serial: u64) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(subject.len() + 17);
        bytes.extend_from_slice(&serial.to_le_bytes());
        bytes.extend_from_slice(&subject_key.element().to_le_bytes());
        bytes.push(0u8); // domain separator between fixed fields and name
        bytes.extend_from_slice(subject.as_bytes());
        bytes
    }
}

/// The authority's root verification key, pre-installed in every vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RootKey {
    key: PublicKey,
}

impl RootKey {
    /// Verifies that `cert` was issued by this authority.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] for certificates not signed by the matching
    /// authority (e.g. a rogue RSU presenting a self-signed certificate).
    pub fn verify_certificate(&self, cert: &Certificate) -> Result<(), VerifyError> {
        let message = Certificate::to_be_signed(&cert.subject, cert.subject_key, cert.serial);
        self.key.verify(&message, &cert.signature)
    }
}

/// An RSU credential: the certificate plus the matching signing key.
#[derive(Debug, Clone)]
pub struct Credential {
    keys: KeyPair,
    certificate: Certificate,
}

impl Credential {
    /// The public certificate broadcast in beacons.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// Signs a payload with the credentialed key (used for beacon integrity).
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.keys.sign(message)
    }
}

/// The trusted third party that provisions RSUs.
#[derive(Debug)]
pub struct TrustedAuthority {
    keys: KeyPair,
    next_serial: u64,
    /// Seed stream for subject key generation.
    subject_seed: u64,
}

impl TrustedAuthority {
    /// Creates an authority with keys derived from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            keys: KeyPair::from_seed(seed),
            next_serial: 1,
            // Offset the subject seed stream away from the authority's own
            // seed so the authority never issues its own key to a subject.
            subject_seed: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The root verification key to pre-install in vehicles.
    pub fn root(&self) -> RootKey {
        RootKey {
            key: self.keys.public(),
        }
    }

    /// Issues a certificate (and key pair) for a new RSU.
    pub fn issue(&mut self, subject: &str) -> Credential {
        self.subject_seed = self
            .subject_seed
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(1);
        let keys = KeyPair::from_seed(self.subject_seed);
        let serial = self.next_serial;
        self.next_serial += 1;
        let message = Certificate::to_be_signed(subject, keys.public(), serial);
        let signature = self.keys.sign(&message);
        Credential {
            keys,
            certificate: Certificate {
                subject: subject.to_owned(),
                subject_key: keys.public(),
                serial,
                signature,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issued_certificate_verifies() {
        let mut authority = TrustedAuthority::from_seed(42);
        let cred = authority.issue("rsu-main-street");
        assert!(authority
            .root()
            .verify_certificate(cred.certificate())
            .is_ok());
    }

    #[test]
    fn rogue_authority_rejected() {
        let mut genuine = TrustedAuthority::from_seed(1);
        let mut rogue = TrustedAuthority::from_seed(2);
        let rogue_cred = rogue.issue("rsu-fake");
        assert!(genuine
            .root()
            .verify_certificate(rogue_cred.certificate())
            .is_err());
        // And the genuine one still verifies under its own root.
        let ok = genuine.issue("rsu-real");
        assert!(genuine.root().verify_certificate(ok.certificate()).is_ok());
    }

    #[test]
    fn tampered_subject_rejected() {
        let mut authority = TrustedAuthority::from_seed(3);
        let cred = authority.issue("rsu-a");
        let mut cert = cred.certificate().clone();
        cert.subject = "rsu-b".to_owned();
        assert!(authority.root().verify_certificate(&cert).is_err());
    }

    #[test]
    fn tampered_key_rejected() {
        let mut authority = TrustedAuthority::from_seed(4);
        let cred = authority.issue("rsu-a");
        let other = authority.issue("rsu-b");
        let mut cert = cred.certificate().clone();
        cert.subject_key = other.certificate().subject_key();
        assert!(authority.root().verify_certificate(&cert).is_err());
    }

    #[test]
    fn serials_are_monotone() {
        let mut authority = TrustedAuthority::from_seed(5);
        let a = authority.issue("a").certificate().serial();
        let b = authority.issue("b").certificate().serial();
        assert!(b > a);
    }

    #[test]
    fn credential_signs_payloads() {
        let mut authority = TrustedAuthority::from_seed(6);
        let cred = authority.issue("rsu");
        let sig = cred.sign(b"beacon payload");
        assert!(cred
            .certificate()
            .subject_key()
            .verify(b"beacon payload", &sig)
            .is_ok());
        assert!(cred
            .certificate()
            .subject_key()
            .verify(b"other", &sig)
            .is_err());
    }

    #[test]
    fn certificate_serde_roundtrip() {
        let mut authority = TrustedAuthority::from_seed(7);
        let cred = authority.issue("rsu-json");
        let json = serde_json::to_string(cred.certificate()).expect("serialize");
        let back: Certificate = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(&back, cred.certificate());
        assert!(authority.root().verify_certificate(&back).is_ok());
    }
}
