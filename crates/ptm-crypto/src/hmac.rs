//! HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on [`crate::sha256`].
//!
//! Used by the V2I substrate for session-key derivation and message
//! authentication after the RSU/vehicle handshake, and by [`crate::stream`]
//! to derive keystream blocks.

use crate::sha256::Sha256;

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Example
///
/// ```
/// use ptm_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer-pad key block, applied at finalization.
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length; keys longer than
    /// one block are hashed first, per the RFC).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte authentication tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Constant-time-ish tag comparison.
    ///
    /// Inside the simulator timing side channels are irrelevant, but the
    /// interface mirrors real MAC APIs so callers never use `==` on tags.
    pub fn verify(self, expected: &[u8; 32]) -> bool {
        let tag = self.finalize();
        let mut diff = 0u8;
        for (a, b) in tag.iter().zip(expected.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(tag: &[u8; 32]) -> String {
        tag.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut mac = HmacSha256::new(b"split-key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"split-key", b"hello world"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(HmacSha256::new(b"k").tap(b"m").verify(&tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::new(b"k").tap(b"m").verify(&bad));
    }

    trait Tap {
        fn tap(self, data: &[u8]) -> Self;
    }
    impl Tap for HmacSha256 {
        fn tap(mut self, data: &[u8]) -> Self {
            self.update(data);
            self
        }
    }
}
