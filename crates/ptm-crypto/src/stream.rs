//! A keyed stream cipher built from HMAC-SHA256 output blocks (CTR-style).
//!
//! The paper requires "all data exchanges encrypted" after the RSU/vehicle
//! authentication (Sec. II-B). Inside the simulator the cipher only needs to
//! model that property: ciphertexts are unintelligible without the session
//! key, and encryption is symmetric (encrypting twice restores the
//! plaintext). HMAC-CTR gives that with the primitives already in the crate.

use crate::hmac::HmacSha256;

/// A symmetric stream cipher keyed by a session key and a message nonce.
///
/// # Example
///
/// ```
/// use ptm_crypto::stream::StreamCipher;
///
/// let cipher = StreamCipher::new(b"session-key", 7);
/// let ct = cipher.apply(b"index=42");
/// assert_ne!(ct, b"index=42");
/// assert_eq!(cipher.apply(&ct), b"index=42");
/// ```
#[derive(Debug, Clone)]
pub struct StreamCipher {
    key: Vec<u8>,
    nonce: u64,
}

impl StreamCipher {
    /// Creates a cipher for one message direction.
    ///
    /// `nonce` must be unique per message under the same key; the V2I layer
    /// uses its per-message sequence number.
    pub fn new(key: &[u8], nonce: u64) -> Self {
        Self {
            key: key.to_vec(),
            nonce,
        }
    }

    /// XORs `data` with the keystream; applying twice round-trips.
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = 0u64;
        let mut block = self.keystream_block(counter);
        let mut offset = 0usize;
        for &byte in data {
            if offset == block.len() {
                counter += 1;
                block = self.keystream_block(counter);
                offset = 0;
            }
            out.push(byte ^ block[offset]);
            offset += 1;
        }
        out
    }

    fn keystream_block(&self, counter: u64) -> [u8; 32] {
        let mut mac = HmacSha256::new(&self.key);
        mac.update(&self.nonce.to_le_bytes());
        mac.update(&counter.to_le_bytes());
        mac.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let cipher = StreamCipher::new(b"k", 1);
        let plaintext = b"hello, rsu".to_vec();
        assert_eq!(cipher.apply(&cipher.apply(&plaintext)), plaintext);
    }

    #[test]
    fn long_message_crosses_block_boundary() {
        let cipher = StreamCipher::new(b"k", 2);
        let plaintext: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let ciphertext = cipher.apply(&plaintext);
        assert_ne!(ciphertext, plaintext);
        assert_eq!(cipher.apply(&ciphertext), plaintext);
    }

    #[test]
    fn different_nonces_different_keystreams() {
        let a = StreamCipher::new(b"k", 1).apply(&[0u8; 64]);
        let b = StreamCipher::new(b"k", 2).apply(&[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_different_keystreams() {
        let a = StreamCipher::new(b"k1", 1).apply(&[0u8; 64]);
        let b = StreamCipher::new(b"k2", 1).apply(&[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_message() {
        let cipher = StreamCipher::new(b"k", 3);
        assert!(cipher.apply(&[]).is_empty());
    }
}
