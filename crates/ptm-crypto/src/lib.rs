//! Simulation-grade cryptographic substrate for the persistent traffic
//! measurement system.
//!
//! The ICDCS 2017 paper assumes three cryptographic building blocks:
//!
//! 1. a hash function `H` "that provides good randomness" used for vehicle
//!    encoding (Sec. II-D) — provided here by a from-scratch
//!    [SipHash-2-4](siphash) implementation (a keyed 64-bit PRF with
//!    published reference test vectors);
//! 2. PKI-based authentication between vehicles and road-side units
//!    (Sec. II-B) — provided by [SHA-256](sha256), [HMAC-SHA256](hmac) and a
//!    [Schnorr-style signature scheme](schnorr) over a 61-bit prime-order
//!    group, wrapped into a [certificate authority](cert);
//! 3. encrypted data exchanges — modelled by a keyed stream cipher derived
//!    from HMAC output blocks ([`stream`]).
//!
//! # Security disclaimer
//!
//! Everything in this crate is **simulation-grade**: the Schnorr group uses a
//! 61-bit modulus so that the full protocol (key generation, certificate
//! issuance, signature verification, rogue-RSU rejection) can run inside a
//! discrete-event simulator at scale. The *structure* is faithful — a rogue
//! RSU without an authority-issued certificate fails verification — but the
//! parameters are far too small for real deployments. Do not reuse outside
//! the simulator.
//!
//! # Example
//!
//! ```
//! use ptm_crypto::cert::TrustedAuthority;
//!
//! # fn main() {
//! let mut authority = TrustedAuthority::from_seed(7);
//! let rsu = authority.issue("rsu-42");
//! assert!(authority.root().verify_certificate(rsu.certificate()).is_ok());
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod group;
pub mod hmac;
pub mod schnorr;
pub mod sha256;
pub mod siphash;
pub mod stream;

pub use cert::{Certificate, TrustedAuthority};
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::Sha256;
pub use siphash::SipHash24;

/// A 64-bit keyed hash used as the paper's hash function `H`.
///
/// The paper's encoding step (Sec. II-D) needs a single uniform hash
/// `H : bytes -> u64`. Abstracting it behind a trait lets the core crate and
/// the tests substitute deterministic or adversarial hashes.
pub trait Hash64 {
    /// Hash an arbitrary byte string to 64 bits.
    fn hash64(&self, data: &[u8]) -> u64;
}

impl Hash64 for SipHash24 {
    fn hash64(&self, data: &[u8]) -> u64 {
        self.hash(data)
    }
}
