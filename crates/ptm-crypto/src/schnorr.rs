//! Schnorr-style signatures over the simulation group from [`crate::group`].
//!
//! This supplies the sign/verify primitive behind the RSU certificates
//! (Sec. II-B of the paper: vehicles verify an RSU's public-key certificate
//! before interacting with it). Signatures are deterministic: the nonce is
//! derived from the secret key and the message via HMAC-SHA256, so the
//! simulator needs no signing-side randomness.
//!
//! The scheme is the classic `(e, s)` variant:
//!
//! * sign: `k = PRF(x, m)`, `R = g^k`, `e = H(R ‖ X ‖ m) mod q`,
//!   `s = k + e·x mod q`;
//! * verify: recompute `R' = g^s · X^{q−e}` and accept iff
//!   `H(R' ‖ X ‖ m) mod q = e`.

use crate::group::Group;
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// A signing (secret) key: an exponent in `[1, q)`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey {
    x: u64,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print secret material, even in debug logs.
        f.debug_struct("SecretKey")
            .field("x", &"<redacted>")
            .finish()
    }
}

/// A verification (public) key: the group element `X = g^x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    element: u64,
}

impl PublicKey {
    /// Raw group element, used when serializing into certificates.
    pub fn element(&self) -> u64 {
        self.element
    }

    /// Rebuilds a key from its raw group element (wire decoding). A bogus
    /// element simply fails every verification.
    pub fn from_element(element: u64) -> Self {
        Self { element }
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    e: u64,
    s: u64,
}

impl Signature {
    /// Splits into the raw `(e, s)` scalars for wire encoding.
    pub fn to_parts(&self) -> (u64, u64) {
        (self.e, self.s)
    }

    /// Rebuilds from raw scalars (wire decoding). Out-of-range scalars are
    /// accepted here and rejected at verification time.
    pub fn from_parts(e: u64, s: u64) -> Self {
        Self { e, s }
    }
}

/// Error returned when signature verification fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyError;

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("signature verification failed")
    }
}

impl std::error::Error for VerifyError {}

/// A secret/public key pair.
#[derive(Debug, Clone, Copy)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a 64-bit seed.
    ///
    /// The seed is stretched through SHA-256 so structurally close seeds do
    /// not produce related exponents.
    pub fn from_seed(seed: u64) -> Self {
        let group = Group::simulation_default();
        let digest = Sha256::digest(&seed.to_le_bytes());
        let raw = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
        let x = 1 + raw % (group.q - 1);
        let public = PublicKey {
            element: group.gen_pow(x),
        };
        Self {
            secret: SecretKey { x },
            public,
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` deterministically.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let group = Group::simulation_default();
        // Deterministic nonce (RFC 6979 in spirit): PRF over the message
        // keyed with the secret exponent.
        let tag = hmac_sha256(&self.secret.x.to_le_bytes(), message);
        let raw_k = u64::from_le_bytes(tag[..8].try_into().expect("8 bytes"));
        let k = 1 + raw_k % (group.q - 1);
        let r = group.gen_pow(k);
        let e = challenge(group, r, self.public, message);
        let s =
            (k as u128 + (e as u128 * self.secret.x as u128) % group.q as u128) % group.q as u128;
        Signature { e, s: s as u64 }
    }
}

impl PublicKey {
    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the recomputed challenge does not match —
    /// i.e. the signature was not produced by the holder of the matching
    /// secret key.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), VerifyError> {
        let group = Group::simulation_default();
        if signature.e >= group.q || signature.s >= group.q {
            return Err(VerifyError);
        }
        // R' = g^s * X^{-e}  (inverse via exponent q - e, X has order q).
        let neg_e = (group.q - signature.e) % group.q;
        let r = group.mul(group.gen_pow(signature.s), group.pow(self.element, neg_e));
        if challenge(group, r, *self, message) == signature.e {
            Ok(())
        } else {
            Err(VerifyError)
        }
    }
}

/// Fiat–Shamir challenge `H(R ‖ X ‖ m) mod q`.
fn challenge(group: &Group, r: u64, public: PublicKey, message: &[u8]) -> u64 {
    let mut hasher = Sha256::new();
    hasher.update(&r.to_le_bytes());
    hasher.update(&public.element.to_le_bytes());
    hasher.update(message);
    let digest = hasher.finalize();
    let raw = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"));
    group.scalar(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let pair = KeyPair::from_seed(1);
        let sig = pair.sign(b"rsu location 7");
        assert!(pair.public().verify(b"rsu location 7", &sig).is_ok());
    }

    #[test]
    fn wrong_message_rejected() {
        let pair = KeyPair::from_seed(2);
        let sig = pair.sign(b"genuine");
        assert_eq!(pair.public().verify(b"forged", &sig), Err(VerifyError));
    }

    #[test]
    fn wrong_key_rejected() {
        let signer = KeyPair::from_seed(3);
        let other = KeyPair::from_seed(4);
        let sig = signer.sign(b"msg");
        assert_eq!(other.public().verify(b"msg", &sig), Err(VerifyError));
    }

    #[test]
    fn tampered_signature_rejected() {
        let pair = KeyPair::from_seed(5);
        let sig = pair.sign(b"msg");
        let tampered = Signature {
            e: sig.e ^ 1,
            s: sig.s,
        };
        assert!(pair.public().verify(b"msg", &tampered).is_err());
        let tampered = Signature {
            e: sig.e,
            s: sig.s ^ 1,
        };
        assert!(pair.public().verify(b"msg", &tampered).is_err());
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let pair = KeyPair::from_seed(6);
        let sig = Signature { e: u64::MAX, s: 0 };
        assert!(pair.public().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn deterministic_signing() {
        let pair = KeyPair::from_seed(7);
        assert_eq!(pair.sign(b"same"), pair.sign(b"same"));
        assert_ne!(pair.sign(b"one"), pair.sign(b"two"));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let keys: Vec<u64> = (0..100)
            .map(|s| KeyPair::from_seed(s).public().element())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "collision among 100 seeded keys");
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let pair = KeyPair::from_seed(8);
        let text = format!("{:?}", pair);
        assert!(text.contains("redacted"));
    }
}
