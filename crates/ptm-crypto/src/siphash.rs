//! A from-scratch SipHash-2-4 implementation (Aumasson & Bernstein, 2012).
//!
//! The paper's vehicle-encoding hash `H` (Sec. II-D) only needs to be a
//! uniform keyed 64-bit hash. SipHash-2-4 fits exactly: it is small,
//! well-specified, keyed (so different simulations can use independent hash
//! universes), and ships published reference test vectors that the unit
//! tests below check against.

/// A SipHash-2-4 instance keyed with a 128-bit key.
///
/// # Example
///
/// ```
/// use ptm_crypto::SipHash24;
///
/// let hasher = SipHash24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908);
/// let h = hasher.hash(b"vehicle-12345");
/// assert_eq!(h, hasher.hash(b"vehicle-12345"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl SipHash24 {
    /// Creates a hasher from the two 64-bit key halves.
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Creates a hasher from a 16-byte little-endian key.
    pub fn from_key_bytes(key: &[u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        Self::new(k0, k1)
    }

    /// Hashes `data` to a 64-bit value.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = 0x736f6d6570736575u64 ^ self.k0;
        let mut v1 = 0x646f72616e646f6du64 ^ self.k1;
        let mut v2 = 0x6c7967656e657261u64 ^ self.k0;
        let mut v3 = 0x7465646279746573u64 ^ self.k1;

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            v3 ^= m;
            for _ in 0..2 {
                sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
        }

        // Final block: remaining bytes plus the message length in the top byte.
        let tail = chunks.remainder();
        let mut last = (data.len() as u64) << 56;
        for (i, &byte) in tail.iter().enumerate() {
            last |= (byte as u64) << (8 * i);
        }
        v3 ^= last;
        for _ in 0..2 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }

    /// Hashes a `u64` (little-endian byte encoding).
    pub fn hash_u64(&self, value: u64) -> u64 {
        self.hash(&value.to_le_bytes())
    }
}

#[inline(always)]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs from the SipHash reference implementation
    /// (`vectors_sip64` in https://github.com/veorq/SipHash) for
    /// key = 00 01 ... 0f and message = 00 01 ... (len-1).
    const REFERENCE: [(usize, u64); 8] = [
        (0, 0x726fdb47dd0e0e31),
        (1, 0x74f839c593dc67fd),
        (2, 0x0d6c8009d9a94f5a),
        (3, 0x85676696d7fb7e2d),
        (4, 0xcf2794e0277187b7),
        (7, 0xab0200f58b01d137),
        (8, 0x93f5f5799a932462),
        (15, 0xa129ca6149be45e5),
    ];

    fn reference_hasher() -> SipHash24 {
        let mut key = [0u8; 16];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        SipHash24::from_key_bytes(&key)
    }

    #[test]
    fn reference_vectors() {
        let hasher = reference_hasher();
        for (len, expected) in REFERENCE {
            let message: Vec<u8> = (0..len as u8).collect();
            assert_eq!(hasher.hash(&message), expected, "length {len}");
        }
    }

    #[test]
    fn different_keys_give_different_hashes() {
        let a = SipHash24::new(1, 2);
        let b = SipHash24::new(3, 4);
        assert_ne!(a.hash(b"x"), b.hash(b"x"));
    }

    #[test]
    fn hash_u64_matches_bytes() {
        let hasher = SipHash24::new(11, 22);
        assert_eq!(
            hasher.hash_u64(0xdead_beef),
            hasher.hash(&0xdead_beefu64.to_le_bytes())
        );
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        // A one-bit input change should flip roughly half the output bits;
        // accept a generous band since this is a smoke test, not a proof.
        let hasher = SipHash24::new(5, 6);
        let mut total = 0u32;
        let samples = 256u64;
        for i in 0..samples {
            let a = hasher.hash_u64(i);
            let b = hasher.hash_u64(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / samples as f64;
        assert!((20.0..44.0).contains(&avg), "avalanche average {avg}");
    }
}
