//! Modular arithmetic and a small prime-order group for the Schnorr-style
//! signatures used by the simulated PKI.
//!
//! Rather than hardcoding unverifiable magic constants, the module derives
//! its group parameters at first use: it searches for a *safe prime*
//! `p = 2q + 1` just above `2^60` using a deterministic Miller–Rabin test,
//! then takes the order-`q` quadratic-residue subgroup of `Z_p^*`. The search
//! is deterministic, so every build of the simulator agrees on the
//! parameters, and a unit test re-verifies primality independently.

use std::sync::OnceLock;

/// Multiplies two residues modulo `m` without overflow.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Computes `base^exp mod m` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 1);
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs.
///
/// The base set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` is known to be
/// deterministic for n < 3.3 × 10^24, which covers `u64` entirely.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n - 1 = d * 2^r with d odd.
    let mut d = n - 1;
    let mut r = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..r {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// A cyclic group of prime order `q` inside `Z_p^*` where `p = 2q + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// Safe-prime modulus.
    pub p: u64,
    /// Prime subgroup order, `q = (p - 1) / 2`.
    pub q: u64,
    /// Generator of the order-`q` quadratic-residue subgroup.
    pub g: u64,
}

impl Group {
    /// Finds the group deterministically: the smallest safe prime `p ≥ 2^60`
    /// with generator `g = 4` (a quadratic residue, hence order `q` in the
    /// subgroup unless it degenerates to 1, which cannot happen for p > 5).
    pub fn simulation_default() -> &'static Group {
        static GROUP: OnceLock<Group> = OnceLock::new();
        GROUP.get_or_init(|| {
            let mut q = (1u64 << 59) + 1;
            loop {
                // p = 2q + 1 must be prime together with q.
                if is_prime(q) {
                    let p = 2 * q + 1;
                    if is_prime(p) {
                        let g = 4u64; // 2^2: a quadratic residue generator.
                        debug_assert_eq!(pow_mod(g, q, p), 1);
                        return Group { p, q, g };
                    }
                }
                q += 2;
            }
        })
    }

    /// Raises the generator to `exp`, i.e. computes `g^exp mod p`.
    pub fn gen_pow(&self, exp: u64) -> u64 {
        pow_mod(self.g, exp % self.q, self.p)
    }

    /// Multiplies two group elements.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        mul_mod(a, b, self.p)
    }

    /// Raises an arbitrary group element to a power.
    pub fn pow(&self, base: u64, exp: u64) -> u64 {
        pow_mod(base, exp % self.q, self.p)
    }

    /// Reduces a 64-bit scalar into the exponent field `[0, q)`.
    pub fn scalar(&self, raw: u64) -> u64 {
        raw % self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919, 2_147_483_647];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 9, 15, 91, 561, 2_147_483_649, 3_215_031_751];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(!is_prime(c), "Carmichael number {c} must be rejected");
        }
    }

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(2, 10, 1_000_000_007), 1024);
        assert_eq!(pow_mod(5, 0, 13), 1);
        assert_eq!(pow_mod(7, 13 - 1, 13), 1, "Fermat little theorem");
    }

    #[test]
    fn mul_mod_no_overflow() {
        let near_max = (1u64 << 61) - 1;
        let r = mul_mod(near_max - 1, near_max - 2, near_max);
        // (p-1)(p-2) mod p = 2 for prime-like modulus arithmetic: (-1)(-2)=2.
        assert_eq!(r, 2);
    }

    #[test]
    fn default_group_is_safe_prime() {
        let g = Group::simulation_default();
        assert!(is_prime(g.p));
        assert!(is_prime(g.q));
        assert_eq!(g.p, 2 * g.q + 1);
        assert!(g.p >= 1u64 << 60);
        // Generator has order exactly q: g^q = 1 and g != 1.
        assert_eq!(pow_mod(g.g, g.q, g.p), 1);
        assert_ne!(g.g, 1);
    }

    #[test]
    fn group_exponent_laws() {
        let g = Group::simulation_default();
        let a = 123_456_789u64;
        let b = 987_654_321u64;
        let lhs = g.gen_pow(a + b);
        let rhs = g.mul(g.gen_pow(a), g.gen_pow(b));
        assert_eq!(lhs, rhs, "g^(a+b) = g^a * g^b");
        assert_eq!(
            g.pow(g.gen_pow(a), b),
            g.pow(g.gen_pow(b), a),
            "(g^a)^b = (g^b)^a"
        );
    }
}
