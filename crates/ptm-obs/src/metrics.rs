//! The metric registry: atomic counters, gauges, and fixed-bucket
//! histograms, snapshot-able to deterministic JSON.
//!
//! Recording never blocks: handles are `Arc`s around atomics, so concurrent
//! writers (e.g. the trial workers in `ptm-sim::runner`) only contend at the
//! cache-line level. The registry's locks are touched only when a *name* is
//! first resolved or a snapshot is taken.
//!
//! All recording respects the process-global enabled flag
//! ([`crate::metrics_enabled`]); when it is off, every operation is a relaxed
//! load plus a predictable branch (see `benches/obs_overhead.rs` in the
//! bench crate for proof).

use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default histogram bucket upper bounds: powers of four from 1 to 4^19
/// (~275 s in nanoseconds), plus an implicit overflow bucket.
///
/// One geometric ladder serves both latencies (nanoseconds) and sizes
/// (counts, bits): 20 buckets spanning twelve orders of magnitude at a
/// constant ~2x relative error.
pub const DEFAULT_BUCKET_BOUNDS: [u64; 20] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
    4_294_967_296,
    17_179_869_184,
    68_719_476_736,
    274_877_906_944,
];

/// A monotonically increasing counter.
///
/// Cloning is cheap and every clone addresses the same underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. No-op while metrics are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move in both directions.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value. No-op while metrics are disabled.
    #[inline]
    pub fn set(&self, value: i64) {
        if crate::metrics_enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative). No-op while metrics are disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::metrics_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Strictly increasing inclusive upper bounds; values above the last
    /// bound land in the overflow bucket.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets, the last being overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram for latencies (nanoseconds) and sizes.
///
/// Cloning is cheap and every clone addresses the same underlying series.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation. No-op while metrics are disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        let core = &*self.0;
        let idx = core.bounds.partition_point(|&bound| bound < value);
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Captures the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        let sum = core.sum.load(Ordering::Relaxed);
        let min = core.min.load(Ordering::Relaxed);
        let max = core.max.load(Ordering::Relaxed);
        let buckets = core
            .buckets
            .iter()
            .enumerate()
            .map(|(i, bucket)| BucketSnapshot {
                le: core.bounds.get(i).copied(),
                count: bucket.load(Ordering::Relaxed),
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            min: if count > 0 { Some(min) } else { None },
            max: if count > 0 { Some(max) } else { None },
            mean: if count > 0 {
                sum as f64 / count as f64
            } else {
                0.0
            },
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::with_bounds(&DEFAULT_BUCKET_BOUNDS)
    }
}

/// One histogram bucket in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct BucketSnapshot {
    /// Inclusive upper bound; `None` for the overflow bucket.
    pub le: Option<u64>,
    /// Observations that fell in this bucket.
    pub count: u64,
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observation, if any.
    pub min: Option<u64>,
    /// Largest observation, if any.
    pub max: Option<u64>,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Per-bucket counts, lowest bound first, overflow last.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1),
    /// or `None` when the histogram is empty or the quantile lands in the
    /// unbounded overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for bucket in &self.buckets {
            cumulative = cumulative.saturating_add(bucket.count);
            if cumulative >= rank {
                return bucket.le;
            }
        }
        None
    }
}

/// A point-in-time view of the whole registry, with names sorted so that
/// the JSON rendering is byte-for-byte deterministic for identical state.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        push_scalar_map(&mut out, &self.counters, |out, &v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"gauges\": {");
        push_scalar_map(&mut out, &self.gauges, |out, &v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            json::push_str_literal(&mut out, name);
            out.push_str(": ");
            push_histogram(&mut out, hist);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders a short human-readable summary: every counter and gauge, and
    /// one line per histogram with count / mean / p50 / p99 / max.
    pub fn render_summary(&self) -> String {
        let mut out = String::from("metrics summary\n");
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("  (no metrics recorded)\n");
            return out;
        }
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:width$}  {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name:width$}  {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let p50 = quantile_label(hist, 0.5);
            let p99 = quantile_label(hist, 0.99);
            let max = hist.max.map_or_else(|| "-".to_owned(), |v| v.to_string());
            out.push_str(&format!(
                "  {name:width$}  count {}  mean {:.1}  p50 <= {p50}  p99 <= {p99}  max {max}\n",
                hist.count, hist.mean
            ));
        }
        out
    }
}

fn quantile_label(hist: &HistogramSnapshot, q: f64) -> String {
    match hist.quantile(q) {
        Some(bound) => bound.to_string(),
        None if hist.count > 0 => "overflow".to_owned(),
        None => "-".to_owned(),
    }
}

fn push_scalar_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    mut push_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (name, value) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        json::push_str_literal(out, name);
        out.push_str(": ");
        push_value(out, value);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

fn push_histogram(out: &mut String, hist: &HistogramSnapshot) {
    out.push_str("{\"count\": ");
    out.push_str(&hist.count.to_string());
    out.push_str(", \"sum\": ");
    out.push_str(&hist.sum.to_string());
    out.push_str(", \"min\": ");
    match hist.min {
        Some(v) => out.push_str(&v.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"max\": ");
    match hist.max {
        Some(v) => out.push_str(&v.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"mean\": ");
    json::push_f64(out, hist.mean);
    out.push_str(", \"buckets\": [");
    let mut first = true;
    for bucket in &hist.buckets {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str("{\"le\": ");
        match bucket.le {
            Some(bound) => out.push_str(&bound.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(", \"count\": ");
        out.push_str(&bucket.count.to_string());
        out.push('}');
    }
    out.push_str("]}");
}

/// A counter registered nowhere: the recording macros hand it out while
/// metrics are disabled so that merely *executing* an instrumented code
/// path cannot intern a new metric name — registration while recording is
/// off would silently grow every later snapshot.
pub fn detached_counter() -> &'static Counter {
    static DETACHED: std::sync::OnceLock<Counter> = std::sync::OnceLock::new();
    DETACHED.get_or_init(Counter::default)
}

/// A gauge registered nowhere; see [`detached_counter`].
pub fn detached_gauge() -> &'static Gauge {
    static DETACHED: std::sync::OnceLock<Gauge> = std::sync::OnceLock::new();
    DETACHED.get_or_init(Gauge::default)
}

/// A histogram registered nowhere; see [`detached_counter`].
pub fn detached_histogram() -> &'static Histogram {
    static DETACHED: std::sync::OnceLock<Histogram> = std::sync::OnceLock::new();
    DETACHED.get_or_init(Histogram::default)
}

/// The metric registry: resolves names to shared handles and takes
/// snapshots.
///
/// Names are interned on first use; re-resolving a name returns a handle to
/// the same underlying metric (the first registration's bucket bounds win
/// for histograms).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Creates an empty registry (the process-global one is
    /// [`crate::registry`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (registering on first use) a counter.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        let name = name.into();
        if let Some(found) = self.counters.read().expect("registry lock").get(&name) {
            return found.clone();
        }
        self.counters
            .write()
            .expect("registry lock")
            .entry(name)
            .or_default()
            .clone()
    }

    /// Resolves (registering on first use) a gauge.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        let name = name.into();
        if let Some(found) = self.gauges.read().expect("registry lock").get(&name) {
            return found.clone();
        }
        self.gauges
            .write()
            .expect("registry lock")
            .entry(name)
            .or_default()
            .clone()
    }

    /// Resolves (registering on first use) a histogram with the default
    /// exponential bounds.
    pub fn histogram(&self, name: impl Into<String>) -> Histogram {
        self.histogram_with_bounds(name, &DEFAULT_BUCKET_BOUNDS)
    }

    /// Resolves (registering on first use) a histogram with explicit bucket
    /// bounds. If the name already exists, the existing histogram (and its
    /// original bounds) is returned.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing (only on
    /// first registration).
    pub fn histogram_with_bounds(&self, name: impl Into<String>, bounds: &[u64]) -> Histogram {
        let name = name.into();
        if let Some(found) = self.histograms.read().expect("registry lock").get(&name) {
            return found.clone();
        }
        self.histograms
            .write()
            .expect("registry lock")
            .entry(name)
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// Captures every registered metric.
    ///
    /// The snapshot is taken metric-by-metric without a global pause; with
    /// writers still running, each individual value is a consistent atomic
    /// read but the set as a whole is not a single instant. After all
    /// writers have finished (e.g. joined threads), snapshots are exact and
    /// independent of the interleaving that produced them.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(name, counter)| (name.clone(), counter.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(name, gauge)| (name.clone(), gauge.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(name, hist)| (name.clone(), hist.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;

    #[test]
    fn counter_and_gauge_basics() {
        let _guard = global_lock();
        crate::set_metrics_enabled(true);
        let registry = Registry::new();
        let counter = registry.counter("a.counter");
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        // Same name, same metric.
        assert_eq!(registry.counter("a.counter").get(), 5);

        let gauge = registry.gauge("a.gauge");
        gauge.set(10);
        gauge.add(-3);
        gauge.inc();
        assert_eq!(gauge.get(), 8);
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = global_lock();
        crate::set_metrics_enabled(false);
        let registry = Registry::new();
        let counter = registry.counter("d.counter");
        let gauge = registry.gauge("d.gauge");
        let hist = registry.histogram("d.hist");
        counter.add(5);
        gauge.set(5);
        hist.record(5);
        assert_eq!(counter.get(), 0);
        assert_eq!(gauge.get(), 0);
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_on_bounds() {
        let _guard = global_lock();
        crate::set_metrics_enabled(true);
        let registry = Registry::new();
        let hist = registry.histogram_with_bounds("h.edges", &[10, 100, 1000]);
        for value in [0, 10, 11, 100, 101, 1000, 1001, 50_000] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.min, Some(0));
        assert_eq!(snap.max, Some(50_000));
        let counts: Vec<u64> = snap.buckets.iter().map(|b| b.count).collect();
        // <=10: {0, 10}; <=100: {11, 100}; <=1000: {101, 1000}; overflow:
        // {1001, 50000}.
        assert_eq!(counts, vec![2, 2, 2, 2]);
        assert_eq!(snap.buckets[0].le, Some(10));
        assert_eq!(snap.buckets[3].le, None);
        assert_eq!(snap.sum, 10 + 11 + 100 + 101 + 1000 + 1001 + 50_000);
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let _guard = global_lock();
        crate::set_metrics_enabled(true);
        let registry = Registry::new();
        let hist = registry.histogram_with_bounds("h.quantiles", &[10, 100, 1000]);
        for _ in 0..90 {
            hist.record(5);
        }
        for _ in 0..9 {
            hist.record(50);
        }
        hist.record(5000);
        let snap = hist.snapshot();
        assert_eq!(snap.quantile(0.5), Some(10));
        assert_eq!(snap.quantile(0.95), Some(100));
        assert_eq!(snap.quantile(1.0), None, "the last observation overflows");
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let registry = Registry::new();
        let snap = registry.histogram("h.empty").snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, None);
        assert_eq!(snap.max, None);
        assert_eq!(snap.mean, 0.0);
        assert_eq!(snap.quantile(0.5), None);
    }

    #[test]
    fn default_bounds_are_strictly_increasing_powers_of_four() {
        for (i, window) in DEFAULT_BUCKET_BOUNDS.windows(2).enumerate() {
            assert!(window[0] < window[1], "bounds out of order at {i}");
            assert_eq!(window[1], window[0] * 4);
        }
        assert_eq!(DEFAULT_BUCKET_BOUNDS[0], 1);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_wellformed() {
        let _guard = global_lock();
        crate::set_metrics_enabled(true);
        let registry = Registry::new();
        registry.counter("z.counter").add(3);
        registry.counter("a.counter").add(1);
        registry.gauge("m.gauge").set(-2);
        registry.histogram_with_bounds("h.one", &[8, 64]).record(9);
        let first = registry.snapshot();
        let second = registry.snapshot();
        assert_eq!(first, second);
        let json = first.to_json_pretty();
        assert_eq!(json, second.to_json_pretty());
        // Sorted keys: "a.counter" renders before "z.counter".
        let a_at = json.find("\"a.counter\"").expect("a.counter present");
        let z_at = json.find("\"z.counter\"").expect("z.counter present");
        assert!(a_at < z_at);
        assert!(json.contains("\"m.gauge\": -2"));
        assert!(json.contains("\"count\": 1, \"sum\": 9"));
        assert!(json.contains("{\"le\": 64, \"count\": 1}"));
        assert!(json.contains("{\"le\": null, \"count\": 0}"));
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn summary_lists_every_metric() {
        let _guard = global_lock();
        crate::set_metrics_enabled(true);
        let registry = Registry::new();
        registry.counter("s.counter").add(7);
        registry.gauge("s.gauge").set(4);
        registry.histogram("s.hist").record(100);
        let summary = registry.snapshot().render_summary();
        assert!(summary.contains("s.counter"));
        assert!(summary.contains("s.gauge"));
        assert!(summary.contains("s.hist"));
        assert!(summary.contains("count 1"));
        crate::set_metrics_enabled(false);

        let empty = Registry::new().snapshot().render_summary();
        assert!(empty.contains("no metrics recorded"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let registry = Registry::new();
        let _ = registry.histogram_with_bounds("h.bad", &[10, 10]);
    }
}
