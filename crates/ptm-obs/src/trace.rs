//! End-to-end request tracing and the flight recorder.
//!
//! A *trace* is one logical request (e.g. an upload→ack round trip); a
//! *span* is one timed stage inside it (queue wait, lock wait, commit,
//! estimate, encode-reply). Ids are minted deterministically from a seeded
//! generator so a fixed seed and call order reproduce identical ids — the
//! same discipline the rest of the workspace applies to randomness.
//!
//! Like metrics, tracing is **off by default** and the disabled path costs
//! one relaxed atomic load per instrumentation point: no clock reads, no
//! thread-local access, no allocation (`bench trace_overhead` proves it).
//!
//! Completed spans go two places:
//!
//! * the **flight recorder** — a bounded in-memory ring retaining the last
//!   N spans and events, dumpable as JSONL on panic, on entry into
//!   degraded mode, or on demand (see [`recorder`]);
//! * an optional **trace writer** — a JSONL sink (usually a file) set via
//!   [`set_trace_writer`], one span object per line.
//!
//! Context propagates two ways: within a thread via an implicit current
//! span (guards nest and restore on drop), and across the RPC boundary via
//! explicit `(trace_id, parent_span)` pairs carried in the proto v3 header
//! (see `docs/OBSERVABILITY.md` § Tracing for the layout).

use crate::json::push_str_literal;
use std::cell::Cell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACING_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span tracing is currently enabled (one relaxed load).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_ENABLED.load(Ordering::Relaxed)
}

/// Turns span tracing on or off process-wide.
pub fn set_tracing_enabled(enabled: bool) {
    TRACING_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Enables span tracing (shorthand for `set_tracing_enabled(true)`).
pub fn enable_tracing() {
    set_tracing_enabled(true);
}

// ---- id minting ------------------------------------------------------------

static ID_SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
static ID_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Re-seeds the id generator and restarts its counter. With a fixed seed
/// and a deterministic call order, minted ids are reproducible.
pub fn set_trace_seed(seed: u64) {
    ID_SEED.store(seed, Ordering::Relaxed);
    ID_COUNTER.store(0, Ordering::Relaxed);
}

/// Mints a non-zero 64-bit id: splitmix64 over seed ⊕ counter.
pub fn mint_id() -> u64 {
    let seed = ID_SEED.load(Ordering::Relaxed);
    loop {
        let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z != 0 {
            return z;
        }
    }
}

// ---- context ---------------------------------------------------------------

/// The propagated identity of an in-flight request: which trace it belongs
/// to and which span is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id, shared by every span of one logical request.
    pub trace_id: u64,
    /// The currently-open span (a child created now would parent here).
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The current thread's open span context, if tracing is enabled and a
/// span guard is live on this thread.
pub fn current() -> Option<TraceContext> {
    if !tracing_enabled() {
        return None;
    }
    CURRENT.with(Cell::get)
}

/// Monotonic epoch all span timestamps are relative to, so offsets within
/// one process compare directly.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---- span records and sinks ------------------------------------------------

/// A completed span, as stored in the recorder and written as JSONL.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage name (dotted, catalogued in docs/OBSERVABILITY.md).
    pub name: &'static str,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id, if any (`None` marks a root span).
    pub parent_id: Option<u64>,
    /// Start offset, ns since the process trace epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Renders the span as one JSON object (no trailing newline).
    ///
    /// Ids are fixed-width hex *strings*: 64-bit integers don't survive
    /// f64-based JSON readers, and hex is what `ptm top` prints anyway.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"trace\":\"");
        out.push_str(&format!("{:016x}", self.trace_id));
        out.push_str("\",\"span\":\"");
        out.push_str(&format!("{:016x}", self.span_id));
        out.push_str("\",\"parent\":");
        match self.parent_id {
            Some(p) => out.push_str(&format!("\"{p:016x}\"")),
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        push_str_literal(&mut out, self.name);
        out.push_str(&format!(
            ",\"start_ns\":{},\"dur_ns\":{}}}",
            self.start_ns, self.dur_ns
        ));
        out
    }
}

static TRACE_WRITER: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Routes completed spans to a JSONL sink (one object per line). Pass
/// `None` to detach. The writer is flushed on every span so crash output
/// is complete; keep it buffered if that matters for throughput.
pub fn set_trace_writer(writer: Option<Box<dyn Write + Send>>) {
    let mut guard = TRACE_WRITER
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = writer;
}

fn emit(record: SpanRecord) {
    recorder::record_span(record.clone());
    let mut guard = TRACE_WRITER
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(writer) = guard.as_mut() {
        let mut line = record.to_json();
        line.push('\n');
        // A failing trace sink must never take the daemon down; drop the
        // line and keep serving.
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.flush();
    }
}

/// Emits a completed span measured externally: `start` was captured with
/// [`Instant::now`] before the stage ran (e.g. queue wait measured from
/// frame arrival to dispatch). Parents under the thread's current span.
pub fn emit_elapsed(name: &'static str, start: Instant) {
    if !tracing_enabled() {
        return;
    }
    let end_ns = now_ns();
    let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let (trace_id, parent_id) = match CURRENT.with(Cell::get) {
        Some(ctx) => (ctx.trace_id, Some(ctx.span_id)),
        None => (mint_id(), None),
    };
    emit(SpanRecord {
        name,
        trace_id,
        span_id: mint_id(),
        parent_id,
        start_ns: end_ns.saturating_sub(dur_ns),
        dur_ns,
    });
}

// ---- span guards -----------------------------------------------------------

struct OpenSpan {
    name: &'static str,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    prev: Option<TraceContext>,
    start: Instant,
    start_ns: u64,
}

/// RAII guard for one span: opening it makes it the thread's current
/// context, dropping it emits the completed [`SpanRecord`] and restores
/// the previous context. Inert (no clock, no TLS) while tracing is off.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    /// Opens a span under the thread's current context, or as the root of
    /// a freshly minted trace if there is none (how the daemon traces
    /// requests from v2 clients that carry no context).
    pub fn enter(name: &'static str) -> Self {
        if !tracing_enabled() {
            return Self { open: None };
        }
        let prev = CURRENT.with(Cell::get);
        let (trace_id, parent_id) = match prev {
            Some(ctx) => (ctx.trace_id, Some(ctx.span_id)),
            None => (mint_id(), None),
        };
        Self::open(name, trace_id, parent_id, prev)
    }

    /// Opens a span as the child of an explicit remote parent — the
    /// server-side join point for contexts carried over the RPC boundary.
    pub fn enter_with_parent(name: &'static str, parent: TraceContext) -> Self {
        if !tracing_enabled() {
            return Self { open: None };
        }
        let prev = CURRENT.with(Cell::get);
        Self::open(name, parent.trace_id, Some(parent.span_id), prev)
    }

    fn open(
        name: &'static str,
        trace_id: u64,
        parent_id: Option<u64>,
        prev: Option<TraceContext>,
    ) -> Self {
        let span_id = mint_id();
        CURRENT.with(|c| c.set(Some(TraceContext { trace_id, span_id })));
        Self {
            open: Some(OpenSpan {
                name,
                trace_id,
                span_id,
                parent_id,
                prev,
                start: Instant::now(),
                start_ns: now_ns(),
            }),
        }
    }

    /// The opened span's propagation context (`None` while tracing is off).
    pub fn context(&self) -> Option<TraceContext> {
        self.open.as_ref().map(|o| TraceContext {
            trace_id: o.trace_id,
            span_id: o.span_id,
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        CURRENT.with(|c| c.set(open.prev));
        emit(SpanRecord {
            name: open.name,
            trace_id: open.trace_id,
            span_id: open.span_id,
            parent_id: open.parent_id,
            start_ns: open.start_ns,
            dur_ns: u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
    }
}

// ---- flight recorder -------------------------------------------------------

pub mod recorder {
    //! A bounded ring of the most recent spans and events, kept in memory
    //! at all times while tracing is enabled and dumped as JSONL when
    //! something goes wrong: on panic (the CLI installs a hook), on entry
    //! into degraded read-only mode, and on demand (`Request::Stats`,
    //! `ptm top`). Writers claim slots with one atomic `fetch_add`; each
    //! slot is guarded by its own mutex held only for the copy, so
    //! recording never blocks on other slots.

    use super::SpanRecord;
    use crate::json::push_str_literal;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// One recorder entry: a completed span or a structured event.
    #[derive(Debug, Clone)]
    pub enum Entry {
        /// A completed span.
        Span(SpanRecord),
        /// A structured event (level, target, message).
        Event {
            /// Event level name (`error`, `warn`, …).
            level: &'static str,
            /// Dotted event target.
            target: String,
            /// Rendered message.
            message: String,
            /// Offset ns since the trace epoch.
            at_ns: u64,
        },
    }

    impl Entry {
        /// Renders the entry as one JSON object (no trailing newline).
        pub fn to_json(&self) -> String {
            match self {
                Entry::Span(span) => span.to_json(),
                Entry::Event {
                    level,
                    target,
                    message,
                    at_ns,
                } => {
                    let mut out = String::with_capacity(96);
                    out.push_str("{\"event\":");
                    push_str_literal(&mut out, level);
                    out.push_str(",\"target\":");
                    push_str_literal(&mut out, target);
                    out.push_str(",\"message\":");
                    push_str_literal(&mut out, message);
                    out.push_str(&format!(",\"at_ns\":{at_ns}}}"));
                    out
                }
            }
        }
    }

    /// Default ring capacity (entries), overridable via [`configure`].
    pub const DEFAULT_CAPACITY: usize = 256;

    struct Ring {
        slots: Vec<Mutex<Option<Entry>>>,
        cursor: AtomicU64,
    }

    static RING: OnceLock<Ring> = OnceLock::new();
    static CONFIGURED_CAPACITY: AtomicU64 = AtomicU64::new(DEFAULT_CAPACITY as u64);

    /// Sets the ring capacity. Takes effect only if called before the
    /// first entry is recorded (the ring allocates once); returns whether
    /// the setting will apply.
    pub fn configure(capacity: usize) -> bool {
        CONFIGURED_CAPACITY.store(capacity.max(1) as u64, Ordering::Relaxed);
        RING.get().is_none()
    }

    fn ring() -> &'static Ring {
        RING.get_or_init(|| {
            let capacity = CONFIGURED_CAPACITY.load(Ordering::Relaxed) as usize;
            Ring {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                cursor: AtomicU64::new(0),
            }
        })
    }

    fn push(entry: Entry) {
        let ring = ring();
        let seq = ring.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % ring.slots.len() as u64) as usize;
        let mut guard = ring.slots[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *guard = Some(entry);
    }

    pub(super) fn record_span(span: SpanRecord) {
        push(Entry::Span(span));
    }

    /// Records a structured event into the ring (no-op while tracing is
    /// off; the events sink calls this for every emitted event).
    pub fn record_event(level: &'static str, target: &str, message: &str) {
        if !super::tracing_enabled() {
            return;
        }
        push(Entry::Event {
            level,
            target: target.to_string(),
            message: message.to_string(),
            at_ns: super::now_ns(),
        });
    }

    /// Copies out the retained entries, oldest first. Entries being
    /// written concurrently may be skipped; a settled recorder snapshot is
    /// exact.
    pub fn entries() -> Vec<Entry> {
        let Some(ring) = RING.get() else {
            return Vec::new();
        };
        let cursor = ring.cursor.load(Ordering::Relaxed);
        let len = ring.slots.len() as u64;
        let start = cursor.saturating_sub(len);
        (start..cursor)
            .filter_map(|seq| {
                let slot = (seq % len) as usize;
                ring.slots[slot]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
            })
            .collect()
    }

    /// Renders the retained entries as JSONL, oldest first.
    pub fn dump_string() -> String {
        let mut out = String::new();
        for entry in entries() {
            out.push_str(&entry.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the retained entries as JSONL to `path`, returning how many
    /// were written. The file is truncated first: each dump is a complete
    /// snapshot, and the *latest* evidence is the useful one.
    pub fn dump_to(path: &std::path::Path) -> std::io::Result<usize> {
        let entries = entries();
        let mut out = String::new();
        for entry in &entries {
            out.push_str(&entry.to_json());
            out.push('\n');
        }
        std::fs::write(path, out)?;
        Ok(entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_path_stays_inert() {
        let _guard = crate::test_support::global_lock();
        set_tracing_enabled(false);
        assert!(current().is_none());
        let span = SpanGuard::enter("trace.test.inert");
        assert!(span.context().is_none());
        drop(span);
    }

    #[test]
    fn nested_guards_link_parent_and_restore() {
        let _guard = crate::test_support::global_lock();
        set_tracing_enabled(true);
        set_trace_seed(7);
        let root = SpanGuard::enter("trace.test.root");
        let root_ctx = root.context().expect("enabled");
        let child = SpanGuard::enter("trace.test.child");
        let child_ctx = child.context().expect("enabled");
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        assert_ne!(child_ctx.span_id, root_ctx.span_id);
        drop(child);
        assert_eq!(current(), Some(root_ctx), "child must restore parent");
        drop(root);
        assert!(current().is_none());
        set_tracing_enabled(false);
    }

    #[test]
    fn remote_parent_joins_the_carried_trace() {
        let _guard = crate::test_support::global_lock();
        set_tracing_enabled(true);
        let remote = TraceContext {
            trace_id: 0xABCD,
            span_id: 0x1234,
        };
        let span = SpanGuard::enter_with_parent("trace.test.remote", remote);
        let ctx = span.context().expect("enabled");
        assert_eq!(ctx.trace_id, 0xABCD);
        drop(span);
        set_tracing_enabled(false);
    }

    #[test]
    fn seeded_ids_reproduce() {
        let _guard = crate::test_support::global_lock();
        set_trace_seed(99);
        let a: Vec<u64> = (0..4).map(|_| mint_id()).collect();
        set_trace_seed(99);
        let b: Vec<u64> = (0..4).map(|_| mint_id()).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&id| id != 0));
    }

    #[test]
    fn span_json_shape() {
        let record = SpanRecord {
            name: "x.y",
            trace_id: 1,
            span_id: 2,
            parent_id: None,
            start_ns: 10,
            dur_ns: 5,
        };
        let json = record.to_json();
        assert!(json.contains("\"trace\":\"0000000000000001\""));
        assert!(json.contains("\"parent\":null"));
        assert!(json.contains("\"name\":\"x.y\""));
        assert!(json.contains("\"dur_ns\":5"));
    }

    #[test]
    fn recorder_retains_and_dumps() {
        let _guard = crate::test_support::global_lock();
        set_tracing_enabled(true);
        {
            let _span = SpanGuard::enter("trace.test.recorded");
        }
        recorder::record_event("warn", "trace.test", "something happened");
        let dump = recorder::dump_string();
        assert!(dump.contains("trace.test.recorded"));
        assert!(dump.contains("something happened"));
        set_tracing_enabled(false);
    }

    #[test]
    fn trace_writer_receives_jsonl() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let _guard = crate::test_support::global_lock();
        set_tracing_enabled(true);
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        set_trace_writer(Some(Box::new(sink.clone())));
        {
            let _span = SpanGuard::enter("trace.test.written");
        }
        set_trace_writer(None);
        set_tracing_enabled(false);
        let bytes = sink
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let text = String::from_utf8(bytes).expect("utf8");
        assert!(text.contains("trace.test.written"));
        assert!(text.ends_with('\n'));
    }
}
