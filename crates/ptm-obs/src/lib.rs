//! Observability for the persistent traffic measurement workspace.
//!
//! Four building blocks, all designed so that the *disabled* path costs a
//! couple of atomic loads and nothing else:
//!
//! * **Metrics** ([`metrics`]): a process-global [`Registry`] of atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s. Recording is
//!   lock-free (relaxed atomics); registration takes a short-lived lock the
//!   first time a name is seen. [`MetricsSnapshot`] renders the whole
//!   registry to deterministic JSON (names sorted) or a human summary.
//! * **Span timers** ([`span`]): `let _t = ptm_obs::span!("encode.record");`
//!   measures the enclosing scope and feeds the elapsed nanoseconds into the
//!   histogram of the same name. When metrics are disabled the timer never
//!   even reads the clock.
//! * **Structured events** ([`events`]): leveled, targeted log lines with
//!   typed fields, written to stderr as pretty text or JSONL. The level and
//!   format come from the `PTM_LOG` environment variable (e.g.
//!   `PTM_LOG=debug,json`); the default is `info` + pretty.
//! * **Request traces** ([`trace`]): `let _s = ptm_obs::tspan!("rpc.x");`
//!   opens a span in the current trace (contexts propagate across the RPC
//!   boundary via proto v3 headers), emitting a parent-linked timing record
//!   into the [flight recorder](trace::recorder) and an optional JSONL sink
//!   on drop. Ids are seeded-deterministic ([`trace::set_trace_seed`]).
//!
//! Metrics and tracing start **disabled** — the hot paths in
//! `ptm-core`/`ptm-net` call into this crate unconditionally and rely on the
//! disabled path being free. The CLI enables metrics when the user passes
//! `--metrics <path>` and tracing via `--trace <path>`.
//!
//! # Example
//!
//! ```
//! ptm_obs::set_metrics_enabled(true);
//! ptm_obs::counter!("demo.widgets").add(3);
//! {
//!     let _t = ptm_obs::span!("demo.work");
//!     // ... timed scope ...
//! }
//! let snapshot = ptm_obs::snapshot();
//! assert_eq!(snapshot.counters["demo.widgets"], 3);
//! assert_eq!(snapshot.histograms["demo.work"].count, 1);
//! ptm_obs::set_metrics_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
mod json;
pub mod metrics;
pub mod span;
pub mod trace;

pub use events::{FieldValue, Level};
pub use metrics::{
    BucketSnapshot, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use span::SpanTimer;
pub use trace::{
    enable_tracing, set_trace_seed, set_trace_writer, set_tracing_enabled, tracing_enabled,
    SpanGuard, TraceContext,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is currently enabled.
///
/// Hot paths may use this to skip preparatory work (e.g. reading a bit
/// before setting it to classify collisions); the recording primitives also
/// check it internally, so plain `counter!(..).inc()` calls are always safe.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Enables metric recording (shorthand for `set_metrics_enabled(true)`).
pub fn enable_metrics() {
    set_metrics_enabled(true);
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global metric registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Snapshots the global registry.
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// Returns a cached [`Counter`] registered under the given name.
///
/// The handle is resolved once per call site and cached in a hidden static,
/// so repeated executions cost one atomic load before the (enabled-gated)
/// increment. While metrics are disabled an unresolved call site hands out
/// a detached handle instead of registering the name — executing an
/// instrumented path with recording off must leave snapshots untouched.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __PTM_OBS_COUNTER: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        match __PTM_OBS_COUNTER.get() {
            Some(counter) => counter,
            None if $crate::metrics_enabled() => {
                __PTM_OBS_COUNTER.get_or_init(|| $crate::registry().counter($name))
            }
            None => $crate::metrics::detached_counter(),
        }
    }};
}

/// Returns a cached [`Gauge`] registered under the given name (detached
/// while metrics are disabled; see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __PTM_OBS_GAUGE: ::std::sync::OnceLock<$crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        match __PTM_OBS_GAUGE.get() {
            Some(gauge) => gauge,
            None if $crate::metrics_enabled() => {
                __PTM_OBS_GAUGE.get_or_init(|| $crate::registry().gauge($name))
            }
            None => $crate::metrics::detached_gauge(),
        }
    }};
}

/// Returns a cached [`Histogram`] (default exponential bounds) registered
/// under the given name (detached while metrics are disabled; see
/// [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __PTM_OBS_HISTOGRAM: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        match __PTM_OBS_HISTOGRAM.get() {
            Some(histogram) => histogram,
            None if $crate::metrics_enabled() => {
                __PTM_OBS_HISTOGRAM.get_or_init(|| $crate::registry().histogram($name))
            }
            None => $crate::metrics::detached_histogram(),
        }
    }};
}

/// Starts a [`SpanTimer`] feeding the histogram of the given name.
///
/// Bind it to keep the scope measured: `let _t = ptm_obs::span!("x.y");`.
/// When metrics are disabled the timer is inert and never reads the clock,
/// and an unresolved call site does not register the histogram name.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __PTM_OBS_SPAN_HIST: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::span::SpanTimer::new(match __PTM_OBS_SPAN_HIST.get() {
            Some(histogram) => histogram,
            None if $crate::metrics_enabled() => {
                __PTM_OBS_SPAN_HIST.get_or_init(|| $crate::registry().histogram($name))
            }
            None => $crate::metrics::detached_histogram(),
        })
    }};
}

/// Opens a trace span ([`trace::SpanGuard`]) under the given name.
///
/// Three forms:
///
/// * `tspan!("x.y")` — child of the thread's current span, or the root of a
///   freshly minted trace if there is none. Bind it to keep the scope
///   measured: `let _s = ptm_obs::tspan!("x.y");`.
/// * `tspan!("x.y", child_of = ctx)` — child of an explicit
///   [`TraceContext`], e.g. one carried over the RPC boundary.
/// * `tspan!("x.y", elapsed = start)` — records an already-elapsed stage
///   (an [`std::time::Instant`] captured earlier) as a completed span; no
///   guard is returned.
///
/// While tracing is disabled every form costs one relaxed atomic load.
/// Span names are dotted and catalogued in `docs/OBSERVABILITY.md`
/// (enforced by `ptm-analyze`).
#[macro_export]
macro_rules! tspan {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name)
    };
    ($name:expr, child_of = $parent:expr) => {
        $crate::trace::SpanGuard::enter_with_parent($name, $parent)
    };
    ($name:expr, elapsed = $start:expr) => {
        $crate::trace::emit_elapsed($name, $start)
    };
}

/// Emits a structured event at an explicit [`Level`].
///
/// Grammar: `event!(level, target, message)` or
/// `event!(level, target, message; key = value, ...)`. The message is any
/// `Display` expression; field values convert via [`FieldValue::from`]
/// (integers, floats, bools, strings).
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $msg:expr) => {
        $crate::event!($level, $target, $msg ;)
    };
    ($level:expr, $target:expr, $msg:expr ; $($key:ident = $value:expr),* $(,)?) => {
        if $crate::events::level_enabled($level) {
            $crate::events::emit(
                $level,
                $target,
                &::std::string::ToString::to_string(&$msg),
                &[$((stringify!($key), $crate::events::FieldValue::from($value))),*],
            );
        }
    };
}

/// [`event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($rest:tt)*) => { $crate::event!($crate::events::Level::Error, $($rest)*) };
}

/// [`event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($rest:tt)*) => { $crate::event!($crate::events::Level::Warn, $($rest)*) };
}

/// [`event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($rest:tt)*) => { $crate::event!($crate::events::Level::Info, $($rest)*) };
}

/// [`event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($rest:tt)*) => { $crate::event!($crate::events::Level::Debug, $($rest)*) };
}

/// [`event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($rest:tt)*) => { $crate::event!($crate::events::Level::Trace, $($rest)*) };
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Unit tests toggle process-global state (the enabled flag, the event
    //! sink writer); this lock serializes them so parallel test threads
    //! don't observe each other's configuration.

    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn global_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_disabled_by_default_and_toggleable() {
        let _guard = test_support::global_lock();
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        let counter = registry().counter("lib.toggle.counter");
        counter.inc();
        assert_eq!(counter.get(), 0, "disabled counters must not move");
        enable_metrics();
        assert!(metrics_enabled());
        counter.inc();
        assert_eq!(counter.get(), 1);
        set_metrics_enabled(false);
    }

    #[test]
    fn cached_macro_handles_share_the_registry_entry() {
        let _guard = test_support::global_lock();
        set_metrics_enabled(true);
        counter!("lib.macro.counter").add(2);
        registry().counter("lib.macro.counter").add(3);
        assert_eq!(counter!("lib.macro.counter").get(), 5);

        gauge!("lib.macro.gauge").set(-7);
        assert_eq!(registry().gauge("lib.macro.gauge").get(), -7);

        histogram!("lib.macro.hist").record(9);
        assert_eq!(registry().histogram("lib.macro.hist").count(), 1);
        set_metrics_enabled(false);
    }

    #[test]
    fn span_macro_times_a_scope() {
        let _guard = test_support::global_lock();
        set_metrics_enabled(true);
        {
            let _t = span!("lib.macro.span");
            std::hint::black_box(0u64);
        }
        assert_eq!(registry().histogram("lib.macro.span").count(), 1);
        set_metrics_enabled(false);
        {
            let _t = span!("lib.macro.span");
        }
        assert_eq!(
            registry().histogram("lib.macro.span").count(),
            1,
            "disabled span must not record"
        );
    }

    #[test]
    fn snapshot_reflects_global_registry() {
        let _guard = test_support::global_lock();
        set_metrics_enabled(true);
        counter!("lib.snapshot.counter").add(11);
        let snap = snapshot();
        assert_eq!(snap.counters["lib.snapshot.counter"], 11);
        set_metrics_enabled(false);
    }
}
