//! Structured, leveled events.
//!
//! Events carry a level, a target (a dotted component path such as
//! `cli.table1` or `net.sim`), a message, and typed key/value fields. They
//! render either as pretty single-line text for humans or as JSONL for
//! machines, controlled by the `PTM_LOG` environment variable:
//!
//! ```text
//! PTM_LOG=debug            # level only (error|warn|info|debug|trace|off)
//! PTM_LOG=json             # machine-readable JSONL at the default level
//! PTM_LOG=trace,json       # comma-separated tokens combine
//! PTM_LOG=pretty           # force pretty text (the default format)
//! ```
//!
//! The default is `info` + pretty. Filtering happens before any formatting:
//! a disabled level costs one relaxed atomic load (the [`crate::event!`]
//! macro checks [`level_enabled`] before evaluating its message or fields).

use crate::json;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The run cannot proceed (or produced wrong output).
    Error = 1,
    /// Something unexpected that the run survived.
    Warn = 2,
    /// High-level progress; the default verbosity.
    Info = 3,
    /// Per-phase detail (per simulated period, per trial batch).
    Debug = 4,
    /// Per-item detail; very noisy.
    Trace = 5,
}

impl Level {
    /// Lower-case name, padded to 5 bytes for column-aligned pretty output.
    fn padded(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn ",
            Level::Info => "info ",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Lower-case name without padding (used in JSON output).
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(raw: u8) -> Option<Level> {
        match raw {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    fn push_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => json::push_f64(out, *v),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(v) => json::push_str_literal(out, v),
        }
    }

    fn push_pretty(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => out.push_str(&format!("{v}")),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(v) => out.push_str(v),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

struct Sink {
    /// 0 = off; otherwise a `Level` discriminant. Events at a level numerically
    /// above this are dropped.
    max_level: AtomicU8,
    json: AtomicBool,
    /// Timestamp origin: events report milliseconds since the sink was first
    /// touched, which is stable within a run and needs no wall clock.
    epoch: Instant,
    writer: Mutex<Box<dyn Write + Send>>,
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| {
        let (level, json) = parse_spec(std::env::var("PTM_LOG").ok().as_deref());
        Sink {
            max_level: AtomicU8::new(level),
            json: AtomicBool::new(json),
            epoch: Instant::now(),
            writer: Mutex::new(Box::new(io::stderr())),
        }
    })
}

/// Parses a `PTM_LOG`-style spec into `(max_level_u8, json)`.
///
/// Unknown tokens are ignored so a typo degrades to the defaults rather
/// than panicking inside logging.
fn parse_spec(spec: Option<&str>) -> (u8, bool) {
    let mut level = Level::Info as u8;
    let mut json = false;
    if let Some(spec) = spec {
        for token in spec.split(',') {
            match token.trim().to_ascii_lowercase().as_str() {
                "off" | "none" | "silent" => level = 0,
                "error" => level = Level::Error as u8,
                "warn" | "warning" => level = Level::Warn as u8,
                "info" => level = Level::Info as u8,
                "debug" => level = Level::Debug as u8,
                "trace" => level = Level::Trace as u8,
                "json" | "jsonl" => json = true,
                "pretty" | "text" => json = false,
                _ => {}
            }
        }
    }
    (level, json)
}

/// (Re-)applies the `PTM_LOG` environment variable to the sink.
///
/// The sink self-initializes from the environment on first use, so calling
/// this is only needed after the process mutates `PTM_LOG` or to reset
/// overrides made via [`set_max_level`]/[`set_json`].
pub fn init_from_env() {
    let (level, json) = parse_spec(std::env::var("PTM_LOG").ok().as_deref());
    let s = sink();
    s.max_level.store(level, Ordering::Relaxed);
    s.json.store(json, Ordering::Relaxed);
}

/// Overrides the maximum emitted level; `None` silences all events.
pub fn set_max_level(level: Option<Level>) {
    sink()
        .max_level
        .store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Switches between JSONL (`true`) and pretty text (`false`) output.
pub fn set_json(json: bool) {
    sink().json.store(json, Ordering::Relaxed);
}

/// Whether an event at `level` would currently be emitted.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    level as u8 <= sink().max_level.load(Ordering::Relaxed)
}

/// Current maximum level, if any level is enabled at all.
pub fn max_level() -> Option<Level> {
    Level::from_u8(sink().max_level.load(Ordering::Relaxed))
}

/// Formats and writes one event. Callers normally go through the
/// [`crate::event!`] family of macros, which gate on [`level_enabled`]
/// *before* evaluating message and field expressions.
pub fn emit(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    // Mirror every emitted event into the flight recorder so a post-mortem
    // dump interleaves events with spans (no-op while tracing is off).
    crate::trace::recorder::record_event(level.name(), target, message);
    let s = sink();
    let elapsed_ms = s.epoch.elapsed().as_secs_f64() * 1e3;
    let mut line = String::with_capacity(96);
    if s.json.load(Ordering::Relaxed) {
        line.push_str("{\"ts_ms\": ");
        json::push_f64(&mut line, (elapsed_ms * 1e3).round() / 1e3);
        line.push_str(", \"level\": ");
        json::push_str_literal(&mut line, level.name());
        line.push_str(", \"target\": ");
        json::push_str_literal(&mut line, target);
        line.push_str(", \"message\": ");
        json::push_str_literal(&mut line, message);
        for (key, value) in fields {
            line.push_str(", ");
            json::push_str_literal(&mut line, key);
            line.push_str(": ");
            value.push_json(&mut line);
        }
        line.push('}');
    } else {
        line.push_str(&format!(
            "[{elapsed_ms:9.1}ms {} {target}] {message}",
            level.padded()
        ));
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            value.push_pretty(&mut line);
        }
    }
    line.push('\n');
    let mut writer = s.writer.lock().unwrap_or_else(|poison| poison.into_inner());
    // Logging must never take the process down; a broken pipe on stderr is
    // the reader's problem.
    let _ = writer.write_all(line.as_bytes());
    let _ = writer.flush();
}

/// Redirects event output to an arbitrary writer (tests use an in-memory
/// buffer). Returns the previous writer.
pub fn set_writer(writer: Box<dyn Write + Send>) -> Box<dyn Write + Send> {
    let mut slot = sink()
        .writer
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    std::mem::replace(&mut *slot, writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::global_lock;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer that appends into a shared buffer, so the test can read back
    /// what the sink wrote.
    #[derive(Clone)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Runs `f` with events captured, restoring the previous writer and
    /// level/format afterwards.
    fn captured(level: Option<Level>, json: bool, f: impl FnOnce()) -> String {
        let buffer = Capture(Arc::new(StdMutex::new(Vec::new())));
        let previous = set_writer(Box::new(buffer.clone()));
        set_max_level(level);
        set_json(json);
        f();
        let _ = set_writer(previous);
        init_from_env();
        let bytes = buffer.0.lock().unwrap().clone();
        String::from_utf8(bytes).expect("events are UTF-8")
    }

    #[test]
    fn parse_spec_tokens() {
        assert_eq!(parse_spec(None), (Level::Info as u8, false));
        assert_eq!(parse_spec(Some("debug")), (Level::Debug as u8, false));
        assert_eq!(parse_spec(Some("json")), (Level::Info as u8, true));
        assert_eq!(parse_spec(Some("trace,json")), (Level::Trace as u8, true));
        assert_eq!(parse_spec(Some("off")), (0, false));
        assert_eq!(
            parse_spec(Some("WARN , Pretty")),
            (Level::Warn as u8, false)
        );
        assert_eq!(parse_spec(Some("nonsense")), (Level::Info as u8, false));
    }

    #[test]
    fn pretty_line_has_level_target_message_fields() {
        let _guard = global_lock();
        let out = captured(Some(Level::Info), false, || {
            crate::info!("test.target", "hello"; n = 3_u64, ok = true);
        });
        assert!(out.contains("info"), "level missing: {out}");
        assert!(out.contains("test.target"), "target missing: {out}");
        assert!(out.contains("hello"), "message missing: {out}");
        assert!(out.contains("n=3"), "field missing: {out}");
        assert!(out.contains("ok=true"), "field missing: {out}");
    }

    #[test]
    fn json_line_is_wellformed() {
        let _guard = global_lock();
        let out = captured(Some(Level::Debug), true, || {
            crate::debug!("test.json", "with \"quotes\""; ratio = 0.5, name = "x");
        });
        let line = out.lines().next().expect("one line");
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not JSON: {line}"
        );
        assert!(line.contains("\"level\": \"debug\""));
        assert!(line.contains("\"target\": \"test.json\""));
        assert!(line.contains("\"message\": \"with \\\"quotes\\\"\""));
        assert!(line.contains("\"ratio\": 0.5"));
        assert!(line.contains("\"name\": \"x\""));
    }

    #[test]
    fn level_filter_drops_noisier_events() {
        let _guard = global_lock();
        let out = captured(Some(Level::Warn), false, || {
            crate::error!("test.filter", "kept-error");
            crate::warn!("test.filter", "kept-warn");
            crate::info!("test.filter", "dropped-info");
            crate::trace!("test.filter", "dropped-trace");
        });
        assert!(out.contains("kept-error"));
        assert!(out.contains("kept-warn"));
        assert!(!out.contains("dropped-info"));
        assert!(!out.contains("dropped-trace"));
    }

    #[test]
    fn off_silences_everything() {
        let _guard = global_lock();
        let out = captured(None, false, || {
            assert!(!level_enabled(Level::Error));
            crate::error!("test.off", "even errors");
        });
        assert!(out.is_empty(), "expected silence, got: {out}");
    }

    #[test]
    fn max_level_roundtrip() {
        let _guard = global_lock();
        set_max_level(Some(Level::Trace));
        assert_eq!(max_level(), Some(Level::Trace));
        assert!(level_enabled(Level::Trace));
        set_max_level(None);
        assert_eq!(max_level(), None);
        init_from_env();
    }
}
