//! Scope timers that feed histograms.
//!
//! A [`SpanTimer`] measures from construction to drop and records the
//! elapsed nanoseconds into its histogram. The [`crate::span!`] macro is the
//! usual entry point: it resolves the histogram once per call site and hands
//! it here.
//!
//! When metrics are disabled at construction time the timer holds no start
//! instant — the clock is never read — and drop is a single branch. A timer
//! created while metrics were enabled still records even if they are
//! disabled mid-span; the recording primitives drop the value in that case,
//! which keeps the rule simple: histograms only move while enabled.

use crate::metrics::Histogram;
use std::time::Instant;

/// Times the enclosing scope and records elapsed nanoseconds on drop.
///
/// Bind it to a named variable (conventionally `_t`): `let _ = span!(..)`
/// drops immediately and times nothing, which is why this type is
/// `#[must_use]`.
#[must_use = "bind the timer (e.g. `let _t = ...`) or the span ends immediately"]
#[derive(Debug)]
pub struct SpanTimer {
    start: Option<Instant>,
    histogram: &'static Histogram,
}

impl SpanTimer {
    /// Starts a timer feeding `histogram`; inert when metrics are disabled.
    pub fn new(histogram: &'static Histogram) -> Self {
        let start = crate::metrics_enabled().then(Instant::now);
        Self { start, histogram }
    }

    /// Stops the timer early and records, consuming it. Dropping does the
    /// same; this exists for call sites that want to end the span before
    /// scope end without an extra block.
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::test_support::global_lock;

    #[test]
    fn finish_records_once() {
        let _guard = global_lock();
        crate::set_metrics_enabled(true);
        let before = crate::registry().histogram("span.finish").count();
        let timer = crate::span!("span.finish");
        timer.finish();
        let after = crate::registry().histogram("span.finish").count();
        assert_eq!(after, before + 1);
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn sleep_is_measured_in_nanoseconds() {
        let _guard = global_lock();
        crate::set_metrics_enabled(true);
        {
            let _t = crate::span!("span.sleep");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let snap = crate::registry().histogram("span.sleep").snapshot();
        assert_eq!(snap.count, 1);
        assert!(
            snap.min.unwrap() >= 5_000_000,
            "5ms sleep should record >= 5e6 ns, got {:?}",
            snap.min
        );
        crate::set_metrics_enabled(false);
    }

    #[test]
    fn disabled_timer_never_reads_clock_or_records() {
        let _guard = global_lock();
        crate::set_metrics_enabled(false);
        let before = crate::registry().histogram("span.disabled").count();
        {
            let timer = crate::span!("span.disabled");
            assert!(format!("{timer:?}").contains("start: None"));
        }
        assert_eq!(crate::registry().histogram("span.disabled").count(), before);
    }
}
