//! A tiny JSON string emitter.
//!
//! The snapshot and event types carry their own serializer so the crate
//! stays dependency-free; output is plain JSON with keys in the order the
//! callers iterate (BTreeMaps, hence deterministic).

/// Appends `s` as a JSON string literal (with quotes) onto `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite floats become `null` (JSON has
/// no NaN/Infinity).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display for floats is valid JSON except
        // that integral values print without a fraction, which is fine.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn literal(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(literal("plain"), "\"plain\"");
        assert_eq!(literal("a\"b"), "\"a\\\"b\"");
        assert_eq!(literal("a\\b"), "\"a\\\\b\"");
        assert_eq!(literal("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(literal("\u{1}"), "\"\\u0001\"");
        assert_eq!(literal("héllo"), "\"héllo\"");
    }

    #[test]
    fn floats() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }
}
