//! Per-segment footer index: `location → sorted period entries → frame
//! offsets`.
//!
//! A sealed segment carries one encoded [`SegmentIndex`] in its footer
//! frame, so `open()` can answer "which frames does this segment hold, and
//! where" without decoding a single record payload. Layout (all integers
//! little-endian):
//!
//! ```text
//! u32 location count
//! per location:
//!   u64 location | u32 entry count
//!   per entry (sorted by period): u32 period | u64 offset | u32 len
//! ```
//!
//! `offset` is the byte offset of the *frame header* inside the segment
//! file and `len` the payload length, so a reader can fetch exactly one
//! frame with a seek plus one bounded read.

use crate::codec::StoreError;
use ptm_core::record::PeriodId;
use ptm_core::LocationId;
use std::collections::BTreeMap;

/// Where one record's frame lives inside a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// The record's period.
    pub period: PeriodId,
    /// Byte offset of the frame header in the segment file.
    pub offset: u64,
    /// Payload length in bytes (the frame is `8 + len` bytes).
    pub len: u32,
}

/// The footer index of one segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentIndex {
    // BTreeMap keyed by the raw location id: deterministic encode order.
    entries: BTreeMap<u64, Vec<IndexEntry>>,
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(raw)
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(raw)
}

impl SegmentIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of indexed frames.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records (or supersedes) the frame for `(location, period)`. Entries
    /// stay sorted by period per location; a re-insert of an existing
    /// period replaces the older frame — within one segment the later
    /// append wins, mirroring replay order.
    pub fn insert(&mut self, location: LocationId, period: PeriodId, offset: u64, len: u32) {
        let entries = self.entries.entry(location.get()).or_default();
        let entry = IndexEntry {
            period,
            offset,
            len,
        };
        match entries.binary_search_by_key(&period.get(), |e| e.period.get()) {
            Ok(at) => entries[at] = entry,
            Err(at) => entries.insert(at, entry),
        }
    }

    /// The frame holding `(location, period)`, if this segment has one.
    pub fn lookup(&self, location: LocationId, period: PeriodId) -> Option<IndexEntry> {
        let entries = self.entries.get(&location.get())?;
        entries
            .binary_search_by_key(&period.get(), |e| e.period.get())
            .ok()
            .map(|at| entries[at])
    }

    /// Iterates `(location, entry)` over every indexed frame, locations
    /// ascending, periods ascending within a location.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, IndexEntry)> + '_ {
        self.entries
            .iter()
            .flat_map(|(loc, entries)| entries.iter().map(|entry| (LocationId::new(*loc), *entry)))
    }

    /// Locations with at least one indexed frame, ascending.
    pub fn locations(&self) -> impl Iterator<Item = LocationId> + '_ {
        self.entries.keys().map(|loc| LocationId::new(*loc))
    }

    /// Every entry indexed for `location`, sorted by period (empty slice
    /// when the segment holds nothing for it).
    pub fn entries_for(&self, location: LocationId) -> &[IndexEntry] {
        self.entries.get(&location.get()).map_or(&[], Vec::as_slice)
    }

    /// The inclusive `(first, last)` period range indexed for `location`.
    pub fn period_range(&self, location: LocationId) -> Option<(PeriodId, PeriodId)> {
        let entries = self.entries.get(&location.get())?;
        let first = entries.first()?;
        let last = entries.last()?;
        Some((first.period, last.period))
    }

    /// Serializes the index (no framing; the segment wraps this in a
    /// CRC-checked footer frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.entries.len() * 16);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (location, entries) in &self.entries {
            out.extend_from_slice(&location.to_le_bytes());
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for entry in entries {
                out.extend_from_slice(&entry.period.get().to_le_bytes());
                out.extend_from_slice(&entry.offset.to_le_bytes());
                out.extend_from_slice(&entry.len.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes an index payload.
    ///
    /// # Errors
    ///
    /// [`StoreError::MalformedRecord`] for truncated or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        let short = |what: &str| StoreError::MalformedRecord {
            reason: format!("segment index truncated in {what}"),
        };
        let mut at = 0usize;
        let mut take = |n: usize, what: &str| -> Result<&[u8], StoreError> {
            let end = at.checked_add(n).ok_or_else(|| short(what))?;
            let slice = payload.get(at..end).ok_or_else(|| short(what))?;
            at = end;
            Ok(slice)
        };
        let locations = le_u32(take(4, "location count")?);
        let mut entries = BTreeMap::new();
        for _ in 0..locations {
            let location = le_u64(take(8, "location id")?);
            let count = le_u32(take(4, "entry count")?);
            let mut list = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let period = le_u32(take(4, "period")?);
                let offset = le_u64(take(8, "offset")?);
                let len = le_u32(take(4, "len")?);
                list.push(IndexEntry {
                    period: PeriodId::new(period),
                    offset,
                    len,
                });
            }
            if !list.is_sorted_by_key(|e| e.period.get()) {
                return Err(StoreError::MalformedRecord {
                    reason: format!("segment index periods unsorted for location {location}"),
                });
            }
            entries.insert(location, list);
        }
        if at != payload.len() {
            return Err(StoreError::MalformedRecord {
                reason: format!("segment index has {} trailing bytes", payload.len() - at),
            });
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SegmentIndex {
        let mut index = SegmentIndex::new();
        index.insert(LocationId::new(7), PeriodId::new(3), 8, 100);
        index.insert(LocationId::new(7), PeriodId::new(1), 116, 90);
        index.insert(LocationId::new(2), PeriodId::new(0), 214, 80);
        index
    }

    #[test]
    fn roundtrip_and_lookup() {
        let index = sample();
        assert_eq!(index.len(), 3);
        let back = SegmentIndex::decode(&index.encode()).expect("decode");
        assert_eq!(back, index);
        let entry = back
            .lookup(LocationId::new(7), PeriodId::new(1))
            .expect("hit");
        assert_eq!(entry.offset, 116);
        assert!(back.lookup(LocationId::new(7), PeriodId::new(9)).is_none());
        assert!(back.lookup(LocationId::new(9), PeriodId::new(1)).is_none());
        assert_eq!(
            back.period_range(LocationId::new(7)),
            Some((PeriodId::new(1), PeriodId::new(3)))
        );
    }

    #[test]
    fn reinsert_supersedes() {
        let mut index = sample();
        index.insert(LocationId::new(7), PeriodId::new(3), 999, 42);
        assert_eq!(index.len(), 3);
        let entry = index
            .lookup(LocationId::new(7), PeriodId::new(3))
            .expect("hit");
        assert_eq!((entry.offset, entry.len), (999, 42));
    }

    #[test]
    fn truncated_or_trailing_bytes_rejected() {
        let bytes = sample().encode();
        for cut in [0usize, 3, 5, bytes.len() - 1] {
            assert!(SegmentIndex::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(SegmentIndex::decode(&extended).is_err());
    }
}
