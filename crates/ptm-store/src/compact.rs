//! Crash-safe background compaction for the segmented store.
//!
//! Rotation leaves behind small segments; supersession (a later frame for
//! the same `(location, period)`) leaves dead frames inside them. A
//! compaction pass copies only the *live* frames of its victim segments
//! into one fresh merged segment, seals it, and publishes the swap with a
//! single atomic manifest commit — victims stay live until that rename, so
//! a crash (or injected `store.write` / `store.seal` / `store.manifest`
//! fault) at any point leaves the previous segment set fully intact and
//! the merged file an orphan the next `open()` sweeps away.
//!
//! Correctness of the swap: at compaction time the merged segment's keys
//! are exactly the victims' live keys — disjoint from every surviving
//! segment (a key can be live in only one segment). The merged segment's
//! *id* is freshly allocated (it exceeds even the active segment's), but
//! its **supersession rank** is the maximum victim rank: the reopen
//! lookup rebuild orders segments by rank, so frames appended to the
//! active segment after the merge — which carry a higher rank once that
//! segment seals — keep superseding the merged copies across a restart.

use crate::archive::build_io;
use crate::codec::StoreError;
use crate::crc32::crc32;
use crate::index::SegmentIndex;
use crate::io::check_site;
use crate::manifest::SegmentMeta;
use crate::segment::{FrameLoc, SealedSegment, SegmentStore};
use ptm_core::record::PeriodId;
use ptm_core::LocationId;
use std::io::Write;

/// What one compaction pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Victim segments merged (and deleted).
    pub merged_segments: usize,
    /// Dead (superseded) frames dropped instead of copied.
    pub dropped_frames: u64,
    /// Bytes of victim files reclaimed, net of the merged file's size.
    pub reclaimed_bytes: i64,
    /// Id of the merged segment, when one was produced.
    pub new_segment: Option<u64>,
}

impl SegmentStore {
    /// Sealed segments worth merging: smaller than the rotation threshold
    /// (`small_bytes`), or carrying dead frames. Ascending by id.
    pub fn compaction_candidates(&self, small_bytes: u64) -> Vec<u64> {
        self.sealed
            .iter()
            .filter(|(id, segment)| {
                segment.bytes < small_bytes || self.live_frames(**id) < segment.records
            })
            .map(|(id, _)| *id)
            .collect()
    }

    /// Live frames currently resolved to `segment` by the store lookup.
    fn live_frames(&self, segment: u64) -> u64 {
        let Some(sealed) = self.sealed.get(&segment) else {
            return 0;
        };
        sealed
            .index
            .iter()
            .filter(|(location, entry)| {
                self.lookup
                    .get(&(*location, entry.period))
                    .is_some_and(|loc| loc.segment == segment && loc.offset == entry.offset)
            })
            .count() as u64
    }

    /// Merges the small/superseded sealed segments into one fresh sealed
    /// segment, committing the swap atomically via the manifest. A no-op
    /// (empty report) when fewer than two victims exist and nothing is
    /// superseded.
    ///
    /// # Errors
    ///
    /// I/O failures and injected `store.write` / `store.seal` /
    /// `store.manifest` faults. On error the previous segment set is
    /// untouched and the partial merged file is removed.
    pub fn compact(&mut self) -> Result<CompactionReport, StoreError> {
        let _s = ptm_obs::tspan!("store.compact");
        // "Small" = under twice the rotation threshold: rotation-sealed
        // segments land just past `rotate_bytes`, and merging several of
        // them into one file is exactly the point.
        let victims = self.compaction_candidates(self.opts.rotate_bytes.saturating_mul(2));
        let total_live: u64 = victims.iter().map(|id| self.live_frames(*id)).sum();
        let total_frames: u64 = victims
            .iter()
            .filter_map(|id| self.sealed.get(id))
            .map(|s| s.records)
            .sum();
        if victims.len() < 2 && total_live == total_frames {
            return Ok(CompactionReport::default());
        }

        let new_id = self.manifest.next_segment_id;
        // The merged frames are copies of the victims' — they must rank
        // exactly where the newest victim ranked, below any segment whose
        // appends postdate this merge.
        let rank = victims
            .iter()
            .filter_map(|id| self.sealed.get(id).map(|s| s.rank))
            .max()
            .unwrap_or(new_id);
        let merged = match self.write_merged_segment(&victims, new_id, rank) {
            Ok(merged) => merged,
            Err(err) => {
                let _ =
                    std::fs::remove_file(self.dir.join(crate::segment::segment_file_name(new_id)));
                ptm_obs::counter!("store.compact.failures").inc();
                ptm_obs::warn!("store.archive", "compaction failed; segment set unchanged";
                    error = err.to_string());
                return Err(err);
            }
        };

        // Publish: victims out, merged segment in, one atomic rename.
        let mut manifest = self.manifest.clone();
        manifest.segments.retain(|s| !victims.contains(&s.id));
        let at = manifest
            .segments
            .iter()
            .position(|s| s.id > new_id)
            .unwrap_or(manifest.segments.len());
        manifest.segments.insert(
            at,
            SegmentMeta {
                id: new_id,
                sealed: true,
                records: merged.records,
                rank,
            },
        );
        manifest.next_segment_id = new_id + 1;
        if let Err(err) = manifest.commit(&self.dir, &self.opts.hooks.manifest) {
            let _ = std::fs::remove_file(&merged.path);
            ptm_obs::counter!("store.compact.failures").inc();
            ptm_obs::warn!("store.archive",
                "compaction manifest commit failed; segment set unchanged";
                error = err.to_string());
            return Err(err);
        }
        self.manifest = manifest;

        // The swap is durable; retire the victims in memory and on disk.
        let mut reclaimed: i64 = -(merged.bytes as i64);
        let mut dropped = 0u64;
        for id in &victims {
            if let Some(victim) = self.sealed.remove(id) {
                reclaimed += victim.bytes as i64;
                dropped += victim.records;
                let _ = std::fs::remove_file(&victim.path);
            }
            self.cache.evict_segment(*id);
        }
        dropped -= merged.records;
        for (location, entry) in merged.index.iter() {
            self.lookup.insert(
                (location, entry.period),
                FrameLoc {
                    segment: new_id,
                    offset: entry.offset,
                    len: entry.len,
                },
            );
        }
        let records = merged.records;
        self.sealed.insert(new_id, merged);
        self.compactions += 1;

        ptm_obs::counter!("store.compact.runs").inc();
        ptm_obs::counter!("store.compact.merged_segments").add(victims.len() as u64);
        ptm_obs::counter!("store.compact.dropped_frames").add(dropped);
        ptm_obs::counter!("store.compact.reclaimed_bytes").add(reclaimed.max(0) as u64);
        ptm_obs::info!("store.archive", "compaction merged segments";
            merged_segments = victims.len() as u64, new_segment = new_id,
            live_records = records, dropped_frames = dropped,
            reclaimed_bytes = reclaimed);
        self.publish_gauges();
        Ok(CompactionReport {
            merged_segments: victims.len(),
            dropped_frames: dropped,
            reclaimed_bytes: reclaimed,
            new_segment: Some(new_id),
        })
    }

    /// Copies the victims' live frames into a fresh sealed segment file
    /// (written through the fault hooks — compaction I/O is injectable).
    fn write_merged_segment(
        &self,
        victims: &[u64],
        new_id: u64,
        rank: u64,
    ) -> Result<SealedSegment, StoreError> {
        // Gather live keys per victim, ordered by (segment, location,
        // period) for a deterministic merged layout.
        let mut live: Vec<(LocationId, PeriodId, FrameLoc)> = Vec::new();
        for id in victims {
            let Some(victim) = self.sealed.get(id) else {
                continue;
            };
            for (location, entry) in victim.index.iter() {
                let key = (location, entry.period);
                if self
                    .lookup
                    .get(&key)
                    .is_some_and(|loc| loc.segment == *id && loc.offset == entry.offset)
                {
                    live.push((
                        location,
                        entry.period,
                        FrameLoc {
                            segment: *id,
                            offset: entry.offset,
                            len: entry.len,
                        },
                    ));
                }
            }
        }

        let path = self.dir.join(crate::segment::segment_file_name(new_id));
        let mut index = SegmentIndex::new();
        {
            let file = std::fs::File::create(&path)?;
            let mut io = build_io(file, &self.opts.hooks);
            let mut buf = Vec::with_capacity(64 * 1024);
            buf.extend_from_slice(b"PTMS");
            buf.extend_from_slice(&2u16.to_le_bytes());
            buf.extend_from_slice(&0u16.to_le_bytes());
            let mut offset = crate::segment::HEADER_LEN;
            for (location, period, loc) in &live {
                // Re-read and re-verify the victim frame; corruption stops
                // the pass rather than propagating into the merged file.
                let payload = self.read_frame_payload(*loc)?;
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(&crc32(&payload).to_le_bytes());
                buf.extend_from_slice(&payload);
                index.insert(*location, *period, offset, payload.len() as u32);
                offset += 8 + payload.len() as u64;
                if buf.len() >= 64 * 1024 {
                    io.write_all(&buf)?;
                    buf.clear();
                }
            }
            // Seal in the same stroke: footer index frame + trailer.
            check_site(&self.opts.hooks.seal, "compaction seal")?;
            let footer = index.encode();
            buf.extend_from_slice(&((footer.len() as u32) | 0x8000_0000).to_le_bytes());
            buf.extend_from_slice(&crc32(&footer).to_le_bytes());
            buf.extend_from_slice(&footer);
            buf.extend_from_slice(&offset.to_le_bytes());
            buf.extend_from_slice(b"PTMF");
            io.write_all(&buf)?;
            io.flush()?;
            io.sync()?;
        }
        let bytes = std::fs::metadata(&path)?.len();
        let records = index.len() as u64;
        Ok(SealedSegment {
            path,
            index,
            records,
            bytes,
            rank,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::StoreOptions;
    use crate::StoreHooks;
    use ptm_core::encoding::{EncodingScheme, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use ptm_core::record::TrafficRecord;
    use ptm_fault::{sites, FaultAction, FaultPlan, Rule};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ptm-compact-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn sample_records(location: u64, count: u32) -> Vec<TrafficRecord> {
        let scheme = EncodingScheme::new(9, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(location);
        (0..count)
            .map(|p| {
                let mut record = TrafficRecord::new(
                    LocationId::new(location),
                    PeriodId::new(p),
                    BitmapSize::new(1024).expect("pow2"),
                );
                for _ in 0..60 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect()
    }

    fn fragmented_store(dir: &PathBuf, rotate_bytes: u64) -> (SegmentStore, Vec<TrafficRecord>) {
        let opts = StoreOptions {
            rotate_bytes,
            ..StoreOptions::default()
        };
        let records = sample_records(11, 10);
        let mut store = SegmentStore::open(dir, opts).expect("open").store;
        // One flush per record: many tiny sealed segments.
        for record in &records {
            store.append_all([record]).expect("append");
        }
        (store, records)
    }

    #[test]
    fn compaction_merges_small_segments_and_preserves_reads() {
        let dir = temp_dir("merge");
        let (mut store, records) = fragmented_store(&dir, 400);
        let sealed_before = store.sealed_count();
        assert!(sealed_before >= 3, "setup must fragment the store");

        let report = store.compact().expect("compact");
        assert_eq!(report.merged_segments, sealed_before);
        assert!(report.new_segment.is_some());
        assert!(store.sealed_count() < sealed_before);
        assert_eq!(store.record_count(), records.len());
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        // Victim files are gone; reopening resolves identically.
        drop(store);
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("reopen")
            .store;
        assert_eq!(store.record_count(), records.len());
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_superseded_frames() {
        let dir = temp_dir("supersede");
        let (mut store, records) = fragmented_store(&dir, 400);
        // Re-append half the records: the old frames become dead weight.
        for record in records.iter().take(5) {
            store.append_all([record]).expect("supersede");
        }
        store.checkpoint().expect("checkpoint");
        let report = store.compact().expect("compact");
        assert!(report.dropped_frames >= 5, "dead frames must be dropped");
        assert_eq!(store.record_count(), records.len());
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_after_compaction_supersedes_across_reopen() {
        let dir = temp_dir("post-compact-supersede");
        let (mut store, records) = fragmented_store(&dir, 400);
        let report = store.compact().expect("compact");
        assert!(report.new_segment.is_some(), "setup must actually merge");

        // The merged segment's id exceeds the active segment's. Supersede
        // a key that was copied into the merged segment, then seal the
        // active segment behind it: the newer frame now lives in a
        // *lower-id* (but higher-ranked) sealed segment.
        let altered = TrafficRecord::new(
            records[0].location(),
            records[0].period(),
            BitmapSize::new(1024).expect("pow2"),
        );
        assert_ne!(altered, records[0], "the superseding frame must differ");
        store.append_all([&altered]).expect("supersede");
        store.checkpoint().expect("seal the superseding frame");
        let got = store
            .get(altered.location(), altered.period())
            .expect("read")
            .expect("present");
        assert_eq!(*got, altered, "live lookup sees the newest frame");

        // Recovery must be exact: the reopen rebuild may not resurrect
        // the merged segment's stale copy just because its id is larger.
        drop(store);
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("reopen")
            .store;
        let got = store
            .get(altered.location(), altered.period())
            .expect("read")
            .expect("present");
        assert_eq!(*got, altered, "newest frame still wins after reopen");
        for record in records.iter().skip(1) {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nothing_to_do_is_a_clean_noop() {
        let dir = temp_dir("noop");
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("open")
            .store;
        store.append_all(&sample_records(1, 3)).expect("fill");
        assert_eq!(store.compact().expect("noop"), CompactionReport::default());
        assert_eq!(store.compaction_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_manifest_fault_rolls_back_compaction() {
        let dir = temp_dir("fault");
        let (store, records) = fragmented_store(&dir, 400);
        drop(store);
        let plan = FaultPlan::builder(17)
            .rule(
                sites::STORE_MANIFEST,
                Rule::nth(1, FaultAction::Error(std::io::ErrorKind::Other)),
            )
            .build()
            .expect("plan");
        let opts = StoreOptions {
            hooks: StoreHooks::from_plan(&plan),
            rotate_bytes: 400,
            ..StoreOptions::default()
        };
        let mut store = SegmentStore::open(&dir, opts).expect("open").store;
        let sealed_before = store.sealed_count();
        let next_before = store.manifest.next_segment_id;

        store.compact().expect_err("injected manifest fault");
        assert_eq!(store.sealed_count(), sealed_before, "victims untouched");
        assert_eq!(store.manifest.next_segment_id, next_before);
        assert!(
            !dir.join(crate::segment::segment_file_name(next_before))
                .exists(),
            "partial merged file removed"
        );
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        // The schedule fired once; the retry compacts successfully.
        let report = store.compact().expect("retry");
        assert!(report.new_segment.is_some());
        assert_eq!(store.record_count(), records.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_fault_leaves_orphan_for_open_to_sweep() {
        let dir = temp_dir("write-fault");
        let (store, records) = fragmented_store(&dir, 400);
        drop(store);
        let plan = FaultPlan::builder(23)
            .rule(
                sites::STORE_WRITE,
                Rule::nth(1, FaultAction::Error(std::io::ErrorKind::StorageFull)),
            )
            .build()
            .expect("plan");
        let opts = StoreOptions {
            hooks: StoreHooks::from_plan(&plan),
            rotate_bytes: 400,
            ..StoreOptions::default()
        };
        let mut store = SegmentStore::open(&dir, opts).expect("open").store;
        store.compact().expect_err("injected write fault");
        drop(store);
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("reopen")
            .store;
        assert_eq!(store.record_count(), records.len());
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
