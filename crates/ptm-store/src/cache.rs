//! Fixed-capacity page cache for decoded record frames.
//!
//! Historical-period reads land here instead of requiring the whole
//! archive to be memory-resident: a hit hands back the already-decoded
//! record ([`std::sync::Arc`]-shared, so callers hold it as long as they
//! like); a miss is loaded by the caller and [`PageCache::insert`]ed.
//! Replacement is LRU by a logical tick (no wall clock — eviction order is
//! deterministic for a given access sequence). Pinned entries are never
//! evicted: a multi-frame read (location hydration, compaction) pins what
//! it is iterating so interleaved reads cannot thrash its working set.
//! When every resident entry is pinned the cache admits over capacity
//! rather than failing the read — capacity is a target, not a hard wall.
//!
//! Metrics: `store.cache.hits` / `store.cache.misses` /
//! `store.cache.evictions` counters and the `store.cache.entries` gauge.

use ptm_core::record::TrafficRecord;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: a frame is identified by its segment and byte offset.
pub type PageKey = (u64, u64);

#[derive(Debug)]
struct CacheEntry {
    record: Arc<TrafficRecord>,
    pins: u32,
    last_use: u64,
}

/// See the module docs.
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    entries: HashMap<PageKey, CacheEntry>,
}

impl PageCache {
    /// A cache holding at most `capacity` decoded records (0 disables
    /// caching entirely: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            entries: HashMap::new(),
        }
    }

    /// Looks up a frame, bumping its recency on a hit.
    pub fn get(&mut self, key: PageKey) -> Option<Arc<TrafficRecord>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_use = self.tick;
                self.hits += 1;
                ptm_obs::counter!("store.cache.hits").inc();
                Some(Arc::clone(&entry.record))
            }
            None => {
                self.misses += 1;
                ptm_obs::counter!("store.cache.misses").inc();
                None
            }
        }
    }

    /// Caches a freshly loaded frame, evicting the least-recently-used
    /// unpinned entry if over capacity.
    pub fn insert(&mut self, key: PageKey, record: Arc<TrafficRecord>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        self.entries
            .entry(key)
            .and_modify(|entry| entry.last_use = tick)
            .or_insert(CacheEntry {
                record,
                pins: 0,
                last_use: tick,
            });
        while self.entries.len() > self.capacity {
            // Never evict the entry being inserted: the caller is about to
            // use (and possibly pin) it.
            let victim = self
                .entries
                .iter()
                .filter(|(k, entry)| entry.pins == 0 && **k != key)
                .min_by_key(|(_, entry)| entry.last_use)
                .map(|(key, _)| *key);
            let Some(victim) = victim else {
                break; // everything pinned: admit over capacity
            };
            self.entries.remove(&victim);
            ptm_obs::counter!("store.cache.evictions").inc();
        }
        self.publish_entries();
    }

    /// Pins a resident entry, exempting it from eviction until unpinned.
    /// Pinning a non-resident key is a no-op.
    pub fn pin(&mut self, key: PageKey) {
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.pins += 1;
        }
    }

    /// Releases one pin on `key`.
    pub fn unpin(&mut self, key: PageKey) {
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.pins = entry.pins.saturating_sub(1);
        }
    }

    /// Drops every cached frame belonging to `segment` (used when
    /// compaction retires a segment, so stale keys do not linger).
    pub fn evict_segment(&mut self, segment: u64) {
        self.entries.retain(|(seg, _), _| *seg != segment);
        self.publish_entries();
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn publish_entries(&self) {
        if ptm_obs::metrics_enabled() {
            ptm_obs::gauge!("store.cache.entries").set(self.entries.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::params::BitmapSize;
    use ptm_core::record::PeriodId;
    use ptm_core::LocationId;

    fn record(period: u32) -> Arc<TrafficRecord> {
        Arc::new(TrafficRecord::new(
            LocationId::new(1),
            PeriodId::new(period),
            BitmapSize::new(64).expect("pow2"),
        ))
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut cache = PageCache::new(2);
        assert!(cache.get((0, 8)).is_none());
        cache.insert((0, 8), record(0));
        cache.insert((0, 90), record(1));
        assert!(cache.get((0, 8)).is_some(), "hit bumps recency");
        cache.insert((0, 200), record(2));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get((0, 90)).is_none(),
            "LRU entry (untouched since insert) was evicted"
        );
        assert!(cache.get((0, 8)).is_some());
        assert!(cache.get((0, 200)).is_some());
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let mut cache = PageCache::new(2);
        cache.insert((0, 8), record(0));
        cache.pin((0, 8));
        cache.insert((0, 90), record(1));
        cache.insert((0, 200), record(2));
        assert!(cache.get((0, 8)).is_some(), "pinned entry stays");
        cache.unpin((0, 8));
        cache.insert((1, 8), record(3));
        cache.insert((1, 90), record(4));
        assert!(
            cache.get((0, 8)).is_none(),
            "after unpin the entry is evictable again"
        );
    }

    #[test]
    fn all_pinned_admits_over_capacity() {
        let mut cache = PageCache::new(1);
        cache.insert((0, 8), record(0));
        cache.pin((0, 8));
        cache.insert((0, 90), record(1));
        cache.pin((0, 90));
        assert_eq!(cache.len(), 2, "pinned working set may exceed capacity");
    }

    #[test]
    fn segment_eviction_and_zero_capacity() {
        let mut cache = PageCache::new(4);
        cache.insert((0, 8), record(0));
        cache.insert((1, 8), record(1));
        cache.evict_segment(0);
        assert!(cache.get((0, 8)).is_none());
        assert!(cache.get((1, 8)).is_some());

        let mut disabled = PageCache::new(0);
        disabled.insert((0, 8), record(0));
        assert!(disabled.is_empty());
        assert!(disabled.get((0, 8)).is_none());
    }
}
