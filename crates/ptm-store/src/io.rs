//! Pluggable storage backends for the archive.
//!
//! [`Archive`](crate::Archive) writes through a boxed [`StorageIo`] rather
//! than a raw [`File`], so tests (and `ptm serve --faults`) can interpose
//! [`HookedIo`] — a backend that consults [`ptm_fault`] fault sites before
//! every write, flush, fsync, and truncate. With no plan configured the
//! archive talks to a plain [`FileIo`] and the hooks cost nothing.

use ptm_fault::{sites, FaultAction, FaultPlan, SiteHandle};
use std::fmt::Debug;
use std::fs::File;
use std::io::{self, Write};

/// The operations the archive needs from its backing storage.
///
/// This is [`Write`] plus the two durability calls a write-ahead log relies
/// on: fsync ([`StorageIo::sync`]) and truncate ([`StorageIo::set_len`], the
/// rollback primitive).
pub trait StorageIo: Write + Debug + Send {
    /// Forces written data to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// I/O failures.
    fn sync(&mut self) -> io::Result<()>;

    /// Truncates (or extends) the backing file to exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// I/O failures.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The production backend: a plain append-mode [`File`].
#[derive(Debug)]
pub struct FileIo {
    file: File,
}

impl FileIo {
    /// Wraps an already-opened file (the archive opens it in append mode,
    /// so writes land at EOF even after a [`StorageIo::set_len`] rollback).
    pub fn new(file: File) -> Self {
        Self { file }
    }
}

impl Write for FileIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl StorageIo for FileIo {
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// One [`SiteHandle`] per archive fault site.
#[derive(Debug, Clone, Default)]
pub struct StoreHooks {
    /// Fires on every backend `write` call.
    pub write: SiteHandle,
    /// Fires on every backend `flush` call.
    pub flush: SiteHandle,
    /// Fires on every backend `sync` (fsync) call.
    pub sync: SiteHandle,
    /// Fires on every backend `set_len` (rollback truncate) call.
    pub set_len: SiteHandle,
    /// Fires on every segment-store manifest commit (v2 store only).
    pub manifest: SiteHandle,
    /// Fires on every segment seal — the footer index frame + trailer
    /// written at rotation (v2 store only).
    pub seal: SiteHandle,
}

impl StoreHooks {
    /// Hooks that never fire (the production default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Resolves the `store.*` sites from a plan.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        Self {
            write: plan.site(sites::STORE_WRITE),
            flush: plan.site(sites::STORE_FLUSH),
            sync: plan.site(sites::STORE_SYNC),
            set_len: plan.site(sites::STORE_SET_LEN),
            manifest: plan.site(sites::STORE_MANIFEST),
            seal: plan.site(sites::STORE_SEAL),
        }
    }

    /// Whether any site is wired to an active plan.
    pub fn is_active(&self) -> bool {
        self.write.is_active()
            || self.flush.is_active()
            || self.sync.is_active()
            || self.set_len.is_active()
            || self.manifest.is_active()
            || self.seal.is_active()
    }
}

/// A [`StorageIo`] decorator that injects scheduled faults.
#[derive(Debug)]
pub struct HookedIo<B> {
    inner: B,
    hooks: StoreHooks,
}

impl<B: StorageIo> HookedIo<B> {
    /// Decorates `inner` with the given hooks.
    pub fn new(inner: B, hooks: StoreHooks) -> Self {
        Self { inner, hooks }
    }
}

fn injected() {
    ptm_obs::counter!("store.fault.injected").inc();
}

/// Applies a non-write fault action (flush/sync/set_len have no byte stream
/// to shorten or corrupt, so those actions degrade to plain errors).
fn apply_control(action: FaultAction, what: &str) -> io::Result<()> {
    injected();
    match action {
        FaultAction::Delay(pause) => {
            std::thread::sleep(pause);
            Ok(())
        }
        FaultAction::Error(kind) => Err(io::Error::new(kind, format!("injected {what} fault"))),
        FaultAction::Reset => Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected {what} reset"),
        )),
        // Blocking file I/O has no readiness model and the store must
        // propagate errors rather than abort, so the stream-oriented
        // (WouldBlock) and execution-site (Panic) actions degrade to
        // plain errors here too.
        FaultAction::Short(_)
        | FaultAction::Corrupt(_)
        | FaultAction::Truncate
        | FaultAction::WouldBlock
        | FaultAction::Panic => Err(io::Error::other(format!("injected {what} fault"))),
    }
}

/// Consults a non-stream fault site (manifest commit, segment seal) before
/// the guarded operation runs. `Delay` pauses and proceeds; every other
/// action fails the operation.
pub(crate) fn check_site(handle: &SiteHandle, what: &str) -> io::Result<()> {
    match handle.check() {
        None => Ok(()),
        Some(action) => apply_control(action, what),
    }
}

impl<B: StorageIo> Write for HookedIo<B> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(action) = self.hooks.write.check() else {
            return self.inner.write(buf);
        };
        injected();
        match action {
            FaultAction::Error(kind) => Err(io::Error::new(kind, "injected write fault")),
            FaultAction::Reset => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected write reset",
            )),
            // Claims success, delivers nothing: the bytes evaporate.
            FaultAction::Truncate => Ok(buf.len()),
            FaultAction::Delay(pause) => {
                std::thread::sleep(pause);
                self.inner.write(buf)
            }
            FaultAction::Short(limit) => self.inner.write(&buf[..limit.min(buf.len())]),
            FaultAction::Corrupt(mask) => {
                let twisted: Vec<u8> = buf.iter().map(|byte| byte ^ mask).collect();
                self.inner.write(&twisted)
            }
            // No readiness model on blocking file writes: degrade to a
            // plain error (same policy as apply_control).
            FaultAction::WouldBlock | FaultAction::Panic => {
                Err(io::Error::other("injected write fault"))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(action) = self.hooks.flush.check() {
            apply_control(action, "flush")?;
        }
        self.inner.flush()
    }
}

impl<B: StorageIo> StorageIo for HookedIo<B> {
    fn sync(&mut self) -> io::Result<()> {
        if let Some(action) = self.hooks.sync.check() {
            apply_control(action, "fsync")?;
        }
        self.inner.sync()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if let Some(action) = self.hooks.set_len.check() {
            apply_control(action, "set_len")?;
        }
        self.inner.set_len(len)
    }
}
