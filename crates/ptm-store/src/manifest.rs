//! The CRC-checked manifest naming the live segment set.
//!
//! One `MANIFEST` file per store directory:
//!
//! ```text
//! "PTMM" (4) | version u16 = 2 | reserved u16
//! u64 next segment id
//! u32 segment count
//! per segment: u64 id | u8 sealed | u64 committed record count
//!              u64 supersession rank
//! u32 crc32 of everything above
//! ```
//!
//! The **rank** orders segments by frame recency for the reopen lookup
//! rebuild. Rotation-sealed segments rank at their own id; a compacted
//! segment inherits its newest victim's rank, because its frames are
//! copies of data appended back then — a merged segment must never
//! outrank a segment whose appends postdate the compaction's victims.
//!
//! Commits are atomic: the new manifest is written to a sibling temp file,
//! fsynced, then renamed over `MANIFEST`. A crash (or injected
//! `store.manifest` fault) anywhere before the rename leaves the previous
//! manifest untouched — which is what makes segment rotation and
//! compaction crash-safe: the old segment set stays live until the single
//! rename publishes the new one.

use crate::codec::StoreError;
use crate::crc32::crc32;
use crate::io::check_site;
use ptm_fault::SiteHandle;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"PTMM";
const VERSION: u16 = 2;

/// The manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// The temp file a commit stages into before the atomic rename.
pub const MANIFEST_TEMP: &str = "MANIFEST.tmp";

/// One live segment, as recorded by the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// The segment's id (also its file name, `seg-<id>.ptms`).
    pub id: u64,
    /// Whether the segment is sealed (footer index + trailer present).
    /// At most one unsealed (active) segment exists at a time.
    pub sealed: bool,
    /// Committed records at the last manifest commit. Exact for sealed
    /// segments; a floor for the active one (appends since the last
    /// rotation are recovered by scanning).
    pub records: u64,
    /// Supersession rank: the reopen lookup rebuild resolves duplicate
    /// keys by ascending rank (active segment last), so higher-ranked
    /// frames win. Equal to `id` for rotation-sealed segments; a
    /// compacted segment inherits the maximum rank of its victims, which
    /// keeps it *below* every segment whose appends postdate the merge.
    pub rank: u64,
}

/// The live segment set plus the id allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Next id to hand out when a segment is created.
    pub next_segment_id: u64,
    /// Live segments, ascending by id.
    pub segments: Vec<SegmentMeta>,
}

fn le_u16(bytes: &[u8]) -> u16 {
    let mut raw = [0u8; 2];
    raw.copy_from_slice(&bytes[..2]);
    u16::from_le_bytes(raw)
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(raw)
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(raw)
}

impl Manifest {
    /// The segment entry for `id`, if live.
    pub fn segment(&self, id: u64) -> Option<&SegmentMeta> {
        self.segments.iter().find(|s| s.id == id)
    }

    /// Serializes the manifest, CRC included.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.segments.len() * 25);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.next_segment_id.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for segment in &self.segments {
            out.extend_from_slice(&segment.id.to_le_bytes());
            out.push(u8::from(segment.sealed));
            out.extend_from_slice(&segment.records.to_le_bytes());
            out.extend_from_slice(&segment.rank.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes and CRC-checks a manifest file's bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadHeader`] on wrong magic/version,
    /// [`StoreError::CorruptFrame`] on a CRC mismatch,
    /// [`StoreError::MalformedRecord`] on truncation or invariant breaks.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 24 {
            return Err(StoreError::MalformedRecord {
                reason: format!("manifest is {} bytes", bytes.len()),
            });
        }
        if bytes[0..4] != MAGIC || le_u16(&bytes[4..6]) != VERSION {
            return Err(StoreError::BadHeader);
        }
        let body = &bytes[..bytes.len() - 4];
        let expected_crc = le_u32(&bytes[bytes.len() - 4..]);
        if crc32(body) != expected_crc {
            return Err(StoreError::CorruptFrame { offset: 0 });
        }
        let next_segment_id = le_u64(&body[8..16]);
        let count = le_u32(&body[16..20]) as usize;
        let entries = &body[20..];
        if entries.len() != count * 25 {
            return Err(StoreError::MalformedRecord {
                reason: format!(
                    "manifest claims {count} segments but carries {} entry bytes",
                    entries.len()
                ),
            });
        }
        let mut segments = Vec::with_capacity(count);
        for chunk in entries.chunks_exact(25) {
            segments.push(SegmentMeta {
                id: le_u64(&chunk[0..8]),
                sealed: chunk[8] != 0,
                records: le_u64(&chunk[9..17]),
                rank: le_u64(&chunk[17..25]),
            });
        }
        let ids_ascend = segments.windows(2).all(|w| w[0].id < w[1].id);
        let ids_allocated = segments.iter().all(|s| s.id < next_segment_id);
        if !ids_ascend || !ids_allocated {
            return Err(StoreError::MalformedRecord {
                reason: "manifest segment ids out of order or unallocated".into(),
            });
        }
        let mut ranks: Vec<u64> = segments.iter().map(|s| s.rank).collect();
        ranks.sort_unstable();
        let ranks_unique = ranks.windows(2).all(|w| w[0] < w[1]);
        let ranks_allocated = ranks.iter().all(|r| *r < next_segment_id);
        if !ranks_unique || !ranks_allocated {
            return Err(StoreError::MalformedRecord {
                reason: "manifest segment ranks duplicated or unallocated".into(),
            });
        }
        Ok(Self {
            next_segment_id,
            segments,
        })
    }

    /// Loads the manifest from `dir`, or `None` when the store has never
    /// committed one.
    ///
    /// # Errors
    ///
    /// Decode failures ([`Manifest::decode`]) and I/O failures.
    pub fn load(dir: &Path) -> Result<Option<Self>, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(Self::decode(&bytes)?)),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(err) => Err(err.into()),
        }
    }

    /// Atomically publishes this manifest into `dir` (temp file + fsync +
    /// rename), consulting the `store.manifest` fault site first.
    ///
    /// # Errors
    ///
    /// Injected `store.manifest` faults and real I/O failures. On error the
    /// previously committed manifest is untouched; a leftover temp file is
    /// removed best-effort.
    pub fn commit(&self, dir: &Path, site: &SiteHandle) -> Result<(), StoreError> {
        let temp = dir.join(MANIFEST_TEMP);
        let publish = || -> std::io::Result<()> {
            check_site(site, "manifest commit")?;
            let mut file = File::create(&temp)?;
            file.write_all(&self.encode())?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&temp, dir.join(MANIFEST_FILE))?;
            // Durability of the rename itself: fsync the directory (best
            // effort — some filesystems refuse directory handles).
            if let Ok(dir_handle) = File::open(dir) {
                let _ = dir_handle.sync_all();
            }
            Ok(())
        };
        publish().map_err(|err| {
            let _ = std::fs::remove_file(&temp);
            err.into()
        })
    }

    /// Path of the manifest inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_fault::{sites, FaultAction, FaultPlan, Rule};

    fn sample() -> Manifest {
        Manifest {
            next_segment_id: 3,
            segments: vec![
                SegmentMeta {
                    id: 0,
                    sealed: true,
                    records: 120,
                    rank: 0,
                },
                SegmentMeta {
                    id: 2,
                    sealed: false,
                    records: 5,
                    rank: 2,
                },
            ],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ptm-manifest-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("mkdir");
        path
    }

    #[test]
    fn encode_decode_roundtrip() {
        let manifest = sample();
        let back = Manifest::decode(&manifest.encode()).expect("decode");
        assert_eq!(back, manifest);
        assert_eq!(back.segment(2).map(|s| s.records), Some(5));
        assert!(back.segment(1).is_none());
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let bytes = sample().encode();
        for at in [0usize, 7, 20, bytes.len() - 2] {
            let mut twisted = bytes.clone();
            twisted[at] ^= 0xFF;
            assert!(Manifest::decode(&twisted).is_err(), "flip at {at}");
        }
        for cut in [0usize, 10, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unsorted_ids_rejected() {
        let mut manifest = sample();
        manifest.segments.reverse();
        assert!(Manifest::decode(&manifest.encode()).is_err());
    }

    #[test]
    fn duplicate_or_unallocated_ranks_rejected() {
        let mut manifest = sample();
        manifest.segments[0].rank = 2;
        assert!(
            Manifest::decode(&manifest.encode()).is_err(),
            "two segments must never share a supersession rank"
        );
        manifest.segments[0].rank = 7;
        assert!(
            Manifest::decode(&manifest.encode()).is_err(),
            "ranks come from the id allocator and must stay below it"
        );
    }

    #[test]
    fn commit_then_load() {
        let dir = temp_dir("commit");
        assert!(Manifest::load(&dir).expect("empty load").is_none());
        let manifest = sample();
        manifest
            .commit(&dir, &SiteHandle::disabled())
            .expect("commit");
        let loaded = Manifest::load(&dir).expect("load").expect("present");
        assert_eq!(loaded, manifest);
        assert!(!dir.join(MANIFEST_TEMP).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_fault_preserves_previous_manifest() {
        let dir = temp_dir("fault");
        let old = Manifest {
            next_segment_id: 1,
            segments: vec![SegmentMeta {
                id: 0,
                sealed: false,
                records: 0,
                rank: 0,
            }],
        };
        old.commit(&dir, &SiteHandle::disabled()).expect("seed");

        let plan = FaultPlan::builder(5)
            .rule(
                sites::STORE_MANIFEST,
                Rule::nth(1, FaultAction::Error(std::io::ErrorKind::Other)),
            )
            .build()
            .expect("plan");
        let site = plan.site(sites::STORE_MANIFEST);
        let new = sample();
        assert!(new.commit(&dir, &site).is_err());
        let loaded = Manifest::load(&dir).expect("load").expect("present");
        assert_eq!(loaded, old, "failed commit must not disturb the manifest");
        assert!(!dir.join(MANIFEST_TEMP).exists());

        // The schedule fired once; the retry goes through.
        new.commit(&dir, &site).expect("retry");
        assert_eq!(Manifest::load(&dir).expect("load").expect("some"), new);
        std::fs::remove_dir_all(&dir).ok();
    }
}
