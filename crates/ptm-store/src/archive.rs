//! The append-only record archive.
//!
//! File layout:
//!
//! ```text
//! header:  "PTMA" (4) | version u16 = 1 | reserved u16
//! frame:   payload length u32 | crc32(payload) u32 | payload bytes
//! ```
//!
//! Recovery semantics distinguish two failure shapes:
//!
//! * a **torn tail** — the process died mid-append; the final frame is
//!   incomplete. Recovery keeps everything before it and reports the number
//!   of truncated bytes.
//! * **mid-file corruption** — a checksum fails with complete frames after
//!   it; that is media damage, surfaced as [`StoreError::CorruptFrame`]
//!   rather than silently dropped.

use crate::codec::{decode_record, encode_record, StoreError};
use crate::crc32::crc32;
use ptm_core::record::TrafficRecord;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"PTMA";
const VERSION: u16 = 1;
/// Upper bound on a single frame payload (largest sane record is a 2^26-bit
/// bitmap = 8 MiB).
const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;

/// An open archive, ready for appends.
#[derive(Debug)]
pub struct Archive {
    path: PathBuf,
    writer: BufWriter<File>,
}

/// The result of opening an existing archive file.
#[derive(Debug)]
pub struct RecoveredArchive {
    /// The archive, positioned for further appends.
    pub archive: Archive,
    /// Records recovered from intact frames.
    pub records: Vec<TrafficRecord>,
    /// Bytes discarded from a torn final frame (0 for a clean shutdown).
    pub torn_bytes: u64,
}

impl Archive {
    /// Creates a new, empty archive (truncating any existing file).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        file.write_all(&MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&0u16.to_le_bytes())?;
        file.flush()?;
        Ok(Self { path, writer: BufWriter::new(file) })
    }

    /// Opens an existing archive, validating every frame and recovering
    /// from a torn tail.
    ///
    /// # Errors
    ///
    /// * [`StoreError::BadHeader`] if the file is not a v1 archive;
    /// * [`StoreError::CorruptFrame`] on mid-file checksum failure;
    /// * I/O failures.
    pub fn open(path: impl AsRef<Path>) -> Result<RecoveredArchive, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);

        let mut header = [0u8; 8];
        reader.read_exact(&mut header).map_err(|_| StoreError::BadHeader)?;
        if header[0..4] != MAGIC
            || u16::from_le_bytes(header[4..6].try_into().expect("2 bytes")) != VERSION
        {
            return Err(StoreError::BadHeader);
        }

        let mut records = Vec::new();
        let mut offset = 8u64;
        let mut torn_bytes = 0u64;
        loop {
            let mut frame_header = [0u8; 8];
            match read_exact_or_eof(&mut reader, &mut frame_header)? {
                ReadOutcome::Eof => break,
                ReadOutcome::Partial(n) => {
                    torn_bytes = file_len - offset;
                    debug_assert!(n < 8);
                    break;
                }
                ReadOutcome::Full => {}
            }
            let len = u32::from_le_bytes(frame_header[0..4].try_into().expect("4 bytes"));
            let expected_crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                // An absurd length is corruption of the header itself.
                return Err(StoreError::CorruptFrame { offset });
            }
            let mut payload = vec![0u8; len as usize];
            match read_exact_or_eof(&mut reader, &mut payload)? {
                ReadOutcome::Full => {}
                ReadOutcome::Eof | ReadOutcome::Partial(_) => {
                    torn_bytes = file_len - offset;
                    break;
                }
            }
            if crc32(&payload) != expected_crc {
                // Distinguish a torn tail (nothing after this frame) from
                // mid-file damage: if this frame reaches EOF exactly, treat
                // it as torn; otherwise it is corruption.
                let frame_end = offset + 8 + len as u64;
                if frame_end >= file_len {
                    torn_bytes = file_len - offset;
                    break;
                }
                return Err(StoreError::CorruptFrame { offset });
            }
            records.push(decode_record(&payload)?);
            offset += 8 + len as u64;
        }

        // Truncate any torn tail so future appends start on a clean frame
        // boundary.
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(offset)?;
        let mut file = OpenOptions::new().append(true).open(&path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(RecoveredArchive {
            archive: Self { path, writer: BufWriter::new(file) },
            records,
            torn_bytes,
        })
    }

    /// The file this archive writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a record frame.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append(&mut self, record: &TrafficRecord) -> Result<(), StoreError> {
        let payload = encode_record(record);
        self.writer.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        Ok(())
    }

    /// Appends every record in order, then flushes once.
    ///
    /// This is the batched ingest path: a daemon persisting an upload batch
    /// wants every frame buffered and a single flush before it acks, rather
    /// than a write-system-call storm per record. Returns the number of
    /// records appended. On error some prefix of the batch may already be
    /// buffered or on disk; recovery handles the resulting torn tail and the
    /// caller's retry is expected to be idempotent.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append_all<'a, I>(&mut self, records: I) -> Result<usize, StoreError>
    where
        I: IntoIterator<Item = &'a TrafficRecord>,
    {
        let mut appended = 0usize;
        for record in records {
            self.append(record)?;
            appended += 1;
        }
        self.flush()?;
        Ok(appended)
    }

    /// Flushes buffered frames to the OS.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs (durability point).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }
}

enum ReadOutcome {
    Full,
    Partial(usize),
    Eof,
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, StoreError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 { ReadOutcome::Eof } else { ReadOutcome::Partial(filled) });
        }
        filled += n;
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use ptm_core::record::PeriodId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ptm-store-test-{}-{name}", std::process::id()));
        path
    }

    fn sample_records(count: u32) -> Vec<TrafficRecord> {
        let scheme = EncodingScheme::new(9, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        (0..count)
            .map(|p| {
                let mut record = TrafficRecord::new(
                    LocationId::new(7),
                    PeriodId::new(p),
                    BitmapSize::new(1024).expect("pow2"),
                );
                for _ in 0..200 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect()
    }

    #[test]
    fn write_then_recover_roundtrip() {
        let path = temp_path("roundtrip");
        let records = sample_records(5);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
        }
        let recovered = Archive::open(&path).expect("open");
        assert_eq!(recovered.records, records);
        assert_eq!(recovered.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_recovery() {
        let path = temp_path("append-after");
        let records = sample_records(4);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records[..2] {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
        }
        {
            let mut recovered = Archive::open(&path).expect("open");
            assert_eq!(recovered.records.len(), 2);
            for record in &records[2..] {
                recovered.archive.append(record).expect("append");
            }
            recovered.archive.sync().expect("sync");
        }
        let all = Archive::open(&path).expect("reopen");
        assert_eq!(all.records, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_recovered() {
        let path = temp_path("torn");
        let records = sample_records(3);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
        }
        // Chop 10 bytes off the final frame (simulated crash mid-write).
        let len = std::fs::metadata(&path).expect("meta").len();
        let file = OpenOptions::new().write(true).open(&path).expect("open rw");
        file.set_len(len - 10).expect("truncate");
        drop(file);

        let recovered = Archive::open(&path).expect("open survives torn tail");
        assert_eq!(recovered.records, records[..2].to_vec());
        assert!(recovered.torn_bytes > 0);
        // The file is now clean: reopening reports no tear.
        drop(recovered);
        let clean = Archive::open(&path).expect("reopen");
        assert_eq!(clean.torn_bytes, 0);
        assert_eq!(clean.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_all_batches_with_single_flush() {
        let path = temp_path("append-all");
        let records = sample_records(6);
        {
            let mut archive = Archive::create(&path).expect("create");
            let appended = archive.append_all(&records[..4]).expect("batch");
            assert_eq!(appended, 4);
            // append_all flushed: a reader sees the batch without sync().
            let visible = Archive::open(&path).expect("open mid-write");
            assert_eq!(visible.records.len(), 4);
            let appended = archive.append_all(&records[4..]).expect("second batch");
            assert_eq!(appended, 2);
            assert_eq!(archive.append_all([]).expect("empty batch"), 0);
            archive.sync().expect("sync");
        }
        let recovered = Archive::open(&path).expect("open");
        assert_eq!(recovered.records, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_all_torn_final_frame_recovers_prefix() {
        let path = temp_path("append-all-torn");
        let records = sample_records(5);
        {
            let mut archive = Archive::create(&path).expect("create");
            archive.append_all(&records).expect("batch");
            archive.sync().expect("sync");
        }
        // Simulate a crash mid-way through the batch's final frame.
        let len = std::fs::metadata(&path).expect("meta").len();
        let file = OpenOptions::new().write(true).open(&path).expect("open rw");
        file.set_len(len - 7).expect("truncate");
        drop(file);

        let recovered = Archive::open(&path).expect("open survives torn batch");
        assert_eq!(recovered.records, records[..4].to_vec());
        assert!(recovered.torn_bytes > 0);

        // Re-appending the lost tail through append_all lands on a clean
        // frame boundary and makes the archive whole again.
        let mut archive = recovered.archive;
        assert_eq!(archive.append_all(&records[4..]).expect("repair"), 1);
        archive.sync().expect("sync");
        let whole = Archive::open(&path).expect("reopen");
        assert_eq!(whole.records, records);
        assert_eq!(whole.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_skip() {
        let path = temp_path("corrupt");
        let records = sample_records(3);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
        }
        // Flip a payload byte in the FIRST frame (complete frames follow).
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[30] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        match Archive::open(&path) {
            Err(StoreError::CorruptFrame { offset }) => assert_eq!(offset, 8),
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTANARCHIVE").expect("write");
        assert!(matches!(Archive::open(&path), Err(StoreError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_archive_roundtrip() {
        let path = temp_path("empty");
        {
            Archive::create(&path).expect("create");
        }
        let recovered = Archive::open(&path).expect("open");
        assert!(recovered.records.is_empty());
        assert_eq!(recovered.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn estimates_survive_persistence() {
        // Archive a whole campaign, reload it, and estimate from the
        // reloaded records: byte-identical behaviour.
        let path = temp_path("estimate");
        let scheme = EncodingScheme::new(11, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let commons: Vec<VehicleSecrets> =
            (0..300).map(|_| VehicleSecrets::generate(&mut rng, 3)).collect();
        let mut originals = Vec::new();
        {
            let mut archive = Archive::create(&path).expect("create");
            for p in 0..5u32 {
                let mut record = TrafficRecord::new(
                    LocationId::new(3),
                    PeriodId::new(p),
                    BitmapSize::new(4096).expect("pow2"),
                );
                for v in &commons {
                    record.encode(&scheme, v);
                }
                for _ in 0..1500 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                archive.append(&record).expect("append");
                originals.push(record);
            }
            archive.sync().expect("sync");
        }
        let recovered = Archive::open(&path).expect("open");
        let from_disk = ptm_core::point::PointEstimator::new()
            .estimate(&recovered.records)
            .expect("estimate");
        let from_memory = ptm_core::point::PointEstimator::new()
            .estimate(&originals)
            .expect("estimate");
        assert_eq!(from_disk, from_memory);
        std::fs::remove_file(&path).ok();
    }
}
