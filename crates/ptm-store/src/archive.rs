//! The append-only record archive.
//!
//! File layout:
//!
//! ```text
//! header:  "PTMA" (4) | version u16 = 1 | reserved u16
//! frame:   payload length u32 | crc32(payload) u32 | payload bytes
//! ```
//!
//! Recovery semantics distinguish two failure shapes:
//!
//! * a **torn tail** — the process died mid-append; the final frame is
//!   incomplete. Recovery keeps everything before it and reports the number
//!   of truncated bytes.
//! * **mid-file corruption** — a checksum fails with complete frames after
//!   it; that is media damage, surfaced as [`StoreError::CorruptFrame`]
//!   rather than silently dropped.
//!
//! Writes are transactional at the batch level: [`Archive::append`] only
//! buffers, and a commit (any of [`Archive::flush`], [`Archive::sync`], or
//! the end of [`Archive::append_all`]) either lands the whole pending buffer
//! or rolls the file back to the last committed byte, so
//! [`Archive::record_count`] never runs ahead of durable state. All file
//! traffic goes through a [`StorageIo`] backend, which is how the
//! [`ptm_fault`] hooks (disk-full, failed fsync, short writes) reach the
//! real code path.

use crate::codec::{decode_record, encode_record, StoreError};
use crate::crc32::crc32;
use crate::io::{FileIo, HookedIo, StorageIo, StoreHooks};
use ptm_core::record::TrafficRecord;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"PTMA";
const VERSION: u16 = 1;
const HEADER_LEN: u64 = 8;
/// Upper bound on a single frame payload (largest sane record is a 2^26-bit
/// bitmap = 8 MiB).
const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;

/// When a commit is considered durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Commits flush to the OS (data survives a process crash, not
    /// necessarily a power cut). The historical behaviour, and the default.
    #[default]
    Flush,
    /// Every commit also fsyncs; an fsync failure rolls the commit back, so
    /// an acked batch is on stable storage.
    Fsync,
}

/// An open archive, ready for appends.
#[derive(Debug)]
pub struct Archive {
    path: PathBuf,
    io: Box<dyn StorageIo>,
    hooks: StoreHooks,
    sync_policy: SyncPolicy,
    committed_len: u64,
    committed_records: usize,
    pending: Vec<u8>,
    pending_records: usize,
    wedged: bool,
}

/// The result of opening an existing archive file.
#[derive(Debug)]
pub struct RecoveredArchive {
    /// The archive, positioned for further appends.
    pub archive: Archive,
    /// Records recovered from intact frames.
    pub records: Vec<TrafficRecord>,
    /// Bytes discarded from a torn final frame (0 for a clean shutdown).
    pub torn_bytes: u64,
}

fn le_u16(bytes: &[u8]) -> u16 {
    let mut raw = [0u8; 2];
    raw.copy_from_slice(&bytes[..2]);
    u16::from_le_bytes(raw)
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(raw)
}

pub(crate) fn build_io(file: File, hooks: &StoreHooks) -> Box<dyn StorageIo> {
    if hooks.is_active() {
        Box::new(HookedIo::new(FileIo::new(file), hooks.clone()))
    } else {
        Box::new(FileIo::new(file))
    }
}

impl Archive {
    /// Creates a new, empty archive (truncating any existing file).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::create_opts(path, StoreHooks::disabled(), SyncPolicy::Flush)
    }

    /// [`Archive::create`] with explicit fault hooks and sync policy.
    ///
    /// The header write uses plain I/O (fault schedules start counting at
    /// the first record write, not at file creation).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn create_opts(
        path: impl AsRef<Path>,
        hooks: StoreHooks,
        sync_policy: SyncPolicy,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        {
            let mut file = File::create(&path)?;
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.write_all(&0u16.to_le_bytes())?;
            file.flush()?;
        }
        // Append mode: even after a rollback truncate, the next write lands
        // at the real EOF instead of leaving a hole at the old position.
        let file = OpenOptions::new().append(true).open(&path)?;
        let io = build_io(file, &hooks);
        Ok(Self {
            path,
            io,
            hooks,
            sync_policy,
            committed_len: HEADER_LEN,
            committed_records: 0,
            pending: Vec::new(),
            pending_records: 0,
            wedged: false,
        })
    }

    /// Opens an existing archive, validating every frame and recovering
    /// from a torn tail.
    ///
    /// # Errors
    ///
    /// * [`StoreError::BadHeader`] if the file is not a v1 archive;
    /// * [`StoreError::CorruptFrame`] on mid-file checksum failure;
    /// * I/O failures.
    pub fn open(path: impl AsRef<Path>) -> Result<RecoveredArchive, StoreError> {
        Self::open_opts(path, StoreHooks::disabled(), SyncPolicy::Flush)
    }

    /// [`Archive::open`] with explicit fault hooks and sync policy.
    ///
    /// Recovery itself (frame validation and the torn-tail truncate) uses
    /// plain I/O; the hooks govern subsequent appends.
    ///
    /// # Errors
    ///
    /// As [`Archive::open`].
    pub fn open_opts(
        path: impl AsRef<Path>,
        hooks: StoreHooks,
        sync_policy: SyncPolicy,
    ) -> Result<RecoveredArchive, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);

        let mut header = [0u8; 8];
        reader
            .read_exact(&mut header)
            .map_err(|_| StoreError::BadHeader)?;
        if header[0..4] != MAGIC || le_u16(&header[4..6]) != VERSION {
            return Err(StoreError::BadHeader);
        }

        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        let mut torn_bytes = 0u64;
        loop {
            let mut frame_header = [0u8; 8];
            match read_exact_or_eof(&mut reader, &mut frame_header)? {
                ReadOutcome::Eof => break,
                ReadOutcome::Partial(n) => {
                    torn_bytes = file_len - offset;
                    debug_assert!(n < 8);
                    break;
                }
                ReadOutcome::Full => {}
            }
            let len = le_u32(&frame_header[0..4]);
            let expected_crc = le_u32(&frame_header[4..8]);
            if len > MAX_PAYLOAD {
                // An absurd length is corruption of the header itself.
                return Err(StoreError::CorruptFrame { offset });
            }
            let mut payload = vec![0u8; len as usize];
            match read_exact_or_eof(&mut reader, &mut payload)? {
                ReadOutcome::Full => {}
                ReadOutcome::Eof | ReadOutcome::Partial(_) => {
                    torn_bytes = file_len - offset;
                    break;
                }
            }
            if crc32(&payload) != expected_crc {
                // Distinguish a torn tail (nothing after this frame) from
                // mid-file damage: if this frame reaches EOF exactly, treat
                // it as torn; otherwise it is corruption.
                let frame_end = offset + 8 + len as u64;
                if frame_end >= file_len {
                    torn_bytes = file_len - offset;
                    break;
                }
                return Err(StoreError::CorruptFrame { offset });
            }
            records.push(decode_record(&payload)?);
            offset += 8 + len as u64;
        }

        // Truncate any torn tail so future appends start on a clean frame
        // boundary.
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(offset)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        let io = build_io(file, &hooks);
        let committed_records = records.len();
        Ok(RecoveredArchive {
            archive: Self {
                path,
                io,
                hooks,
                sync_policy,
                committed_len: offset,
                committed_records,
                pending: Vec::new(),
                pending_records: 0,
                wedged: false,
            },
            records,
            torn_bytes,
        })
    }

    /// The file this archive writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records committed to the file (never counts buffered-but-unflushed
    /// appends, and never runs ahead of a failed commit).
    pub fn record_count(&self) -> usize {
        self.committed_records
    }

    /// Committed file length in bytes (header included).
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// The configured durability policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Changes the durability policy for subsequent commits.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.sync_policy = policy;
    }

    /// Whether a rollback failed, leaving the file with a possibly-garbage
    /// tail. A wedged archive refuses appends ([`StoreError::Wedged`]) until
    /// rebuilt via [`Archive::compact`] or reopened via [`Archive::open`].
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Buffers a record frame (no file I/O until the next commit:
    /// [`Archive::flush`], [`Archive::sync`], or [`Archive::append_all`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Wedged`] after a failed rollback.
    pub fn append(&mut self, record: &TrafficRecord) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        let payload = encode_record(record);
        self.pending.reserve(8 + payload.len());
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.pending_records += 1;
        Ok(())
    }

    /// Appends every record in order, then commits once.
    ///
    /// This is the batched ingest path: a daemon persisting an upload batch
    /// wants every frame buffered and a single flush before it acks. The
    /// commit is all-or-nothing over everything pending (this batch plus any
    /// earlier uncommitted [`Archive::append`]s): on failure the file is
    /// rolled back to the last committed byte and the in-memory record count
    /// is unchanged, so a retry starts from a clean frame boundary and an
    /// ack is never ahead of the file. Returns the number of records
    /// appended by this call.
    ///
    /// # Errors
    ///
    /// I/O failures (after rollback); [`StoreError::Wedged`] if a rollback
    /// failed now or previously.
    pub fn append_all<'a, I>(&mut self, records: I) -> Result<usize, StoreError>
    where
        I: IntoIterator<Item = &'a TrafficRecord>,
    {
        let mut appended = 0usize;
        for record in records {
            self.append(record)?;
            appended += 1;
        }
        self.commit()?;
        Ok(appended)
    }

    /// Commits pending frames to the OS (fsyncs too under
    /// [`SyncPolicy::Fsync`]).
    ///
    /// # Errors
    ///
    /// I/O failures (after rollback); [`StoreError::Wedged`].
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.commit()
    }

    /// Commits pending frames and fsyncs (explicit durability point,
    /// regardless of policy).
    ///
    /// # Errors
    ///
    /// I/O failures; [`StoreError::Wedged`]. An fsync failure *after* a
    /// successful commit does not roll back — the bytes are in the file,
    /// only their durability is unconfirmed.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.commit()?;
        if self.sync_policy == SyncPolicy::Fsync {
            // commit() already synced.
            return Ok(());
        }
        self.io.sync()?;
        Ok(())
    }

    /// Writes everything pending and advances the committed watermark, or
    /// rolls the file back to it.
    fn commit(&mut self) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        if self.pending.is_empty() {
            // Nothing buffered; still flush the backend so `flush()` keeps
            // its historical contract.
            self.io.flush()?;
            return Ok(());
        }
        let written = self
            .io
            .write_all(&self.pending)
            .and_then(|()| self.io.flush());
        if let Err(err) = written {
            self.rollback();
            return Err(err.into());
        }
        if self.sync_policy == SyncPolicy::Fsync {
            if let Err(err) = self.io.sync() {
                self.rollback();
                return Err(err.into());
            }
        }
        self.committed_len += self.pending.len() as u64;
        self.committed_records += self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Discards the pending buffer and truncates the file back to the last
    /// committed byte. A failed truncate wedges the archive: we can no
    /// longer prove the file ends on a frame boundary.
    fn rollback(&mut self) {
        let dropped_bytes = self.pending.len() as u64;
        let dropped_records = self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        ptm_obs::counter!("store.recovery.rollbacks").inc();
        ptm_obs::counter!("store.recovery.rolled_back_records").add(dropped_records as u64);
        match self.io.set_len(self.committed_len) {
            Ok(()) => {
                ptm_obs::counter!("store.recovery.rolled_back_bytes").add(dropped_bytes);
                ptm_obs::warn!(
                    "store.archive",
                    "commit failed; rolled back to last durable frame";
                    committed_len = self.committed_len,
                    dropped_records = dropped_records as u64
                );
            }
            Err(err) => {
                self.wedged = true;
                ptm_obs::counter!("store.recovery.wedged").inc();
                ptm_obs::gauge!("store.archive.wedged").set(1);
                ptm_obs::error!(
                    "store.archive",
                    "rollback truncate failed; archive wedged until compact/reopen";
                    error = format!("{err}"),
                    committed_len = self.committed_len
                );
            }
        }
    }

    /// Rewrites the archive to contain exactly `records` (atomically, via a
    /// sibling temp file and rename), dropping any wedged/garbage tail, and
    /// returns the number of bytes reclaimed.
    ///
    /// Compaction is the recovery path, so it deliberately uses plain
    /// (non-fault-injected) I/O and clears the wedged flag on success.
    ///
    /// # Errors
    ///
    /// I/O failures. The original file is untouched unless the rename
    /// succeeded.
    pub fn compact(&mut self, records: &[TrafficRecord]) -> Result<u64, StoreError> {
        if self.wedged {
            // The pending buffer already rolled back in memory; whatever
            // tail is on disk is untrusted and gets dropped by the rewrite.
            self.pending.clear();
            self.pending_records = 0;
        } else {
            self.commit()?;
        }
        let old_len = std::fs::metadata(&self.path)?.len();
        let tmp = self.path.with_extension("compact");
        let mut new_len = HEADER_LEN;
        {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            writer.write_all(&MAGIC)?;
            writer.write_all(&VERSION.to_le_bytes())?;
            writer.write_all(&0u16.to_le_bytes())?;
            for record in records {
                let payload = encode_record(record);
                writer.write_all(&(payload.len() as u32).to_le_bytes())?;
                writer.write_all(&crc32(&payload).to_le_bytes())?;
                writer.write_all(&payload)?;
                new_len += 8 + payload.len() as u64;
            }
            writer.flush()?;
            writer.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.io = build_io(file, &self.hooks);
        self.committed_len = new_len;
        self.committed_records = records.len();
        self.wedged = false;
        ptm_obs::gauge!("store.archive.wedged").set(0);
        ptm_obs::counter!("store.recovery.compactions").inc();
        Ok(old_len.saturating_sub(new_len))
    }
}

pub(crate) enum ReadOutcome {
    Full,
    Partial(usize),
    Eof,
}

pub(crate) fn read_exact_or_eof<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
) -> Result<ReadOutcome, StoreError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Partial(filled)
            });
        }
        filled += n;
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use ptm_core::record::PeriodId;
    use ptm_fault::{sites, FaultAction, FaultPlan, Rule};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::io::ErrorKind;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ptm-store-test-{}-{name}", std::process::id()));
        path
    }

    fn sample_records(count: u32) -> Vec<TrafficRecord> {
        let scheme = EncodingScheme::new(9, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        (0..count)
            .map(|p| {
                let mut record = TrafficRecord::new(
                    LocationId::new(7),
                    PeriodId::new(p),
                    BitmapSize::new(1024).expect("pow2"),
                );
                for _ in 0..200 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect()
    }

    #[test]
    fn write_then_recover_roundtrip() {
        let path = temp_path("roundtrip");
        let records = sample_records(5);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
            assert_eq!(archive.record_count(), 5);
        }
        let recovered = Archive::open(&path).expect("open");
        assert_eq!(recovered.records, records);
        assert_eq!(recovered.torn_bytes, 0);
        assert_eq!(recovered.archive.record_count(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_recovery() {
        let path = temp_path("append-after");
        let records = sample_records(4);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records[..2] {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
        }
        {
            let mut recovered = Archive::open(&path).expect("open");
            assert_eq!(recovered.records.len(), 2);
            for record in &records[2..] {
                recovered.archive.append(record).expect("append");
            }
            recovered.archive.sync().expect("sync");
        }
        let all = Archive::open(&path).expect("reopen");
        assert_eq!(all.records, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_recovered() {
        let path = temp_path("torn");
        let records = sample_records(3);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
        }
        // Chop 10 bytes off the final frame (simulated crash mid-write).
        let len = std::fs::metadata(&path).expect("meta").len();
        let file = OpenOptions::new().write(true).open(&path).expect("open rw");
        file.set_len(len - 10).expect("truncate");
        drop(file);

        let recovered = Archive::open(&path).expect("open survives torn tail");
        assert_eq!(recovered.records, records[..2].to_vec());
        assert!(recovered.torn_bytes > 0);
        // The file is now clean: reopening reports no tear.
        drop(recovered);
        let clean = Archive::open(&path).expect("reopen");
        assert_eq!(clean.torn_bytes, 0);
        assert_eq!(clean.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_all_batches_with_single_flush() {
        let path = temp_path("append-all");
        let records = sample_records(6);
        {
            let mut archive = Archive::create(&path).expect("create");
            let appended = archive.append_all(&records[..4]).expect("batch");
            assert_eq!(appended, 4);
            // append_all flushed: a reader sees the batch without sync().
            let visible = Archive::open(&path).expect("open mid-write");
            assert_eq!(visible.records.len(), 4);
            let appended = archive.append_all(&records[4..]).expect("second batch");
            assert_eq!(appended, 2);
            assert_eq!(archive.append_all([]).expect("empty batch"), 0);
            archive.sync().expect("sync");
        }
        let recovered = Archive::open(&path).expect("open");
        assert_eq!(recovered.records, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_all_torn_final_frame_recovers_prefix() {
        let path = temp_path("append-all-torn");
        let records = sample_records(5);
        {
            let mut archive = Archive::create(&path).expect("create");
            archive.append_all(&records).expect("batch");
            archive.sync().expect("sync");
        }
        // Simulate a crash mid-way through the batch's final frame.
        let len = std::fs::metadata(&path).expect("meta").len();
        let file = OpenOptions::new().write(true).open(&path).expect("open rw");
        file.set_len(len - 7).expect("truncate");
        drop(file);

        let recovered = Archive::open(&path).expect("open survives torn batch");
        assert_eq!(recovered.records, records[..4].to_vec());
        assert!(recovered.torn_bytes > 0);

        // Re-appending the lost tail through append_all lands on a clean
        // frame boundary and makes the archive whole again.
        let mut archive = recovered.archive;
        assert_eq!(archive.append_all(&records[4..]).expect("repair"), 1);
        archive.sync().expect("sync");
        let whole = Archive::open(&path).expect("reopen");
        assert_eq!(whole.records, records);
        assert_eq!(whole.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_skip() {
        let path = temp_path("corrupt");
        let records = sample_records(3);
        {
            let mut archive = Archive::create(&path).expect("create");
            for record in &records {
                archive.append(record).expect("append");
            }
            archive.sync().expect("sync");
        }
        // Flip a payload byte in the FIRST frame (complete frames follow).
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[30] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        match Archive::open(&path) {
            Err(StoreError::CorruptFrame { offset }) => assert_eq!(offset, 8),
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTANARCHIVE").expect("write");
        assert!(matches!(Archive::open(&path), Err(StoreError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_archive_roundtrip() {
        let path = temp_path("empty");
        {
            Archive::create(&path).expect("create");
        }
        let recovered = Archive::open(&path).expect("open");
        assert!(recovered.records.is_empty());
        assert_eq!(recovered.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn estimates_survive_persistence() {
        // Archive a whole campaign, reload it, and estimate from the
        // reloaded records: byte-identical behaviour.
        let path = temp_path("estimate");
        let scheme = EncodingScheme::new(11, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let commons: Vec<VehicleSecrets> = (0..300)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let mut originals = Vec::new();
        {
            let mut archive = Archive::create(&path).expect("create");
            for p in 0..5u32 {
                let mut record = TrafficRecord::new(
                    LocationId::new(3),
                    PeriodId::new(p),
                    BitmapSize::new(4096).expect("pow2"),
                );
                for v in &commons {
                    record.encode(&scheme, v);
                }
                for _ in 0..1500 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                archive.append(&record).expect("append");
                originals.push(record);
            }
            archive.sync().expect("sync");
        }
        let recovered = Archive::open(&path).expect("open");
        let from_disk = ptm_core::point::PointEstimator::new()
            .estimate(&recovered.records)
            .expect("estimate");
        let from_memory = ptm_core::point::PointEstimator::new()
            .estimate(&originals)
            .expect("estimate");
        assert_eq!(from_disk, from_memory);
        std::fs::remove_file(&path).ok();
    }

    // --- fault-injected hardening tests -----------------------------------

    fn hooks_for(plan: &FaultPlan) -> StoreHooks {
        StoreHooks::from_plan(plan)
    }

    #[test]
    fn mid_batch_write_error_rolls_back_memory_and_file() {
        // Regression for the append_all partial-failure bug: a short write
        // followed by ENOSPC used to leave the in-memory record count (and a
        // garbage partial frame) ahead of the recoverable file.
        let path = temp_path("midbatch-rollback");
        let plan = FaultPlan::builder(11)
            .rule(sites::STORE_WRITE, Rule::nth(1, FaultAction::Short(4)))
            .rule(
                sites::STORE_WRITE,
                Rule::nth(2, FaultAction::Error(ErrorKind::StorageFull)),
            )
            .build()
            .expect("plan");
        let records = sample_records(3);
        let mut archive =
            Archive::create_opts(&path, hooks_for(&plan), SyncPolicy::Flush).expect("create");

        let err = archive
            .append_all(&records)
            .expect_err("injected ENOSPC must surface");
        assert!(matches!(err, StoreError::Io(ref io) if io.kind() == ErrorKind::StorageFull));
        assert_eq!(
            archive.record_count(),
            0,
            "no record may be counted past the failure"
        );
        assert_eq!(
            archive.committed_len(),
            8,
            "file rolled back to the bare header"
        );
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            8,
            "the 4 short-written bytes must be truncated away"
        );
        assert!(!archive.is_wedged());

        // The retry starts from a clean boundary and fully lands.
        assert_eq!(archive.append_all(&records).expect("retry"), 3);
        assert_eq!(archive.record_count(), 3);
        drop(archive);
        let recovered = Archive::open(&path).expect("reopen");
        assert_eq!(recovered.records, records, "each record exactly once");
        assert_eq!(recovered.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_failure_rolls_back_under_fsync_policy() {
        let path = temp_path("fsync-rollback");
        let plan = FaultPlan::builder(12)
            .rule(
                sites::STORE_SYNC,
                Rule::nth(1, FaultAction::Error(ErrorKind::Other)),
            )
            .build()
            .expect("plan");
        let records = sample_records(2);
        let mut archive =
            Archive::create_opts(&path, hooks_for(&plan), SyncPolicy::Fsync).expect("create");
        assert_eq!(archive.sync_policy(), SyncPolicy::Fsync);

        archive
            .append_all(&records)
            .expect_err("failed fsync must fail the commit");
        assert_eq!(archive.record_count(), 0);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), 8);

        assert_eq!(archive.append_all(&records).expect("retry syncs"), 2);
        assert_eq!(archive.record_count(), 2);
        let recovered = Archive::open(&path).expect("reopen");
        assert_eq!(recovered.records, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_rollback_wedges_archive_and_compact_heals_it() {
        let path = temp_path("wedged");
        let plan = FaultPlan::builder(13)
            .rule(sites::STORE_WRITE, Rule::nth(1, FaultAction::Short(4)))
            .rule(
                sites::STORE_WRITE,
                Rule::nth(2, FaultAction::Error(ErrorKind::StorageFull)),
            )
            .rule(
                sites::STORE_SET_LEN,
                Rule::nth(1, FaultAction::Error(ErrorKind::Other)),
            )
            .build()
            .expect("plan");
        let records = sample_records(3);
        let mut archive =
            Archive::create_opts(&path, hooks_for(&plan), SyncPolicy::Flush).expect("create");

        archive.append_all(&records[..2]).expect_err("commit fails");
        assert!(
            archive.is_wedged(),
            "failed truncate must wedge the archive"
        );
        assert!(matches!(
            archive.append(&records[2]),
            Err(StoreError::Wedged)
        ));
        assert!(matches!(
            archive.append_all(&records),
            Err(StoreError::Wedged)
        ));
        assert_eq!(archive.record_count(), 0);

        // Compaction rebuilds the file from known-good records and clears
        // the wedge; the 4-byte garbage tail is gone.
        let reclaimed = archive.compact(&records[..1]).expect("compact");
        assert!(!archive.is_wedged());
        assert_eq!(archive.record_count(), 1);
        let _ = reclaimed; // may be 0: garbage tail was tiny
        assert_eq!(
            archive
                .append_all(&records[1..])
                .expect("appends work again"),
            2
        );
        let recovered = Archive::open(&path).expect("reopen");
        assert_eq!(recovered.records, records);
        assert_eq!(recovered.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_rewrites_and_reclaims_space() {
        let path = temp_path("compact");
        let records = sample_records(5);
        let mut archive = Archive::create(&path).expect("create");
        archive.append_all(&records).expect("batch");
        let full_len = std::fs::metadata(&path).expect("meta").len();

        let reclaimed = archive.compact(&records[..2]).expect("compact");
        assert!(reclaimed > 0);
        assert_eq!(archive.record_count(), 2);
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            full_len - reclaimed
        );
        // The temp file is gone and the survivor set reads back cleanly.
        assert!(!path.with_extension("compact").exists());
        archive
            .append_all(&records[2..3])
            .expect("post-compact append");
        drop(archive);
        let recovered = Archive::open(&path).expect("reopen");
        assert_eq!(recovered.records, records[..3].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_hooks_are_inert() {
        let hooks = StoreHooks::disabled();
        assert!(!hooks.is_active());
        let plan = FaultPlan::builder(1)
            .rule(sites::STORE_WRITE, Rule::nth(1, FaultAction::Reset))
            .build()
            .expect("plan");
        assert!(StoreHooks::from_plan(&plan).is_active());
    }
}
