//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Implemented from scratch like the rest of the substrates; validated
//! against the standard check value (`crc32("123456789") = 0xCBF43926`).

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 for multi-part frames.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a new checksum.
    pub fn new() -> Self {
        Self { state: !0u32 }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ byte as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"split into several pieces for the incremental api";
        for cut in 0..data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..cut]);
            crc.update(&data[cut..]);
            assert_eq!(crc.finalize(), crc32(data), "cut {cut}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0x5Au8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut corrupted = data.clone();
            corrupted[i] ^= 1;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
        }
    }
}
