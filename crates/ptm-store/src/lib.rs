//! Durable storage for traffic records.
//!
//! The paper's central server accumulates one record per RSU per period
//! indefinitely ("at a later time, other people … may gain access to the
//! records", Sec. II-B — i.e. records outlive the collection process). This
//! crate provides the archive that makes that real:
//!
//! * [`codec`] — a compact, versioned binary encoding of
//!   [`ptm_core::record::TrafficRecord`];
//! * [`crc32`] — a from-scratch CRC-32 (IEEE) for frame integrity;
//! * [`archive`] — an append-only log file with per-frame checksums,
//!   streaming reads, and crash-tolerant recovery (a torn final frame is
//!   detected and ignored; mid-file corruption is reported, not silently
//!   skipped).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod codec;
pub mod crc32;

pub use archive::{Archive, RecoveredArchive};
pub use codec::StoreError;
