//! Durable storage for traffic records.
//!
//! The paper's central server accumulates one record per RSU per period
//! indefinitely ("at a later time, other people … may gain access to the
//! records", Sec. II-B — i.e. records outlive the collection process). This
//! crate provides the archive that makes that real:
//!
//! * [`codec`] — a compact, versioned binary encoding of
//!   [`ptm_core::record::TrafficRecord`];
//! * [`crc32`] — a from-scratch CRC-32 (IEEE) for frame integrity;
//! * [`archive`] — an append-only log file with per-frame checksums,
//!   streaming reads, and crash-tolerant recovery (a torn final frame is
//!   detected and ignored; mid-file corruption is reported, not silently
//!   skipped). Commits are transactional: a failed append rolls the file
//!   back to the last good frame, so an acked batch is never ahead of
//!   durable state;
//! * [`io`] — the pluggable [`io::StorageIo`] backend the archive writes
//!   through, with a fault-injecting decorator ([`io::HookedIo`]) wired to
//!   [`ptm_fault`] for chaos testing (see `docs/FAULTS.md`).
//!
//! Storage engine v2 — the segmented archive (`docs/STORAGE.md`) — layers
//! on top of the same codec and fault boundary:
//!
//! * [`segment`] — the [`segment::SegmentStore`]: writes rotate through
//!   size-bounded segment files, sealed segments carry a footer
//!   [`index::SegmentIndex`], and `open()` reads manifest + indexes instead
//!   of replaying every record;
//! * [`manifest`] — the CRC-checked [`manifest::Manifest`] naming the live
//!   segment set, committed atomically (temp file + rename);
//! * [`index`] — per-segment `location → period → frame offset` maps;
//! * [`cache`] — the fixed-capacity [`cache::PageCache`] historical reads
//!   go through (pin/unpin, deterministic LRU, hit/miss metrics);
//! * [`compact`] — crash-safe background compaction: small or superseded
//!   segments merge into one, published by a single manifest swap.
//!
//! The v1 [`Archive`] remains fully supported; [
//! `segment::SegmentStore::open_or_migrate`] upgrades a v1 file into a
//! segment directory in one shot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code must propagate errors, not abort: unwrap/expect are
// test-only conveniences (enforced by `cargo clippy -p ptm-store
// -- -D warnings` in scripts/ci.sh).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod archive;
pub mod cache;
pub mod codec;
pub mod compact;
pub mod crc32;
pub mod index;
pub mod io;
pub mod manifest;
pub mod segment;

pub use archive::{Archive, RecoveredArchive, SyncPolicy};
pub use cache::PageCache;
pub use codec::StoreError;
pub use compact::CompactionReport;
pub use index::SegmentIndex;
pub use io::{StorageIo, StoreHooks};
pub use manifest::Manifest;
pub use segment::{OpenedStore, SegmentStore, StoreOptions};
