//! Durable storage for traffic records.
//!
//! The paper's central server accumulates one record per RSU per period
//! indefinitely ("at a later time, other people … may gain access to the
//! records", Sec. II-B — i.e. records outlive the collection process). This
//! crate provides the archive that makes that real:
//!
//! * [`codec`] — a compact, versioned binary encoding of
//!   [`ptm_core::record::TrafficRecord`];
//! * [`crc32`] — a from-scratch CRC-32 (IEEE) for frame integrity;
//! * [`archive`] — an append-only log file with per-frame checksums,
//!   streaming reads, and crash-tolerant recovery (a torn final frame is
//!   detected and ignored; mid-file corruption is reported, not silently
//!   skipped). Commits are transactional: a failed append rolls the file
//!   back to the last good frame, so an acked batch is never ahead of
//!   durable state;
//! * [`io`] — the pluggable [`io::StorageIo`] backend the archive writes
//!   through, with a fault-injecting decorator ([`io::HookedIo`]) wired to
//!   [`ptm_fault`] for chaos testing (see `docs/FAULTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code must propagate errors, not abort: unwrap/expect are
// test-only conveniences (enforced by `cargo clippy -p ptm-store
// -- -D warnings` in scripts/ci.sh).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod archive;
pub mod codec;
pub mod crc32;
pub mod io;

pub use archive::{Archive, RecoveredArchive, SyncPolicy};
pub use codec::StoreError;
pub use io::{StorageIo, StoreHooks};
