//! The segmented archive (storage engine v2).
//!
//! A store is a **directory**: a CRC-checked [`Manifest`] naming the live
//! segment set, plus one `seg-<id>.ptms` file per segment. Writes go to the
//! single *active* segment (v1-style transactional commits through the
//! [`StorageIo`] fault boundary) and rotate to a fresh segment once the
//! active one reaches `rotate_bytes`. Rotation *seals* the outgoing
//! segment: a footer [`SegmentIndex`] frame — its length word carries the
//! high bit so a sequential scanner recognizes it — followed by a 12-byte
//! trailer (`index frame offset u64 | "PTMF"`).
//!
//! ```text
//! segment: "PTMS" (4) | version u16 = 2 | reserved u16
//!          record frames:  len u32 | crc32 u32 | payload          (as v1)
//!          sealed only:    (len | 0x8000_0000) u32 | crc32 u32 | index
//!                          index frame offset u64 | "PTMF"
//! ```
//!
//! `open()` therefore reads **manifest + footers only** — O(index), not
//! O(records): sealed segments load their index from the trailer without
//! touching record payloads, and only the active segment is scanned
//! (key-peek, no bitmap decode) with v1 torn-tail recovery. Historical
//! reads go through a pinned-LRU [`PageCache`] instead of full memory
//! residency. Background merging lives in [`crate::compact`].

use crate::archive::{build_io, read_exact_or_eof, Archive, ReadOutcome};
use crate::cache::PageCache;
use crate::codec::{decode_record, encode_record, peek_key, StoreError};
use crate::crc32::crc32;
use crate::index::SegmentIndex;
use crate::io::{check_site, StorageIo, StoreHooks};
use crate::manifest::{Manifest, SegmentMeta, MANIFEST_TEMP};
use crate::SyncPolicy;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_core::LocationId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: [u8; 4] = *b"PTMS";
const VERSION: u16 = 2;
pub(crate) const HEADER_LEN: u64 = 8;
/// High bit of a frame's length word marks the footer index frame.
const INDEX_FLAG: u32 = 0x8000_0000;
const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;
const TRAILER_MAGIC: [u8; 4] = *b"PTMF";
const TRAILER_LEN: u64 = 12;
/// Replay progress cadence: one structured event per this many records.
const REPLAY_PROGRESS_EVERY: u64 = 4096;

fn le_u16(bytes: &[u8]) -> u16 {
    let mut raw = [0u8; 2];
    raw.copy_from_slice(&bytes[..2]);
    u16::from_le_bytes(raw)
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(raw)
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(raw)
}

/// `seg-<id>.ptms`, zero-padded so lexicographic order is id order.
pub(crate) fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08}.ptms")
}

/// Inverse of [`segment_file_name`].
pub(crate) fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".ptms")?
        .parse()
        .ok()
}

/// Tuning knobs for a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Fault hooks threaded into the active segment's backend, the seal
    /// path, and manifest commits.
    pub hooks: StoreHooks,
    /// Durability policy for active-segment commits.
    pub sync_policy: SyncPolicy,
    /// The active segment rotates once its committed bytes reach this.
    pub rotate_bytes: u64,
    /// Decoded-frame page cache capacity (records, not bytes); 0 disables.
    pub cache_capacity: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            hooks: StoreHooks::disabled(),
            sync_policy: SyncPolicy::Flush,
            rotate_bytes: 8 * 1024 * 1024,
            cache_capacity: 256,
        }
    }
}

/// Where one live record's frame is, store-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FrameLoc {
    pub(crate) segment: u64,
    pub(crate) offset: u64,
    pub(crate) len: u32,
}

/// A sealed segment's in-memory face: its footer index and file totals.
#[derive(Debug)]
pub(crate) struct SealedSegment {
    pub(crate) path: PathBuf,
    pub(crate) index: SegmentIndex,
    /// Frames in the file (including superseded ones).
    pub(crate) records: u64,
    /// File length in bytes.
    pub(crate) bytes: u64,
    /// Supersession rank (see [`SegmentMeta::rank`]): the lookup rebuild
    /// resolves duplicate keys by ascending rank, not raw id, because a
    /// compacted segment's id exceeds segments holding *newer* frames.
    pub(crate) rank: u64,
}

/// The write head: one unsealed segment with v1-style buffered commits.
#[derive(Debug)]
pub(crate) struct ActiveSegment {
    pub(crate) id: u64,
    pub(crate) path: PathBuf,
    io: Box<dyn StorageIo>,
    pub(crate) committed_len: u64,
    pub(crate) committed_records: u64,
    pub(crate) index: SegmentIndex,
    pending: Vec<u8>,
    pending_entries: Vec<(LocationId, PeriodId, u64, u32)>,
    pub(crate) wedged: bool,
}

impl ActiveSegment {
    /// Creates a fresh segment file (header via plain I/O, appends through
    /// the hooks — fault schedules start at the first record write).
    fn create(dir: &Path, id: u64, hooks: &StoreHooks) -> Result<Self, StoreError> {
        let path = dir.join(segment_file_name(id));
        {
            let mut file = File::create(&path)?;
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.write_all(&0u16.to_le_bytes())?;
            file.flush()?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Self {
            id,
            path,
            io: build_io(file, hooks),
            committed_len: HEADER_LEN,
            committed_records: 0,
            index: SegmentIndex::new(),
            pending: Vec::new(),
            pending_entries: Vec::new(),
            wedged: false,
        })
    }

    /// Reattaches the write head to an existing segment file whose frames
    /// have already been scanned (and torn tail truncated).
    fn reopen(
        dir: &Path,
        id: u64,
        hooks: &StoreHooks,
        index: SegmentIndex,
        records: u64,
        committed_len: u64,
    ) -> Result<Self, StoreError> {
        let path = dir.join(segment_file_name(id));
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Self {
            id,
            path,
            io: build_io(file, hooks),
            committed_len,
            committed_records: records,
            index,
            pending: Vec::new(),
            pending_entries: Vec::new(),
            wedged: false,
        })
    }

    fn append(&mut self, record: &TrafficRecord) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        let payload = encode_record(record);
        let offset = self.committed_len + self.pending.len() as u64;
        self.pending.reserve(8 + payload.len());
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.pending_entries.push((
            record.location(),
            record.period(),
            offset,
            payload.len() as u32,
        ));
        Ok(())
    }

    /// Writes everything pending and returns the committed entries, or
    /// rolls the file back to the committed watermark (wedging on a failed
    /// truncate, exactly like the v1 archive).
    fn commit(
        &mut self,
        sync_policy: SyncPolicy,
    ) -> Result<Vec<(LocationId, PeriodId, u64, u32)>, StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        if self.pending.is_empty() {
            self.io.flush()?;
            return Ok(Vec::new());
        }
        let written = self
            .io
            .write_all(&self.pending)
            .and_then(|()| self.io.flush());
        if let Err(err) = written {
            self.rollback();
            return Err(err.into());
        }
        if sync_policy == SyncPolicy::Fsync {
            if let Err(err) = self.io.sync() {
                self.rollback();
                return Err(err.into());
            }
        }
        self.committed_len += self.pending.len() as u64;
        self.committed_records += self.pending_entries.len() as u64;
        self.pending.clear();
        let entries = std::mem::take(&mut self.pending_entries);
        for (location, period, offset, len) in &entries {
            self.index.insert(*location, *period, *offset, *len);
        }
        Ok(entries)
    }

    fn rollback(&mut self) {
        let dropped_bytes = self.pending.len() as u64;
        let dropped_records = self.pending_entries.len();
        self.pending.clear();
        self.pending_entries.clear();
        ptm_obs::counter!("store.recovery.rollbacks").inc();
        ptm_obs::counter!("store.recovery.rolled_back_records").add(dropped_records as u64);
        match self.io.set_len(self.committed_len) {
            Ok(()) => {
                ptm_obs::counter!("store.recovery.rolled_back_bytes").add(dropped_bytes);
                ptm_obs::warn!(
                    "store.archive",
                    "segment commit failed; rolled back to last durable frame";
                    segment = self.id,
                    committed_len = self.committed_len,
                    dropped_records = dropped_records as u64
                );
            }
            Err(err) => {
                self.wedged = true;
                ptm_obs::counter!("store.recovery.wedged").inc();
                ptm_obs::gauge!("store.archive.wedged").set(1);
                ptm_obs::error!(
                    "store.archive",
                    "segment rollback truncate failed; store wedged until reopen";
                    segment = self.id,
                    error = format!("{err}"),
                    committed_len = self.committed_len
                );
            }
        }
    }

    /// Appends the footer index frame + trailer and fsyncs, turning this
    /// segment into a sealed one. Consults the `store.seal` fault site; on
    /// failure the footer is truncated away so the segment stays active
    /// (wedging only if even that truncate fails).
    fn seal(&mut self, hooks: &StoreHooks) -> Result<(), StoreError> {
        debug_assert!(self.pending.is_empty(), "seal requires a committed segment");
        let payload = self.index.encode();
        let mut footer = Vec::with_capacity(8 + payload.len() + TRAILER_LEN as usize);
        footer.extend_from_slice(&((payload.len() as u32) | INDEX_FLAG).to_le_bytes());
        footer.extend_from_slice(&crc32(&payload).to_le_bytes());
        footer.extend_from_slice(&payload);
        footer.extend_from_slice(&self.committed_len.to_le_bytes());
        footer.extend_from_slice(&TRAILER_MAGIC);
        let sealed = check_site(&hooks.seal, "segment seal")
            .map_err(StoreError::from)
            .and_then(|()| {
                self.io.write_all(&footer)?;
                self.io.flush()?;
                self.io.sync()?;
                Ok(())
            });
        if let Err(err) = sealed {
            // Drop the partial footer; the segment keeps accepting appends.
            if let Err(trunc) = self.io.set_len(self.committed_len) {
                self.wedged = true;
                ptm_obs::counter!("store.recovery.wedged").inc();
                ptm_obs::gauge!("store.archive.wedged").set(1);
                ptm_obs::error!(
                    "store.archive",
                    "seal rollback truncate failed; store wedged until reopen";
                    segment = self.id,
                    error = format!("{trunc}")
                );
            }
            return Err(err);
        }
        self.committed_len += footer.len() as u64;
        Ok(())
    }

    /// Truncates a just-written footer back off, returning the segment to
    /// active duty — the undo of [`ActiveSegment::seal`] for a rotation
    /// that could not be published. Wedges on a failed truncate, exactly
    /// like the other rollback paths.
    fn unseal(&mut self, committed_len: u64) {
        match self.io.set_len(committed_len) {
            Ok(()) => self.committed_len = committed_len,
            Err(err) => {
                self.wedged = true;
                ptm_obs::counter!("store.recovery.wedged").inc();
                ptm_obs::gauge!("store.archive.wedged").set(1);
                ptm_obs::error!(
                    "store.archive",
                    "unseal truncate failed; store wedged until reopen";
                    segment = self.id,
                    error = format!("{err}")
                );
            }
        }
    }
}

/// What scanning a segment file found.
#[derive(Debug)]
pub(crate) enum ScanOutcome {
    /// A complete footer index frame: the segment is sealed.
    Sealed {
        index: SegmentIndex,
        records: u64,
        bytes: u64,
    },
    /// No footer: the segment is (still) active. Any torn tail has been
    /// truncated away.
    Active {
        index: SegmentIndex,
        records: u64,
        committed_len: u64,
        torn_bytes: u64,
    },
}

/// Sequentially validates a segment's frames (CRC per frame, key peek only
/// — bitmaps are not decoded), truncating a torn tail. Finding a complete
/// index frame proves the segment was sealed even if the trailer (or the
/// manifest update after it) never landed.
pub(crate) fn scan_segment(path: &Path, segment_id: u64) -> Result<ScanOutcome, StoreError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::new(file);

    let mut header = [0u8; 8];
    reader
        .read_exact(&mut header)
        .map_err(|_| StoreError::BadHeader)?;
    if header[0..4] != MAGIC || le_u16(&header[4..6]) != VERSION {
        return Err(StoreError::BadHeader);
    }

    let mut index = SegmentIndex::new();
    let mut records = 0u64;
    let mut offset = HEADER_LEN;
    let mut torn_bytes = 0u64;
    loop {
        let mut frame_header = [0u8; 8];
        match read_exact_or_eof(&mut reader, &mut frame_header)? {
            ReadOutcome::Eof => break,
            ReadOutcome::Partial(_) => {
                torn_bytes = file_len - offset;
                break;
            }
            ReadOutcome::Full => {}
        }
        let len_raw = le_u32(&frame_header[0..4]);
        let expected_crc = le_u32(&frame_header[4..8]);
        let is_index = len_raw & INDEX_FLAG != 0;
        let len = len_raw & !INDEX_FLAG;
        if len > MAX_PAYLOAD {
            return Err(StoreError::CorruptFrame { offset });
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_or_eof(&mut reader, &mut payload)? {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Partial(_) => {
                torn_bytes = file_len - offset;
                break;
            }
        }
        if crc32(&payload) != expected_crc {
            let frame_end = offset + 8 + len as u64;
            if frame_end >= file_len.saturating_sub(TRAILER_LEN) {
                // The final frame (a trailer may follow it): torn, not
                // mid-file damage.
                torn_bytes = file_len - offset;
                break;
            }
            return Err(StoreError::CorruptFrame { offset });
        }
        if is_index {
            // A complete, checksummed index frame seals the segment; its
            // contents supersede the scan (identical by construction).
            let index = SegmentIndex::decode(&payload)?;
            let records = index.len() as u64;
            return Ok(ScanOutcome::Sealed {
                index,
                records,
                bytes: file_len,
            });
        }
        let (location, period) = peek_key(&payload)?;
        index.insert(location, period, offset, len);
        records += 1;
        offset += 8 + len as u64;
        ptm_obs::counter!("store.replay.records").inc();
        if records.is_multiple_of(REPLAY_PROGRESS_EVERY) {
            ptm_obs::info!("store.replay", "segment scan progress";
                segment = segment_id, records = records, bytes = offset);
        }
    }
    if torn_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(offset)?;
        ptm_obs::counter!("store.replay.torn_bytes").add(torn_bytes);
    }
    Ok(ScanOutcome::Active {
        index,
        records,
        committed_len: offset,
        torn_bytes,
    })
}

/// Fast sealed open: trailer → index frame, no record bytes touched.
/// `None` means "no usable trailer" — the caller falls back to a scan.
fn load_sealed_index(path: &Path) -> Result<Option<(SegmentIndex, u64)>, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < HEADER_LEN + 8 + TRAILER_LEN {
        return Ok(None);
    }
    let mut trailer = [0u8; TRAILER_LEN as usize];
    file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
    file.read_exact(&mut trailer)?;
    if trailer[8..12] != TRAILER_MAGIC {
        return Ok(None);
    }
    let index_offset = le_u64(&trailer[0..8]);
    // checked_add: a corrupt trailer can carry an offset near u64::MAX,
    // and a wrapped sum here would pass validation and turn the scan
    // fallback into a hard open() failure.
    match index_offset.checked_add(8 + TRAILER_LEN) {
        Some(end) if index_offset >= HEADER_LEN && end <= file_len => {}
        _ => return Ok(None),
    }
    file.seek(SeekFrom::Start(index_offset))?;
    let mut frame_header = [0u8; 8];
    file.read_exact(&mut frame_header)?;
    let len_raw = le_u32(&frame_header[0..4]);
    if len_raw & INDEX_FLAG == 0 {
        return Ok(None);
    }
    let len = len_raw & !INDEX_FLAG;
    if len > MAX_PAYLOAD || index_offset + 8 + len as u64 + TRAILER_LEN != file_len {
        return Ok(None);
    }
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload)?;
    if crc32(&payload) != le_u32(&frame_header[4..8]) {
        return Ok(None);
    }
    let index = SegmentIndex::decode(&payload)?;
    let records = index.len() as u64;
    Ok(Some((index, records)))
}

/// An open [`SegmentStore`] plus what recovery found on the way in.
#[derive(Debug)]
pub struct OpenedStore {
    /// The store, positioned for appends and reads.
    pub store: SegmentStore,
    /// Bytes discarded from the active segment's torn tail (0 after a
    /// clean shutdown).
    pub torn_bytes: u64,
    /// Records replayed from a v1 archive by a one-shot migration (0 when
    /// the store was already segmented).
    pub migrated_records: u64,
}

/// The segmented archive. See the module docs for the on-disk format.
#[derive(Debug)]
pub struct SegmentStore {
    pub(crate) dir: PathBuf,
    pub(crate) opts: StoreOptions,
    pub(crate) manifest: Manifest,
    pub(crate) sealed: BTreeMap<u64, SealedSegment>,
    pub(crate) active: ActiveSegment,
    pub(crate) lookup: HashMap<(LocationId, PeriodId), FrameLoc>,
    pub(crate) location_set: BTreeSet<u64>,
    pub(crate) cache: PageCache,
    pub(crate) compactions: u64,
}

impl SegmentStore {
    /// Opens (or creates) a segment store at directory `dir`.
    ///
    /// Startup is O(index): sealed segments load their footer index via
    /// the trailer, only the active segment is scanned (with torn-tail
    /// truncation), orphan files from interrupted rotations or compactions
    /// are removed, and the manifest is re-committed if reconciliation
    /// changed it.
    ///
    /// # Errors
    ///
    /// Manifest/segment corruption and I/O failures.
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<OpenedStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let _ = std::fs::remove_file(dir.join(MANIFEST_TEMP));

        let mut manifest = Manifest::load(&dir)?.unwrap_or_default();
        let mut manifest_dirty = false;

        // Drop segment files the manifest does not own: leftovers of a
        // rotation or compaction that died before its manifest commit.
        // Nothing acked ever lives in them (appends begin only after the
        // owning manifest commit), so deletion is safe.
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = parse_segment_file_name(name) {
                if manifest.segment(id).is_none() {
                    ptm_obs::warn!("store.archive", "removing orphan segment file";
                        segment = id);
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }

        let mut sealed = BTreeMap::new();
        let mut active: Option<ActiveSegment> = None;
        let mut torn_bytes = 0u64;
        {
            let _s = ptm_obs::tspan!("store.index.load");
            for meta in manifest.segments.clone() {
                let path = dir.join(segment_file_name(meta.id));
                if meta.sealed {
                    let (index, records) = match load_sealed_index(&path)? {
                        Some(loaded) => loaded,
                        None => {
                            // Trailer unusable (e.g. media damage): rebuild
                            // the index the slow way.
                            match scan_segment(&path, meta.id)? {
                                ScanOutcome::Sealed { index, records, .. } => (index, records),
                                ScanOutcome::Active { index, records, .. } => (index, records),
                            }
                        }
                    };
                    let bytes = std::fs::metadata(&path)?.len();
                    sealed.insert(
                        meta.id,
                        SealedSegment {
                            path,
                            index,
                            records,
                            bytes,
                            rank: meta.rank,
                        },
                    );
                    continue;
                }
                // The (single) unsealed entry: scan it. Finding a footer
                // means the crash landed between seal and manifest commit.
                let _scan = ptm_obs::tspan!("store.replay.scan");
                match scan_segment(&path, meta.id)? {
                    ScanOutcome::Sealed {
                        index,
                        records,
                        bytes,
                    } => {
                        sealed.insert(
                            meta.id,
                            SealedSegment {
                                path,
                                index,
                                records,
                                bytes,
                                rank: meta.rank,
                            },
                        );
                        for slot in &mut manifest.segments {
                            if slot.id == meta.id {
                                slot.sealed = true;
                                slot.records = records;
                            }
                        }
                        manifest_dirty = true;
                    }
                    ScanOutcome::Active {
                        index,
                        records,
                        committed_len,
                        torn_bytes: torn,
                    } => {
                        torn_bytes += torn;
                        active = Some(ActiveSegment::reopen(
                            &dir,
                            meta.id,
                            &opts.hooks,
                            index,
                            records,
                            committed_len,
                        )?);
                    }
                }
            }
        }

        let active = match active {
            Some(active) => active,
            None => {
                let id = manifest.next_segment_id;
                let active = ActiveSegment::create(&dir, id, &opts.hooks)?;
                manifest.next_segment_id += 1;
                manifest.segments.push(SegmentMeta {
                    id,
                    sealed: false,
                    records: 0,
                    rank: id,
                });
                manifest_dirty = true;
                active
            }
        };
        if manifest_dirty {
            manifest.commit(&dir, &opts.hooks.manifest)?;
        }

        let mut store = Self {
            cache: PageCache::new(opts.cache_capacity),
            dir,
            opts,
            manifest,
            sealed,
            active,
            lookup: HashMap::new(),
            location_set: BTreeSet::new(),
            compactions: 0,
        };
        store.rebuild_lookup();
        ptm_obs::gauge!("store.archive.wedged").set(0);
        store.publish_gauges();
        Ok(OpenedStore {
            store,
            torn_bytes,
            migrated_records: 0,
        })
    }

    /// Opens the store at `path`, transparently migrating a v1 single-file
    /// archive into a segment directory first (one-shot: the v1 file is
    /// replayed once, ingested into sealed segments, and replaced by the
    /// directory, so later startups never replay it again).
    ///
    /// Crash-safe: the migration builds under `<path>.migrating` and the
    /// v1 file is deleted only after the full segment set (manifest
    /// included) is durable; the final rename is retried on reopen.
    ///
    /// # Errors
    ///
    /// v1 archive corruption, manifest/segment corruption, I/O failures.
    pub fn open_or_migrate(
        path: impl AsRef<Path>,
        opts: StoreOptions,
    ) -> Result<OpenedStore, StoreError> {
        let path = path.as_ref();
        let staging = migration_staging_path(path);
        if path.is_dir() {
            let _ = std::fs::remove_dir_all(&staging);
            return Self::open(path, opts);
        }
        if path.is_file() {
            let migrated = migrate_v1(path, &staging, &opts)?;
            let mut opened = Self::open(path, opts)?;
            opened.migrated_records = migrated;
            return Ok(opened);
        }
        // Path absent: either a fresh store, or a crash after the v1 file
        // was removed but before the staging directory was renamed.
        if staging.join(crate::manifest::MANIFEST_FILE).is_file() {
            std::fs::rename(&staging, path)?;
            ptm_obs::info!("store.archive", "completed interrupted v1 migration";
                path = path.display().to_string());
        } else {
            let _ = std::fs::remove_dir_all(&staging);
        }
        Self::open(path, opts)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live records (latest frame per `(location, period)`).
    pub fn record_count(&self) -> usize {
        self.lookup.len()
    }

    /// Locations with at least one live record.
    pub fn location_count(&self) -> usize {
        self.location_set.len()
    }

    /// Every location with a live record, ascending.
    pub fn locations(&self) -> Vec<LocationId> {
        self.location_set
            .iter()
            .map(|id| LocationId::new(*id))
            .collect()
    }

    /// Whether a live record exists for `(location, period)`.
    pub fn contains(&self, location: LocationId, period: PeriodId) -> bool {
        self.lookup.contains_key(&(location, period))
    }

    /// Live periods for `location`, ascending.
    pub fn periods_for_location(&self, location: LocationId) -> Vec<PeriodId> {
        let mut periods = BTreeSet::new();
        for segment in self.sealed.values() {
            for entry in segment.index.entries_for(location) {
                periods.insert(entry.period.get());
            }
        }
        for entry in self.active.index.entries_for(location) {
            periods.insert(entry.period.get());
        }
        periods.into_iter().map(PeriodId::new).collect()
    }

    /// Whether a failed rollback wedged the write head (appends refused
    /// until the store is reopened).
    pub fn is_wedged(&self) -> bool {
        self.active.wedged
    }

    /// Total live segments (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Sealed segments.
    pub fn sealed_count(&self) -> usize {
        self.sealed.len()
    }

    /// Committed bytes in the active segment.
    pub fn active_bytes(&self) -> u64 {
        self.active.committed_len
    }

    /// Lifetime page-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Lifetime page-cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Compactions completed by this store instance.
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// The configured durability policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.opts.sync_policy
    }

    /// Buffers a record (no file I/O until the next commit).
    ///
    /// # Errors
    ///
    /// [`StoreError::Wedged`] after a failed rollback.
    pub fn append(&mut self, record: &TrafficRecord) -> Result<(), StoreError> {
        self.active.append(record)
    }

    /// Appends every record in order, then commits once (and rotates the
    /// active segment if it crossed the size threshold). Returns how many
    /// records this call appended.
    ///
    /// # Errors
    ///
    /// I/O failures (after rollback); [`StoreError::Wedged`].
    pub fn append_all<'a, I>(&mut self, records: I) -> Result<usize, StoreError>
    where
        I: IntoIterator<Item = &'a TrafficRecord>,
    {
        let mut appended = 0usize;
        for record in records {
            self.append(record)?;
            appended += 1;
        }
        self.flush()?;
        Ok(appended)
    }

    /// Commits pending frames (fsyncs too under [`SyncPolicy::Fsync`]),
    /// then rotates if the active segment is full.
    ///
    /// # Errors
    ///
    /// I/O failures (after rollback); [`StoreError::Wedged`].
    pub fn flush(&mut self) -> Result<(), StoreError> {
        let committed = self.active.commit(self.opts.sync_policy)?;
        if !committed.is_empty() {
            let segment = self.active.id;
            for (location, period, offset, len) in committed {
                self.lookup.insert(
                    (location, period),
                    FrameLoc {
                        segment,
                        offset,
                        len,
                    },
                );
                self.location_set.insert(location.get());
            }
        }
        if self.active.committed_records > 0 && self.active.committed_len >= self.opts.rotate_bytes
        {
            self.rotate();
        }
        self.publish_gauges();
        Ok(())
    }

    /// Commits pending frames and fsyncs (explicit durability point).
    ///
    /// # Errors
    ///
    /// I/O failures; [`StoreError::Wedged`].
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.flush()?;
        if self.opts.sync_policy == SyncPolicy::Fsync {
            return Ok(());
        }
        self.active.io.sync()?;
        Ok(())
    }

    /// Commits, then seals the active segment (regardless of size) and
    /// starts a fresh one, leaving the whole store indexable — the next
    /// open is pure O(index). The clean-shutdown path.
    ///
    /// # Errors
    ///
    /// Commit failures. Seal/rotation failures are logged and deferred
    /// (the scan-based recovery covers an unsealed tail segment).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        if self.active.committed_records > 0 {
            self.rotate();
        }
        self.publish_gauges();
        Ok(())
    }

    /// Seals the active segment and swings the write head to a fresh one.
    /// Entirely best-effort: every failure mode either defers the rotation
    /// (the footer is truncated back off and the segment keeps accepting
    /// appends) or wedges the store, so a failed rotation never un-acks
    /// committed data.
    ///
    /// Ordering is load-bearing: the new segment file is created and the
    /// manifest naming it is committed *before* the write head swings.
    /// Acking appends into a segment the durable manifest does not own
    /// would hand them to `open()`'s orphan sweep on the next start.
    fn rotate(&mut self) {
        let _s = ptm_obs::tspan!("store.segment.rotate");
        let unsealed_len = self.active.committed_len;
        if let Err(err) = self.active.seal(&self.opts.hooks) {
            ptm_obs::counter!("store.segment.seal_failures").inc();
            ptm_obs::warn!("store.archive", "segment seal failed; rotation deferred";
                segment = self.active.id, error = err.to_string());
            return;
        }
        let new_id = self.manifest.next_segment_id;
        let new_active = match ActiveSegment::create(&self.dir, new_id, &self.opts.hooks) {
            Ok(active) => active,
            Err(err) => {
                ptm_obs::counter!("store.segment.rotation_deferrals").inc();
                ptm_obs::warn!("store.archive",
                    "segment create after seal failed; rotation deferred";
                    segment = new_id, error = err.to_string());
                let _ = std::fs::remove_file(self.dir.join(segment_file_name(new_id)));
                self.active.unseal(unsealed_len);
                return;
            }
        };
        let mut manifest = self.manifest.clone();
        let records = self.active.committed_records;
        for slot in &mut manifest.segments {
            if slot.id == self.active.id {
                slot.sealed = true;
                slot.records = records;
            }
        }
        manifest.next_segment_id = new_id + 1;
        manifest.segments.push(SegmentMeta {
            id: new_id,
            sealed: false,
            records: 0,
            rank: new_id,
        });
        if let Err(err) = manifest.commit(&self.dir, &self.opts.hooks.manifest) {
            // Unpublished: the new file is an orphan the next open would
            // sweep, so nothing may be acked into it. Unseal the old
            // segment and keep writing there; rotation retries on a later
            // flush.
            ptm_obs::counter!("store.segment.rotation_deferrals").inc();
            ptm_obs::warn!("store.archive",
                "manifest commit failed; rotation deferred";
                segment = self.active.id, error = err.to_string());
            drop(new_active);
            let _ = std::fs::remove_file(self.dir.join(segment_file_name(new_id)));
            self.active.unseal(unsealed_len);
            return;
        }
        let retired = std::mem::replace(&mut self.active, new_active);
        let rank = retired.id;
        self.sealed.insert(
            retired.id,
            SealedSegment {
                path: retired.path,
                index: retired.index,
                records,
                bytes: retired.committed_len,
                rank,
            },
        );
        self.manifest = manifest;
        ptm_obs::counter!("store.segment.rotations").inc();
        ptm_obs::info!("store.archive", "segment rotated";
            sealed_segment = retired.id, new_segment = new_id, records = records);
    }

    /// Reads the live record for `(location, period)` through the page
    /// cache, or `None` when the store has none.
    ///
    /// # Errors
    ///
    /// I/O failures and frame corruption on a cache miss.
    pub fn get(
        &mut self,
        location: LocationId,
        period: PeriodId,
    ) -> Result<Option<Arc<TrafficRecord>>, StoreError> {
        let _s = ptm_obs::tspan!("store.cache.lookup");
        let Some(loc) = self.lookup.get(&(location, period)).copied() else {
            return Ok(None);
        };
        let key = (loc.segment, loc.offset);
        if let Some(record) = self.cache.get(key) {
            return Ok(Some(record));
        }
        let record = Arc::new(self.read_frame(loc)?);
        self.cache.insert(key, Arc::clone(&record));
        Ok(Some(record))
    }

    /// Loads every live record for `location` (periods ascending) through
    /// the page cache, pinning the working set for the duration so
    /// interleaved reads cannot thrash it mid-iteration.
    ///
    /// # Errors
    ///
    /// I/O failures and frame corruption.
    pub fn records_for_location(
        &mut self,
        location: LocationId,
    ) -> Result<Vec<Arc<TrafficRecord>>, StoreError> {
        let periods = self.periods_for_location(location);
        let mut out = Vec::with_capacity(periods.len());
        let mut pinned = Vec::with_capacity(periods.len());
        let result = (|| {
            for period in periods {
                let Some(loc) = self.lookup.get(&(location, period)).copied() else {
                    continue;
                };
                let key = (loc.segment, loc.offset);
                let record = match self.cache.get(key) {
                    Some(record) => record,
                    None => {
                        let record = Arc::new(self.read_frame(loc)?);
                        self.cache.insert(key, Arc::clone(&record));
                        record
                    }
                };
                self.cache.pin(key);
                pinned.push(key);
                out.push(record);
            }
            Ok(())
        })();
        for key in pinned {
            self.cache.unpin(key);
        }
        result.map(|()| out)
    }

    /// One seek-and-read of a single frame; CRC-checked and decoded.
    pub(crate) fn read_frame(&self, loc: FrameLoc) -> Result<TrafficRecord, StoreError> {
        let payload = self.read_frame_payload(loc)?;
        decode_record(&payload)
    }

    /// The raw payload bytes of one frame (CRC-checked, not decoded).
    pub(crate) fn read_frame_payload(&self, loc: FrameLoc) -> Result<Vec<u8>, StoreError> {
        let path = if loc.segment == self.active.id {
            &self.active.path
        } else {
            match self.sealed.get(&loc.segment) {
                Some(segment) => &segment.path,
                None => {
                    return Err(StoreError::MalformedRecord {
                        reason: format!("lookup names unknown segment {}", loc.segment),
                    })
                }
            }
        };
        // ptm-analyze: allow(reactor-blocking): page-cache fills run on worker queries; the reactor edge is `conns.insert` (HashMap) aliasing cache `insert` methods
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(loc.offset))?;
        let mut frame_header = [0u8; 8];
        file.read_exact(&mut frame_header)?;
        if le_u32(&frame_header[0..4]) != loc.len {
            return Err(StoreError::CorruptFrame { offset: loc.offset });
        }
        let mut payload = vec![0u8; loc.len as usize];
        file.read_exact(&mut payload)?;
        if crc32(&payload) != le_u32(&frame_header[4..8]) {
            return Err(StoreError::CorruptFrame { offset: loc.offset });
        }
        Ok(payload)
    }

    /// Rebuilds the store-wide lookup from segment indexes, ascending
    /// *rank* with the active segment last — higher-ranked segments
    /// supersede earlier frames for the same key. Rank, not raw id: a
    /// compacted segment's id exceeds the id of the segment that was
    /// active during the merge, but its frames are older than anything
    /// appended there afterwards.
    fn rebuild_lookup(&mut self) {
        self.lookup.clear();
        self.location_set.clear();
        let mut by_rank: Vec<(&u64, &SealedSegment)> = self.sealed.iter().collect();
        by_rank.sort_by_key(|(id, segment)| (segment.rank, **id));
        for (id, segment) in by_rank {
            for (location, entry) in segment.index.iter() {
                self.lookup.insert(
                    (location, entry.period),
                    FrameLoc {
                        segment: *id,
                        offset: entry.offset,
                        len: entry.len,
                    },
                );
                self.location_set.insert(location.get());
            }
        }
        let active_id = self.active.id;
        for (location, entry) in self.active.index.iter() {
            self.lookup.insert(
                (location, entry.period),
                FrameLoc {
                    segment: active_id,
                    offset: entry.offset,
                    len: entry.len,
                },
            );
            self.location_set.insert(location.get());
        }
    }

    pub(crate) fn publish_gauges(&self) {
        if ptm_obs::metrics_enabled() {
            ptm_obs::gauge!("store.segments").set(self.segment_count() as i64);
            ptm_obs::gauge!("store.segments.sealed").set(self.sealed_count() as i64);
            ptm_obs::gauge!("store.segment.active_bytes").set(self.active.committed_len as i64);
        }
    }
}

/// `<path>.migrating`, the staging directory for a v1 migration.
fn migration_staging_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "archive".to_string());
    path.with_file_name(format!("{name}.migrating"))
}

/// Replays a v1 single-file archive into a sealed segment store staged at
/// `staging`, then atomically replaces the file with the directory.
/// Returns the number of migrated records.
fn migrate_v1(v1_path: &Path, staging: &Path, opts: &StoreOptions) -> Result<u64, StoreError> {
    let _s = ptm_obs::tspan!("store.migrate");
    ptm_obs::info!("store.replay", "migrating v1 archive to segments";
        path = v1_path.display().to_string());
    let recovered = Archive::open(v1_path)?;
    let total = recovered.records.len() as u64;
    let _ = std::fs::remove_dir_all(staging);
    {
        // Plain hooks: migration is a recovery path, and burning chaos
        // schedules on it would skew every fault plan that follows.
        let staged_opts = StoreOptions {
            hooks: StoreHooks::disabled(),
            ..opts.clone()
        };
        let mut staged = SegmentStore::open(staging, staged_opts)?.store;
        let mut migrated = 0u64;
        for record in &recovered.records {
            staged.append(record)?;
            migrated += 1;
            if migrated.is_multiple_of(512) {
                staged.flush()?;
            }
            ptm_obs::counter!("store.replay.records").inc();
            if migrated.is_multiple_of(REPLAY_PROGRESS_EVERY) {
                ptm_obs::info!("store.replay", "migration progress";
                    records = migrated, total = total);
            }
        }
        staged.checkpoint()?;
    }
    drop(recovered);
    std::fs::remove_file(v1_path)?;
    std::fs::rename(staging, v1_path)?;
    ptm_obs::counter!("store.migrate.records").add(total);
    ptm_obs::info!("store.replay", "v1 migration complete";
        records = total, path = v1_path.display().to_string());
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use ptm_fault::{sites, FaultAction, FaultPlan, Rule};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::io::ErrorKind;

    fn temp_dir(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ptm-segment-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_records(location: u64, count: u32) -> Vec<TrafficRecord> {
        let scheme = EncodingScheme::new(9, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(location);
        (0..count)
            .map(|p| {
                let mut record = TrafficRecord::new(
                    LocationId::new(location),
                    PeriodId::new(p),
                    BitmapSize::new(1024).expect("pow2"),
                );
                for _ in 0..60 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect()
    }

    fn small_rotate_opts(rotate_bytes: u64) -> StoreOptions {
        StoreOptions {
            rotate_bytes,
            ..StoreOptions::default()
        }
    }

    #[test]
    fn roundtrip_reads_through_cache() {
        let dir = temp_dir("roundtrip");
        let records = sample_records(7, 5);
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("open")
            .store;
        assert_eq!(store.append_all(&records).expect("batch"), 5);
        assert_eq!(store.record_count(), 5);
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        // Second pass hits the cache.
        let misses = store.cache_misses();
        for record in &records {
            store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
        }
        assert_eq!(store.cache_misses(), misses);
        assert!(store.cache_hits() >= 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_and_reopen_is_indexed() {
        let dir = temp_dir("rotate");
        let records = sample_records(3, 12);
        {
            let mut store = SegmentStore::open(&dir, small_rotate_opts(600))
                .expect("open")
                .store;
            for record in &records {
                store.append_all([record]).expect("append");
            }
            assert!(store.sealed_count() >= 2, "tiny threshold forces rotations");
            store.checkpoint().expect("checkpoint");
        }
        let opened = SegmentStore::open(&dir, small_rotate_opts(600)).expect("reopen");
        assert_eq!(opened.torn_bytes, 0);
        let mut store = opened.store;
        assert_eq!(store.record_count(), 12);
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        assert_eq!(
            store.periods_for_location(LocationId::new(3)).len(),
            12,
            "period listing spans every sealed segment"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_active_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let records = sample_records(5, 3);
        {
            let mut store = SegmentStore::open(&dir, StoreOptions::default())
                .expect("open")
                .store;
            store.append_all(&records).expect("batch");
            store.sync().expect("sync");
        }
        let seg_path = dir.join(segment_file_name(0));
        let len = std::fs::metadata(&seg_path).expect("meta").len();
        let file = OpenOptions::new()
            .write(true)
            .open(&seg_path)
            .expect("open rw");
        file.set_len(len - 10).expect("truncate");
        drop(file);

        let opened = SegmentStore::open(&dir, StoreOptions::default()).expect("reopen");
        assert!(opened.torn_bytes > 0);
        let mut store = opened.store;
        assert_eq!(store.record_count(), 2);
        // The lost record can be re-appended on a clean boundary.
        store.append_all(&records[2..]).expect("repair");
        let opened = SegmentStore::open(&dir, StoreOptions::default()).expect("clean");
        assert_eq!(opened.torn_bytes, 0);
        assert_eq!(opened.store.record_count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_on_exact_frame_boundary_is_clean() {
        let dir = temp_dir("boundary");
        let records = sample_records(5, 3);
        {
            let mut store = SegmentStore::open(&dir, StoreOptions::default())
                .expect("open")
                .store;
            store.append_all(&records).expect("batch");
        }
        // Chop exactly the last frame: the cut lands on a frame boundary,
        // so recovery sees a clean two-record segment (torn_bytes 0).
        let payload_len = encode_record(&records[2]).len() as u64;
        let seg_path = dir.join(segment_file_name(0));
        let len = std::fs::metadata(&seg_path).expect("meta").len();
        let file = OpenOptions::new()
            .write(true)
            .open(&seg_path)
            .expect("open rw");
        file.set_len(len - (8 + payload_len)).expect("truncate");
        drop(file);

        let opened = SegmentStore::open(&dir, StoreOptions::default()).expect("reopen");
        assert_eq!(opened.torn_bytes, 0);
        assert_eq!(opened.store.record_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_seal_and_manifest_commit_recovers_sealed() {
        let dir = temp_dir("seal-crash");
        let records = sample_records(2, 4);
        {
            let mut store = SegmentStore::open(&dir, StoreOptions::default())
                .expect("open")
                .store;
            store.append_all(&records).expect("batch");
            // Seal the active segment by hand, but "crash" before any
            // manifest update: the manifest still says unsealed.
            store
                .active
                .seal(&StoreHooks::disabled())
                .expect("manual seal");
        }
        let opened = SegmentStore::open(&dir, StoreOptions::default()).expect("reopen");
        let store = opened.store;
        assert_eq!(store.record_count(), 4);
        assert_eq!(
            store.sealed_count(),
            1,
            "scan must detect the footer and mark the segment sealed"
        );
        assert!(
            store
                .manifest
                .segments
                .iter()
                .any(|s| s.id == 0 && s.sealed),
            "manifest reconciled"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_seal_fault_defers_rotation_without_data_loss() {
        let dir = temp_dir("seal-fault");
        let plan = FaultPlan::builder(21)
            .rule(
                sites::STORE_SEAL,
                Rule::nth(1, FaultAction::Error(ErrorKind::Other)),
            )
            .build()
            .expect("plan");
        let opts = StoreOptions {
            hooks: StoreHooks::from_plan(&plan),
            rotate_bytes: 400,
            ..StoreOptions::default()
        };
        let records = sample_records(9, 6);
        let mut store = SegmentStore::open(&dir, opts).expect("open").store;
        // Every append commits fine; the first rotation attempt hits the
        // injected seal fault and is deferred, later ones succeed.
        for record in &records {
            store.append_all([record]).expect("appends never fail");
        }
        assert_eq!(store.record_count(), 6);
        assert!(!store.is_wedged());
        assert!(store.sealed_count() >= 1, "later rotations succeeded");
        drop(store);
        let opened = SegmentStore::open(&dir, StoreOptions::default()).expect("reopen");
        assert_eq!(opened.store.record_count(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_rotation_manifest_commit_defers_and_loses_nothing() {
        let dir = temp_dir("rotate-manifest-fault");
        // Manifest commit #1 is open()'s store creation; #2 is the first
        // rotation's publish. Failing it must defer the rotation — the
        // write head may not swing to a segment the durable manifest does
        // not own, or the records acked there would be swept as an orphan
        // by the next open.
        let plan = FaultPlan::builder(31)
            .rule(
                sites::STORE_MANIFEST,
                Rule::nth(2, FaultAction::Error(ErrorKind::Other)),
            )
            .build()
            .expect("plan");
        let opts = StoreOptions {
            hooks: StoreHooks::from_plan(&plan),
            rotate_bytes: 400,
            ..StoreOptions::default()
        };
        let records = sample_records(13, 6);
        let mut store = SegmentStore::open(&dir, opts).expect("open").store;
        for record in &records {
            store.append_all([record]).expect("appends still ack");
        }
        assert!(!store.is_wedged(), "a deferred rotation is not a wedge");
        assert!(
            store.sealed_count() >= 1,
            "the rotation retries once the fault budget is spent"
        );
        // Kill: no checkpoint, cold reopen. The orphan sweep must not
        // find any acked record in an unowned segment file.
        drop(store);
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("reopen")
            .store;
        assert_eq!(
            store.record_count(),
            records.len(),
            "zero acked-record loss across the failed manifest commit"
        );
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn implausible_trailer_offset_falls_back_to_scan() {
        let dir = temp_dir("bogus-trailer");
        let records = sample_records(4, 3);
        {
            let mut store = SegmentStore::open(&dir, StoreOptions::default())
                .expect("open")
                .store;
            store.append_all(&records).expect("batch");
            store.checkpoint().expect("seal");
        }
        // Corrupt the trailer's index offset to u64::MAX: the fast-path
        // offset arithmetic must not wrap into a "plausible" value — the
        // open falls back to the frame scan (which still finds the intact
        // footer) instead of erroring out.
        let seg_path = dir.join(segment_file_name(0));
        let len = std::fs::metadata(&seg_path).expect("meta").len();
        {
            let mut file = OpenOptions::new()
                .write(true)
                .open(&seg_path)
                .expect("open rw");
            file.seek(SeekFrom::Start(len - TRAILER_LEN)).expect("seek");
            file.write_all(&u64::MAX.to_le_bytes()).expect("poison");
        }
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("open survives a bogus trailer offset")
            .store;
        assert_eq!(store.record_count(), records.len());
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_segment_files_are_removed_on_open() {
        let dir = temp_dir("orphan");
        {
            let mut store = SegmentStore::open(&dir, StoreOptions::default())
                .expect("open")
                .store;
            store.append_all(&sample_records(1, 2)).expect("batch");
        }
        // A rotation/compaction that died after creating its file but
        // before the manifest commit leaves an unowned segment file.
        std::fs::write(dir.join(segment_file_name(77)), b"garbage").expect("orphan");
        let opened = SegmentStore::open(&dir, StoreOptions::default()).expect("reopen");
        assert!(!dir.join(segment_file_name(77)).exists());
        assert_eq!(opened.store.record_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn migration_ingests_v1_archive_once() {
        let dir = temp_dir("migrate");
        let v1_path = dir.clone(); // reuse the unique temp name as the file path
        let records = sample_records(4, 8);
        {
            let mut archive = Archive::create(&v1_path).expect("create v1");
            archive.append_all(&records).expect("fill v1");
            archive.sync().expect("sync");
        }
        let opened =
            SegmentStore::open_or_migrate(&v1_path, small_rotate_opts(700)).expect("migrate");
        assert_eq!(opened.migrated_records, 8);
        let mut store = opened.store;
        assert!(v1_path.is_dir(), "the file was replaced by a directory");
        assert_eq!(store.record_count(), 8);
        for record in &records {
            let got = store
                .get(record.location(), record.period())
                .expect("read")
                .expect("present");
            assert_eq!(*got, *record);
        }
        drop(store);
        // Second open: already a directory, no migration.
        let opened =
            SegmentStore::open_or_migrate(&v1_path, StoreOptions::default()).expect("reopen");
        assert_eq!(opened.migrated_records, 0);
        assert_eq!(opened.store.record_count(), 8);
        std::fs::remove_dir_all(&v1_path).ok();
    }

    #[test]
    fn interrupted_migration_rename_is_completed() {
        let dir = temp_dir("migrate-crash");
        let v1_path = dir.clone();
        let records = sample_records(6, 3);
        {
            let mut archive = Archive::create(&v1_path).expect("create v1");
            archive.append_all(&records).expect("fill");
        }
        // Run the migration, then simulate the crash window: the staging
        // dir is complete but the rename never happened.
        let staging = migration_staging_path(&v1_path);
        migrate_v1(&v1_path, &staging, &StoreOptions::default()).expect("migrate");
        std::fs::rename(&v1_path, &staging).expect("undo rename");
        assert!(!v1_path.exists());

        let opened =
            SegmentStore::open_or_migrate(&v1_path, StoreOptions::default()).expect("resume");
        assert_eq!(opened.store.record_count(), 3);
        assert!(v1_path.is_dir());
        std::fs::remove_dir_all(&v1_path).ok();
    }

    #[test]
    fn mid_batch_write_error_rolls_back_store() {
        let dir = temp_dir("midbatch");
        let plan = FaultPlan::builder(11)
            .rule(sites::STORE_WRITE, Rule::nth(1, FaultAction::Short(4)))
            .rule(
                sites::STORE_WRITE,
                Rule::nth(2, FaultAction::Error(ErrorKind::StorageFull)),
            )
            .build()
            .expect("plan");
        let opts = StoreOptions {
            hooks: StoreHooks::from_plan(&plan),
            ..StoreOptions::default()
        };
        let records = sample_records(2, 3);
        let mut store = SegmentStore::open(&dir, opts).expect("open").store;
        let err = store
            .append_all(&records)
            .expect_err("injected ENOSPC must surface");
        assert!(matches!(err, StoreError::Io(ref io) if io.kind() == ErrorKind::StorageFull));
        assert_eq!(store.record_count(), 0, "nothing counted past the failure");
        assert!(!store.is_wedged());
        assert_eq!(store.append_all(&records).expect("retry"), 3);
        drop(store);
        let opened = SegmentStore::open(&dir, StoreOptions::default()).expect("reopen");
        assert_eq!(opened.torn_bytes, 0);
        assert_eq!(opened.store.record_count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_key_append_supersedes() {
        let dir = temp_dir("supersede");
        let records = sample_records(8, 2);
        let mut altered = records[1].clone();
        altered.set_reported_index(0);
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("open")
            .store;
        store.append_all(&records).expect("batch");
        store.append_all([&altered]).expect("supersede");
        assert_eq!(store.record_count(), 2, "same key counts once");
        let got = store
            .get(altered.location(), altered.period())
            .expect("read")
            .expect("present");
        assert_eq!(*got, altered, "later frame wins");
        drop(store);
        let mut store = SegmentStore::open(&dir, StoreOptions::default())
            .expect("reopen")
            .store;
        let got = store
            .get(altered.location(), altered.period())
            .expect("read")
            .expect("present");
        assert_eq!(*got, altered, "supersession survives reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    // --- property tests (vendored deterministic proptest stub) -----------

    use proptest::prelude::*;

    fn tiny_record(location: u64, period: u32, ones: &[usize]) -> TrafficRecord {
        let mut record = TrafficRecord::new(
            LocationId::new(location),
            PeriodId::new(period),
            BitmapSize::new(64).expect("pow2"),
        );
        for idx in ones {
            record.set_reported_index(idx % 64);
        }
        record
    }

    proptest! {
        /// Any truncation point inside the active segment — including one
        /// landing exactly on a frame boundary — recovers the longest
        /// clean prefix, never errors, and leaves the file appendable.
        #[test]
        fn scan_recovers_any_truncation(
            periods in 1u32..5,
            ones in proptest::collection::vec(0usize..64, 1..8),
            cut_back in 0u64..200,
        ) {
            let dir = temp_dir(&format!("prop-tear-{periods}-{cut_back}"));
            let records: Vec<TrafficRecord> =
                (0..periods).map(|p| tiny_record(1, p, &ones)).collect();
            let mut frame_ends = vec![HEADER_LEN];
            {
                let mut store = SegmentStore::open(&dir, StoreOptions::default())
                    .expect("open").store;
                store.append_all(&records).expect("batch");
                for record in &records {
                    let last = *frame_ends.last().expect("nonempty");
                    frame_ends.push(last + 8 + encode_record(record).len() as u64);
                }
            }
            let seg_path = dir.join(segment_file_name(0));
            let len = std::fs::metadata(&seg_path).expect("meta").len();
            let cut = len.saturating_sub(cut_back).max(HEADER_LEN);
            let file = OpenOptions::new().write(true).open(&seg_path).expect("rw");
            file.set_len(cut).expect("truncate");
            drop(file);

            let survivors = frame_ends.iter().filter(|end| **end <= cut).count() - 1;
            let on_boundary = frame_ends.contains(&cut);
            let opened = SegmentStore::open(&dir, StoreOptions::default())
                .expect("recovery never errors");
            prop_assert_eq!(opened.store.record_count(), survivors);
            prop_assert_eq!(opened.torn_bytes == 0, on_boundary);

            // The recovered store accepts appends on a clean boundary.
            let mut store = opened.store;
            store.append_all(&records[survivors..]).expect("repair");
            prop_assert_eq!(store.record_count(), records.len());
            std::fs::remove_dir_all(&dir).ok();
        }

        /// Segment index encode/decode is lossless for arbitrary entry
        /// sets, and every truncation of the encoding is rejected.
        #[test]
        fn index_roundtrips_and_rejects_truncation(
            entries in proptest::collection::vec(
                (0u64..50, 0u32..100, 8u64..100_000, 1u32..10_000), 0..40),
            cut in any::<proptest::sample::Index>(),
        ) {
            let mut index = SegmentIndex::new();
            for (location, period, offset, len) in &entries {
                index.insert(LocationId::new(*location), PeriodId::new(*period), *offset, *len);
            }
            let bytes = index.encode();
            let back = SegmentIndex::decode(&bytes).expect("roundtrip");
            prop_assert_eq!(&back, &index);
            if bytes.len() > 4 {
                let cut = 4 + cut.index(bytes.len() - 4);
                if cut < bytes.len() {
                    prop_assert!(SegmentIndex::decode(&bytes[..cut]).is_err());
                }
            }
        }
    }
}
