//! Binary encoding of traffic records (version 1).
//!
//! ```text
//! u64 location | u32 period | u64 bitmap length (bits) | packed bitmap bytes
//! ```
//!
//! All integers little-endian. The bitmap bytes use
//! [`ptm_core::Bitmap::to_bytes`]'s stable layout.

use ptm_core::bitmap::Bitmap;
use ptm_core::encoding::LocationId;
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};

/// Storage-layer errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A frame failed its CRC check at the given byte offset.
    CorruptFrame {
        /// Byte offset of the frame header in the file.
        offset: u64,
    },
    /// The record payload inside a (checksum-valid) frame is malformed.
    MalformedRecord {
        /// Why the payload could not be decoded.
        reason: String,
    },
    /// The file does not start with the archive magic/version.
    BadHeader,
    /// A record size in the payload is not a power of two.
    BadBitmapSize(usize),
    /// A failed commit could not be rolled back; the archive refuses
    /// appends until rebuilt ([`crate::Archive::compact`]) or reopened.
    Wedged,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "archive i/o error: {err}"),
            Self::CorruptFrame { offset } => write!(f, "corrupt frame at offset {offset}"),
            Self::MalformedRecord { reason } => write!(f, "malformed record: {reason}"),
            Self::BadHeader => write!(f, "not a ptm archive (bad magic or version)"),
            Self::BadBitmapSize(size) => write!(f, "bitmap size {size} is not a power of two"),
            Self::Wedged => {
                write!(
                    f,
                    "archive wedged after failed rollback; compact or reopen required"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(raw)
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(raw)
}

/// Encodes a record payload (no framing).
pub fn encode_record(record: &TrafficRecord) -> Vec<u8> {
    let bitmap_bytes = record.bitmap().to_bytes();
    let mut out = Vec::with_capacity(20 + bitmap_bytes.len());
    out.extend_from_slice(&record.location().get().to_le_bytes());
    out.extend_from_slice(&record.period().get().to_le_bytes());
    out.extend_from_slice(&(record.len() as u64).to_le_bytes());
    out.extend_from_slice(&bitmap_bytes);
    out
}

/// Reads just the `(location, period)` key from an encoded payload without
/// decoding the bitmap — the segment store's index builder scans committed
/// frames with this, so recovery cost is independent of bitmap size.
///
/// # Errors
///
/// [`StoreError::MalformedRecord`] if the payload is shorter than the
/// fixed-width key prefix.
pub fn peek_key(payload: &[u8]) -> Result<(LocationId, PeriodId), StoreError> {
    if payload.len() < 20 {
        return Err(StoreError::MalformedRecord {
            reason: format!("{} byte payload", payload.len()),
        });
    }
    Ok((
        LocationId::new(le_u64(&payload[0..8])),
        PeriodId::new(le_u32(&payload[8..12])),
    ))
}

/// Decodes a record payload.
///
/// # Errors
///
/// [`StoreError::MalformedRecord`] for truncated or inconsistent payloads;
/// [`StoreError::BadBitmapSize`] for non-power-of-two record sizes.
pub fn decode_record(payload: &[u8]) -> Result<TrafficRecord, StoreError> {
    if payload.len() < 20 {
        return Err(StoreError::MalformedRecord {
            reason: format!("{} byte payload", payload.len()),
        });
    }
    let location = le_u64(&payload[0..8]);
    let period = le_u32(&payload[8..12]);
    let len = le_u64(&payload[12..20]) as usize;
    let size = BitmapSize::new(len).map_err(StoreError::BadBitmapSize)?;
    let expected_bytes = len.div_ceil(8);
    let rest = &payload[20..];
    if rest.len() != expected_bytes {
        return Err(StoreError::MalformedRecord {
            reason: format!("bitmap needs {expected_bytes} bytes, found {}", rest.len()),
        });
    }
    let bitmap = Bitmap::from_bytes(len, rest).map_err(|err| StoreError::MalformedRecord {
        reason: format!("bitmap rejected: {err}"),
    })?;
    let mut record = TrafficRecord::new(LocationId::new(location), PeriodId::new(period), size);
    for idx in bitmap.iter_ones() {
        record.set_reported_index(idx);
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, VehicleSecrets};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_record(seed: u64) -> TrafficRecord {
        let scheme = EncodingScheme::new(seed, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut record = TrafficRecord::new(
            LocationId::new(12),
            PeriodId::new(3),
            BitmapSize::new(2048).expect("pow2"),
        );
        for _ in 0..500 {
            let v = VehicleSecrets::generate(&mut rng, 3);
            record.encode(&scheme, &v);
        }
        record
    }

    #[test]
    fn roundtrip() {
        let record = sample_record(1);
        let bytes = encode_record(&record);
        let back = decode_record(&bytes).expect("roundtrip");
        assert_eq!(back, record);
    }

    #[test]
    fn truncated_payload_rejected() {
        let record = sample_record(2);
        let bytes = encode_record(&record);
        for cut in [0usize, 10, 19, bytes.len() - 1] {
            assert!(decode_record(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn non_power_of_two_size_rejected() {
        let record = sample_record(3);
        let mut bytes = encode_record(&record);
        bytes[12..20].copy_from_slice(&1000u64.to_le_bytes());
        assert!(matches!(
            decode_record(&bytes),
            Err(StoreError::BadBitmapSize(1000))
        ));
    }

    #[test]
    fn error_display() {
        let err = StoreError::CorruptFrame { offset: 42 };
        assert!(err.to_string().contains("42"));
        let err = StoreError::BadHeader;
        assert!(err.to_string().contains("magic"));
    }
}
