//! Privacy analysis (paper Sec. V): how much can traffic records reveal
//! about an individual vehicle's trajectory?
//!
//! Setting: a tracker somehow learns that vehicle `v` set bit `i` at
//! location `L` and checks whether bit `i` is also set at another location
//! `L'` (`n'` vehicles, bitmap size `m'`).
//!
//! * **noise** `p` — probability the bit is one even though `v` never passed
//!   `L'` (Eq. 22): `p = 1 − (1 − 1/m')^{n'}`;
//! * **signal** `p' − p = (1 − p)/s` — the extra probability contributed by
//!   `v` actually passing (Eq. 23), diluted by the `s` representative bits;
//! * **noise-to-information ratio** `p / (p' − p)` (Eq. 24) — the paper's
//!   privacy metric; ≥ 1 means the noise outweighs the evidence.
//!
//! With the sizing rule `m' ≈ f·n'` the ratio converges to the closed form
//! `s·(e^{1/f} − 1)` and the noise to `1 − e^{−1/f}`, which is how the
//! paper's Table II is computed.

use rand::Rng;

/// Eq. (22): probability that other traffic sets the observed bit.
///
/// # Panics
///
/// Panics if `m_prime` is zero.
pub fn noise_probability(n_prime: u64, m_prime: usize) -> f64 {
    assert!(m_prime > 0, "bitmap size must be positive");
    1.0 - (1.0 - 1.0 / m_prime as f64).powf(n_prime as f64)
}

/// Eq. (23): probability the bit shows one when the vehicle *did* pass.
///
/// # Panics
///
/// Panics if `s` is zero or `noise` is outside `[0, 1]`.
pub fn tracking_probability(noise: f64, s: u32) -> f64 {
    assert!(s >= 1, "s must be at least 1");
    assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
    noise + (1.0 - noise) / s as f64
}

/// Eq. (24): the probabilistic noise-to-information ratio
/// `p / (p' − p) = s·p / (1 − p)`.
///
/// Returns `f64::INFINITY` when the bitmap is certain to be full (`p = 1`).
pub fn noise_to_information_ratio(n_prime: u64, m_prime: usize, s: u32) -> f64 {
    let p = noise_probability(n_prime, m_prime);
    if p >= 1.0 {
        return f64::INFINITY;
    }
    s as f64 * p / (1.0 - p)
}

/// Asymptotic noise under the sizing rule `m' = f·n'` (large `n'`):
/// `p = 1 − e^{−1/f}`. The paper's Table II bottom row.
///
/// # Panics
///
/// Panics if `load_factor` is not positive.
pub fn asymptotic_noise(load_factor: f64) -> f64 {
    assert!(load_factor > 0.0, "load factor must be positive");
    1.0 - (-1.0 / load_factor).exp()
}

/// Asymptotic noise-to-information ratio under `m' = f·n'`:
/// `s·(e^{1/f} − 1)`. The paper's Table II body.
///
/// # Panics
///
/// Panics if `load_factor` is not positive or `s` is zero.
pub fn asymptotic_ratio(load_factor: f64, s: u32) -> f64 {
    assert!(load_factor > 0.0, "load factor must be positive");
    assert!(s >= 1, "s must be at least 1");
    s as f64 * ((1.0 / load_factor).exp() - 1.0)
}

/// Empirical estimate of `(p, p')` by Monte-Carlo simulation of the actual
/// encoding process, for cross-checking the closed forms.
///
/// Each trial builds the bitmap of `n_prime` independent vehicles at `L'`
/// (each setting one uniform bit) and checks the tracked index twice: once
/// without `v` (noise) and once with `v` re-encoding at `L'` by picking one
/// of its `s` representative bits uniformly (information).
pub fn simulate_noise_information<R: Rng + ?Sized>(
    rng: &mut R,
    n_prime: u64,
    m_prime: usize,
    s: u32,
    trials: u32,
) -> (f64, f64) {
    assert!(m_prime > 0 && s >= 1 && trials > 0);
    let mut hits_without = 0u32;
    let mut hits_with = 0u32;
    for _ in 0..trials {
        // v's representative bit indices at this bitmap size; index 0 is the
        // representative the tracker observed at L.
        let reps: Vec<usize> = (0..s).map(|_| rng.gen_range(0..m_prime)).collect();
        let tracked = reps[0];
        // Other traffic at L'.
        let mut bit_set = false;
        for _ in 0..n_prime {
            if rng.gen_range(0..m_prime) == tracked {
                bit_set = true;
                break;
            }
        }
        if bit_set {
            hits_without += 1;
        }
        // Now v passes L' and picks one representative uniformly.
        let choice = reps[rng.gen_range(0..s as usize)];
        if bit_set || choice == tracked {
            hits_with += 1;
        }
    }
    (
        hits_without as f64 / trials as f64,
        hits_with as f64 / trials as f64,
    )
}

/// One cell of the paper's Table II: `(ratio, noise)` for a `(f, s)` pair.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrivacyCell {
    /// Load factor `f`.
    pub load_factor: f64,
    /// Representative count `s`.
    pub s: u32,
    /// Noise-to-information ratio.
    pub ratio: f64,
    /// Noise probability `p`.
    pub noise: f64,
}

/// Generates the full Table II grid for the given parameter sweeps.
pub fn privacy_table(load_factors: &[f64], s_values: &[u32]) -> Vec<PrivacyCell> {
    let mut cells = Vec::with_capacity(load_factors.len() * s_values.len());
    for &s in s_values {
        for &f in load_factors {
            cells.push(PrivacyCell {
                load_factor: f,
                s,
                ratio: asymptotic_ratio(f, s),
                noise: asymptotic_noise(f),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn table_two_reference_values() {
        // Spot-check the published Table II grid (4-decimal rounding; the
        // paper's f = 1 column is off by ~2e-4 from the closed form, so the
        // tolerance is 3e-4 relative).
        let cases = [
            (1.0, 2, 3.4368),
            (1.5, 2, 1.8956),
            (2.0, 2, 1.2975),
            (4.0, 2, 0.5681),
            (1.0, 3, 5.1553),
            (2.0, 3, 1.9462),
            (3.0, 3, 1.1869),
            (2.0, 4, 2.5950),
            (2.5, 5, 2.4592),
            (4.0, 5, 1.4201),
        ];
        for (f, s, expected) in cases {
            let got = asymptotic_ratio(f, s);
            let rel = (got - expected).abs() / expected;
            assert!(rel < 3e-4, "f={f} s={s}: got {got}, paper {expected}");
        }
    }

    #[test]
    fn table_two_noise_row() {
        let cases = [
            (1.0, 0.6321),
            (1.5, 0.4866),
            (2.0, 0.3935),
            (2.5, 0.3297),
            (3.0, 0.2835),
            (3.5, 0.2485),
            (4.0, 0.2212),
        ];
        for (f, expected) in cases {
            let got = asymptotic_noise(f);
            assert!(
                (got - expected).abs() < 5e-5,
                "f={f}: got {got}, paper {expected}"
            );
        }
    }

    #[test]
    fn finite_n_converges_to_asymptotic() {
        let f = 2.0;
        for n in [1_000u64, 100_000, 10_000_000] {
            let m = (n as f64 * f) as usize;
            let finite = noise_probability(n, m);
            let asym = asymptotic_noise(f);
            assert!(
                (finite - asym).abs() < 2.0 / n as f64 + 1e-6,
                "n={n}: finite {finite} vs asymptotic {asym}"
            );
        }
    }

    #[test]
    fn ratio_monotone_in_s_and_antitone_in_f() {
        assert!(asymptotic_ratio(2.0, 4) > asymptotic_ratio(2.0, 3));
        assert!(asymptotic_ratio(3.0, 3) < asymptotic_ratio(2.0, 3));
    }

    #[test]
    fn tracking_probability_formula() {
        let p = 0.4;
        let p_prime = tracking_probability(p, 3);
        assert!((p_prime - (0.4 + 0.6 / 3.0)).abs() < 1e-12);
        // s = 1 (no representative diversity): passing always sets the bit.
        assert_eq!(tracking_probability(0.25, 1), 1.0);
    }

    #[test]
    fn ratio_matches_p_over_information() {
        let n = 50_000u64;
        let m = 100_000usize;
        let s = 3u32;
        let p = noise_probability(n, m);
        let p_prime = tracking_probability(p, s);
        let direct = p / (p_prime - p);
        assert!((noise_to_information_ratio(n, m, s) - direct).abs() < 1e-9);
    }

    #[test]
    fn full_bitmap_gives_infinite_ratio() {
        // m' = 1: every vehicle sets the single bit, p = 1.
        assert_eq!(noise_to_information_ratio(10, 1, 3), f64::INFINITY);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 2_000u64;
        let m = 4_096usize;
        let s = 3u32;
        let (p_hat, p_prime_hat) = simulate_noise_information(&mut rng, n, m, s, 20_000);
        let p = noise_probability(n, m);
        let p_prime = tracking_probability(p, s);
        assert!((p_hat - p).abs() < 0.02, "p {p} vs empirical {p_hat}");
        assert!(
            (p_prime_hat - p_prime).abs() < 0.02,
            "p' {p_prime} vs empirical {p_prime_hat}"
        );
    }

    #[test]
    fn privacy_table_shape() {
        let cells = privacy_table(&[1.0, 2.0], &[2, 3, 4]);
        assert_eq!(cells.len(), 6);
        // Rows grouped by s, then ordered by f.
        assert_eq!(cells[0].s, 2);
        assert_eq!(cells[0].load_factor, 1.0);
        assert_eq!(cells[5].s, 4);
        assert_eq!(cells[5].load_factor, 2.0);
    }

    #[test]
    fn paper_recommended_point_has_ratio_about_two() {
        // Sec. VI-C: "the probabilistic noise-to-information ratio is about 2"
        // at f = 2, s = 3.
        let ratio = asymptotic_ratio(2.0, 3);
        assert!((1.9..2.0).contains(&ratio), "ratio {ratio}");
    }
}
