//! Joining traffic records: expansion to a common size followed by bitwise
//! AND (Sec. III-A) or OR (Sec. IV-A second level).

use crate::bitmap::Bitmap;
use crate::error::EstimateError;
use crate::record::TrafficRecord;

/// How a set of records is split into the two halves `Π_a` / `Π_b` that the
/// point persistent estimator joins separately (Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// The paper's split: `Π_a` is the first `⌈t/2⌉` records, `Π_b` the rest.
    #[default]
    Halves,
    /// Ablation: even-indexed records in `Π_a`, odd-indexed in `Π_b`.
    /// Useful when traffic volume trends over time, so both halves see a
    /// mixture of light and heavy periods.
    Interleaved,
}

impl SplitStrategy {
    /// Partitions indices `0..t` into the two subsets.
    pub fn split(&self, t: usize) -> (Vec<usize>, Vec<usize>) {
        match self {
            Self::Halves => {
                let cut = t.div_ceil(2);
                ((0..cut).collect(), (cut..t).collect())
            }
            Self::Interleaved => (
                (0..t).filter(|i| i % 2 == 0).collect(),
                (0..t).filter(|i| i % 2 == 1).collect(),
            ),
        }
    }
}

/// AND-joins bitmaps after expanding each to the largest size present.
///
/// # Errors
///
/// * [`EstimateError::NoRecords`] for an empty input;
/// * [`EstimateError::NotPowerOfTwo`] if any bitmap length is not a power of
///   two (expansion undefined).
pub fn and_join<'a, I>(bitmaps: I) -> Result<Bitmap, EstimateError>
where
    I: IntoIterator<Item = &'a Bitmap>,
{
    ptm_obs::counter!("core.join.and.ops").inc();
    join_with(bitmaps, Bitmap::and_assign)
}

/// OR-joins bitmaps after expanding each to the largest size present.
///
/// # Errors
///
/// Same conditions as [`and_join`].
pub fn or_join<'a, I>(bitmaps: I) -> Result<Bitmap, EstimateError>
where
    I: IntoIterator<Item = &'a Bitmap>,
{
    ptm_obs::counter!("core.join.or.ops").inc();
    join_with(bitmaps, Bitmap::or_assign)
}

fn join_with<'a, I, F>(bitmaps: I, mut combine: F) -> Result<Bitmap, EstimateError>
where
    I: IntoIterator<Item = &'a Bitmap>,
    F: FnMut(&mut Bitmap, &Bitmap) -> Result<(), EstimateError>,
{
    let _t = ptm_obs::span!("core.join");
    let maps: Vec<&Bitmap> = bitmaps.into_iter().collect();
    if maps.is_empty() {
        return Err(EstimateError::NoRecords);
    }
    let mut target = 0usize;
    for map in &maps {
        if !map.is_power_of_two() {
            return Err(EstimateError::NotPowerOfTwo { len: map.len() });
        }
        target = target.max(map.len());
    }
    if ptm_obs::metrics_enabled() {
        ptm_obs::histogram!("core.join.fan_in").record(maps.len() as u64);
        for map in &maps {
            let factor = (target / map.len()) as u64;
            ptm_obs::histogram!("core.join.expansion_factor").record(factor);
            if factor > 1 {
                ptm_obs::counter!("core.join.expansions").inc();
            }
        }
    }
    let mut joined = maps[0].expand_to(target)?;
    for map in &maps[1..] {
        let expanded = map.expand_to(target)?;
        combine(&mut joined, &expanded)?;
    }
    Ok(joined)
}

/// AND-joins the bitmaps of a record set from a single location, checking
/// that the records really are from one location.
///
/// # Errors
///
/// * [`EstimateError::LocationMismatch`] if locations differ;
/// * plus the [`and_join`] conditions.
pub fn and_join_records(records: &[TrafficRecord]) -> Result<Bitmap, EstimateError> {
    if records.is_empty() {
        return Err(EstimateError::NoRecords);
    }
    let location = records[0].location();
    if records.iter().any(|r| r.location() != location) {
        return Err(EstimateError::LocationMismatch);
    }
    and_join(records.iter().map(TrafficRecord::bitmap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bm(len: usize, ones: &[usize]) -> Bitmap {
        let mut b = Bitmap::new(len);
        for &i in ones {
            b.set(i);
        }
        b
    }

    #[test]
    fn and_join_same_size_is_plain_and() {
        // Fig. 1: equal-size AND.
        let a = bm(8, &[0, 2, 5]);
        let b = bm(8, &[2, 5, 7]);
        let joined = and_join([&a, &b]).expect("join");
        assert_eq!(joined.iter_ones().collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn and_join_mixed_sizes_expands() {
        // Fig. 2: the 4-bit map expands to 8 bits before the AND.
        let small = bm(4, &[1]);
        let large = bm(8, &[1, 5, 6]);
        let joined = and_join([&small, &large]).expect("join");
        // small expands to ones at {1, 5}; AND with {1,5,6} = {1,5}.
        assert_eq!(joined.iter_ones().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn or_join_mixed_sizes() {
        let small = bm(4, &[0]);
        let large = bm(8, &[3]);
        let joined = or_join([&small, &large]).expect("join");
        assert_eq!(joined.iter_ones().collect::<Vec<_>>(), vec![0, 3, 4]);
    }

    #[test]
    fn empty_join_is_error() {
        assert_eq!(and_join(std::iter::empty()), Err(EstimateError::NoRecords));
        assert_eq!(or_join(std::iter::empty()), Err(EstimateError::NoRecords));
    }

    #[test]
    fn non_power_of_two_rejected() {
        let bad = bm(6, &[0]);
        let good = bm(8, &[0]);
        assert!(matches!(
            and_join([&bad, &good]),
            Err(EstimateError::NotPowerOfTwo { len: 6 })
        ));
    }

    #[test]
    fn single_map_join_is_identity() {
        let a = bm(16, &[3, 9]);
        assert_eq!(and_join([&a]).expect("join"), a);
        assert_eq!(or_join([&a]).expect("join"), a);
    }

    #[test]
    fn halves_split() {
        assert_eq!(SplitStrategy::Halves.split(5), (vec![0, 1, 2], vec![3, 4]));
        assert_eq!(SplitStrategy::Halves.split(4), (vec![0, 1], vec![2, 3]));
        assert_eq!(SplitStrategy::Halves.split(2), (vec![0], vec![1]));
    }

    #[test]
    fn interleaved_split() {
        assert_eq!(
            SplitStrategy::Interleaved.split(5),
            (vec![0, 2, 4], vec![1, 3])
        );
    }

    #[test]
    fn record_join_checks_location() {
        use crate::encoding::LocationId;
        use crate::params::BitmapSize;
        use crate::record::{PeriodId, TrafficRecord};
        let size = BitmapSize::new(8).expect("pow2");
        let a = TrafficRecord::new(LocationId::new(1), PeriodId::new(0), size);
        let b = TrafficRecord::new(LocationId::new(2), PeriodId::new(0), size);
        assert_eq!(
            and_join_records(&[a.clone(), b]),
            Err(EstimateError::LocationMismatch)
        );
        assert!(and_join_records(&[a]).is_ok());
        assert_eq!(and_join_records(&[]), Err(EstimateError::NoRecords));
    }

    proptest! {
        /// AND result never has more ones than any input (after accounting
        /// for expansion, which preserves the ones *fraction*).
        #[test]
        fn and_fraction_bounded_by_min_input(
            lens in proptest::collection::vec(3u32..8, 2..5),
            seed in any::<u64>(),
        ) {
            let mut state = seed;
            let maps: Vec<Bitmap> = lens.iter().map(|&p| {
                let len = 1usize << p;
                let mut b = Bitmap::new(len);
                for i in 0..len {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state >> 62 == 0 {
                        b.set(i);
                    }
                }
                b
            }).collect();
            let joined = and_join(maps.iter()).expect("join");
            let min_frac = maps
                .iter()
                .map(|m| m.fraction_ones())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(joined.fraction_ones() <= min_frac + 1e-12);
        }

        /// Splits partition the index set exactly.
        #[test]
        fn splits_partition(t in 2usize..50) {
            for strategy in [SplitStrategy::Halves, SplitStrategy::Interleaved] {
                let (a, b) = strategy.split(t);
                let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
                all.sort_unstable();
                prop_assert_eq!(all, (0..t).collect::<Vec<_>>());
                prop_assert!(!a.is_empty());
                prop_assert!(!b.is_empty());
            }
        }
    }
}
