//! Privacy-preserving **persistent traffic measurement** for intelligent
//! vehicular networks.
//!
//! This crate implements the primary contribution of *"Persistent Traffic
//! Measurement Through Vehicle-to-Infrastructure Communications"* (Huang,
//! Sun, Chen, Xu, Zhou — IEEE ICDCS 2017):
//!
//! * **Traffic records** ([`record`]): per-RSU, per-period bitmaps in which
//!   each passing vehicle sets a single pseudo-random bit, sized to a power
//!   of two from the expected traffic volume and a load factor `f`
//!   ([`params`]).
//! * **Vehicle encoding** ([`encoding`]): the paper's privacy-preserving
//!   hash `h_v = H(v ⊕ K_v ⊕ C[H(L ⊕ v) mod s]) mod m` that mixes vehicles
//!   into shared bits and varies a vehicle's bit across locations.
//! * **Point persistent estimator** ([`point`]): estimates how many vehicles
//!   passed one location in *every* one of `t` measurement periods, from the
//!   AND-join of the records (Sec. III, Eq. 12).
//! * **Point-to-point persistent estimator** ([`p2p`]): estimates how many
//!   vehicles passed *two* locations in every period, from a two-level
//!   AND/OR join (Sec. IV, Eq. 21).
//! * **Privacy analysis** ([`privacy`]): the probabilistic
//!   noise-to-information ratio that quantifies how much doubt the records
//!   leave a would-be tracker (Sec. V, Eqs. 22–24).
//!
//! # Quick start
//!
//! ```
//! use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
//! use ptm_core::params::SystemParams;
//! use ptm_core::point::PointEstimator;
//! use ptm_core::record::{PeriodId, TrafficRecord};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ptm_core::EstimateError> {
//! let params = SystemParams::paper_default(); // f = 2, s = 3
//! let scheme = EncodingScheme::new(0xC0FFEE, params.num_representatives());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let location = LocationId::new(7);
//!
//! // 400 vehicles that show up every day, plus fresh transient traffic.
//! let commons: Vec<_> = (0..400)
//!     .map(|_| VehicleSecrets::generate(&mut rng, params.num_representatives()))
//!     .collect();
//! let m = params.bitmap_size(2_000.0);
//! let mut records = Vec::new();
//! for day in 0..5u32 {
//!     let mut record = TrafficRecord::new(location, PeriodId::new(day), m);
//!     for v in &commons {
//!         record.encode(&scheme, v);
//!     }
//!     for _ in 0..1_600 {
//!         let t = VehicleSecrets::generate(&mut rng, params.num_representatives());
//!         record.encode(&scheme, &t);
//!     }
//!     records.push(record);
//! }
//!
//! let estimate = PointEstimator::new().estimate(&records)?;
//! assert!((estimate - 400.0).abs() / 400.0 < 0.25);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod encoding;
pub mod error;
pub mod join;
pub mod kway;
pub mod lpc;
pub mod p2p;
pub mod params;
pub mod point;
pub mod privacy;
pub mod record;

pub use bitmap::Bitmap;
pub use encoding::{EncodingScheme, LocationId, VehicleId, VehicleSecrets};
pub use error::EstimateError;
pub use p2p::PointToPointEstimator;
pub use params::{BitmapSize, SystemParams};
pub use point::{NaiveAndEstimator, PointEstimator};
pub use record::{PeriodId, TrafficRecord};
