//! Linear probabilistic counting (Whang–Vander-Zanden–Taylor), the base
//! estimator the paper builds on (Eq. 1 / Eq. 3).
//!
//! From a bitmap of `m` bits in which `n` items each set one uniformly
//! random bit, the zero fraction concentrates around `(1 - 1/m)^n ≈ e^{-n/m}`,
//! so `n` can be recovered from the observed zero fraction `V_0`:
//!
//! ```text
//! n̂ = ln V_0 / ln(1 - 1/m)
//! ```
//!
//! The module uses the exact `(1 - 1/m)` base (the paper's Eq. 3) rather
//! than the `-m ln V_0` approximation (Eq. 1); the two agree to `O(1/m)`
//! and a unit test pins the difference.

use crate::bitmap::Bitmap;
use crate::error::EstimateError;

/// Estimates the number of distinct items encoded in `bitmap`.
///
/// # Errors
///
/// Returns [`EstimateError::Saturated`] if the bitmap has no zero bits: the
/// zero fraction carries no information once the map fills up.
pub fn estimate_cardinality(bitmap: &Bitmap) -> Result<f64, EstimateError> {
    from_zero_fraction(bitmap.fraction_zeros(), bitmap.len(), "bitmap")
}

/// Estimates cardinality from an already-measured zero fraction.
///
/// `which` labels the bitmap in error messages (the persistent estimators
/// apply this to several joined maps).
///
/// # Errors
///
/// Returns [`EstimateError::Saturated`] when `fraction_zeros` is zero.
pub fn from_zero_fraction(
    fraction_zeros: f64,
    m: usize,
    which: &'static str,
) -> Result<f64, EstimateError> {
    debug_assert!(m >= 1);
    debug_assert!((0.0..=1.0).contains(&fraction_zeros));
    if fraction_zeros <= 0.0 {
        return Err(EstimateError::Saturated { which });
    }
    if m == 1 {
        // A single-bit map that still has a zero encoded nothing.
        return Ok(0.0);
    }
    Ok(fraction_zeros.ln() / (1.0 - 1.0 / m as f64).ln())
}

/// The paper's Eq. (1) form, `n̂ = -m ln V_0`.
///
/// Exposed for comparison benches; production code uses the exact base.
///
/// # Errors
///
/// Returns [`EstimateError::Saturated`] when the bitmap has no zeros.
pub fn estimate_cardinality_approx(bitmap: &Bitmap) -> Result<f64, EstimateError> {
    let v0 = bitmap.fraction_zeros();
    if v0 <= 0.0 {
        return Err(EstimateError::Saturated { which: "bitmap" });
    }
    Ok(-(bitmap.len() as f64) * v0.ln())
}

/// Standard error of the LPC estimate at load `t = n/m` (Whang et al. 1990):
/// `StdErr(n̂)/n ≈ sqrt(m) (e^t - t - 1)^{1/2} / n`.
///
/// Useful for choosing the load factor: at the paper's `f = 2`
/// (i.e. `t ≈ 0.5`) the relative standard error for `n = 10⁴` is well under
/// 1 %.
///
/// `n <= 0` (or a NaN) returns [`f64::INFINITY`]: the *relative* error of
/// estimating a zero count is unbounded, and report tables must see a
/// value that formats as `inf` rather than a `NaN` that poisons every
/// column it touches. Tiny positive loads evaluate `e^t - t - 1` via its
/// series, which the naive form would cancel to 0 in floating point.
///
/// # Panics
///
/// Panics if `m` is zero (a bitmap cannot have zero bits).
pub fn relative_standard_error(n: f64, m: usize) -> f64 {
    assert!(m > 0, "m must be positive");
    if n.is_nan() || n <= 0.0 {
        return f64::INFINITY;
    }
    let t = n / m as f64;
    // e^t - t - 1 = t²/2 + t³/6 + t⁴/24 + …; below t ≈ 1e-4 the direct
    // form loses every significant digit to cancellation (and t² itself
    // underflows to 0 once t < ~1e-154), so take the root of the series
    // analytically: sqrt(e^t - t - 1) ≈ t · sqrt(1/2 + t/6 + t²/24).
    let growth_sqrt = if t < 1e-4 {
        t * (0.5 + t * (1.0 / 6.0 + t / 24.0)).sqrt()
    } else {
        (t.exp() - t - 1.0).sqrt()
    };
    (m as f64).sqrt() * growth_sqrt / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fill_random(m: usize, n: usize, seed: u64) -> Bitmap {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = Bitmap::new(m);
        for _ in 0..n {
            b.set(rng.gen_range(0..m));
        }
        b
    }

    #[test]
    fn empty_bitmap_estimates_zero() {
        let b = Bitmap::new(1024);
        assert_eq!(estimate_cardinality(&b).expect("not saturated"), 0.0);
    }

    #[test]
    fn single_item() {
        let mut b = Bitmap::new(1024);
        b.set(5);
        let est = estimate_cardinality(&b).expect("not saturated");
        assert!((est - 1.0).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn accuracy_at_paper_load() {
        // n = m/2 is the paper's f = 2 operating point.
        let m = 1 << 16;
        let n = m / 2;
        let b = fill_random(m, n, 42);
        let est = estimate_cardinality(&b).expect("not saturated");
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn accuracy_at_high_load() {
        // Even at n = 2m the estimator works (with more variance).
        let m = 1 << 16;
        let n = 2 * m;
        let b = fill_random(m, n, 43);
        let est = estimate_cardinality(&b).expect("not saturated");
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn saturated_is_error() {
        let mut b = Bitmap::new(2);
        b.set(0);
        b.set(1);
        assert_eq!(
            estimate_cardinality(&b),
            Err(EstimateError::Saturated { which: "bitmap" })
        );
        assert!(estimate_cardinality_approx(&b).is_err());
    }

    #[test]
    fn exact_and_approx_forms_agree_for_large_m() {
        let m = 1 << 18;
        let b = fill_random(m, m / 2, 44);
        let exact = estimate_cardinality(&b).expect("ok");
        let approx = estimate_cardinality_approx(&b).expect("ok");
        assert!(
            (exact - approx).abs() / exact < 1e-4,
            "exact {exact} vs approx {approx}"
        );
    }

    #[test]
    fn single_bit_map() {
        let b = Bitmap::new(1);
        assert_eq!(estimate_cardinality(&b).expect("zero"), 0.0);
    }

    #[test]
    fn relative_standard_error_zero_n_is_infinite_not_nan() {
        // The old code divided by n and produced a NaN that propagated
        // into report tables; zero (or negative, or NaN) counts must map
        // to a clean +inf instead.
        for n in [0.0, -1.0, -0.0, f64::NAN] {
            let rse = relative_standard_error(n, 1024);
            assert!(rse.is_infinite() && rse > 0.0, "n = {n}: got {rse}");
        }
    }

    #[test]
    fn relative_standard_error_tiny_n_is_finite_and_stable() {
        // As n -> 0+ the expression tends to 1/sqrt(2m); the naive
        // floating-point form collapses to 0 (or NaN) from cancellation.
        let m = 4096;
        let limit = 1.0 / (2.0 * m as f64).sqrt();
        for n in [1e-3, 1e-6, 1e-12, 1e-300] {
            let rse = relative_standard_error(n, m);
            assert!(rse.is_finite(), "n = {n}: got {rse}");
            assert!(
                (rse - limit).abs() / limit < 1e-3,
                "n = {n}: got {rse}, limit {limit}"
            );
        }
        // The series and the direct form agree where both are accurate.
        let series_side = relative_standard_error(0.9e-4 * 4096.0, m);
        let direct_side = relative_standard_error(1.1e-4 * 4096.0, m);
        assert!((series_side - direct_side).abs() / direct_side < 1e-2);
    }

    #[test]
    fn relative_standard_error_shrinks_with_m() {
        let loose = relative_standard_error(1000.0, 1024);
        let tight = relative_standard_error(1000.0, 8192);
        assert!(tight < loose);
        // At the paper's operating point the error is small.
        assert!(relative_standard_error(10_000.0, 32_768) < 0.01);
    }

    proptest! {
        /// Inversion property: encoding exactly k distinct bits yields an
        /// estimate that is at least k-consistent (the estimator inverts the
        /// expectation, so the estimate from `z` zero bits is exact for the
        /// "expected" bitmap).
        #[test]
        fn estimate_increases_with_ones(m_pow in 6u32..12, ones in 1usize..60) {
            let m = 1usize << m_pow;
            prop_assume!(ones < m);
            let mut b = Bitmap::new(m);
            for i in 0..ones {
                b.set(i);
            }
            let mut b_more = b.clone();
            b_more.set(ones);
            let est = estimate_cardinality(&b).expect("ok");
            let est_more = estimate_cardinality(&b_more).expect("ok");
            prop_assert!(est_more > est, "monotone in observed ones");
            // k distinct ones estimate at least k (collisions only subtract).
            prop_assert!(est >= ones as f64 * 0.999);
        }
    }
}
