//! Linear probabilistic counting (Whang–Vander-Zanden–Taylor), the base
//! estimator the paper builds on (Eq. 1 / Eq. 3).
//!
//! From a bitmap of `m` bits in which `n` items each set one uniformly
//! random bit, the zero fraction concentrates around `(1 - 1/m)^n ≈ e^{-n/m}`,
//! so `n` can be recovered from the observed zero fraction `V_0`:
//!
//! ```text
//! n̂ = ln V_0 / ln(1 - 1/m)
//! ```
//!
//! The module uses the exact `(1 - 1/m)` base (the paper's Eq. 3) rather
//! than the `-m ln V_0` approximation (Eq. 1); the two agree to `O(1/m)`
//! and a unit test pins the difference.

use crate::bitmap::Bitmap;
use crate::error::EstimateError;

/// Estimates the number of distinct items encoded in `bitmap`.
///
/// # Errors
///
/// Returns [`EstimateError::Saturated`] if the bitmap has no zero bits: the
/// zero fraction carries no information once the map fills up.
pub fn estimate_cardinality(bitmap: &Bitmap) -> Result<f64, EstimateError> {
    from_zero_fraction(bitmap.fraction_zeros(), bitmap.len(), "bitmap")
}

/// Estimates cardinality from an already-measured zero fraction.
///
/// `which` labels the bitmap in error messages (the persistent estimators
/// apply this to several joined maps).
///
/// # Errors
///
/// Returns [`EstimateError::Saturated`] when `fraction_zeros` is zero.
pub fn from_zero_fraction(
    fraction_zeros: f64,
    m: usize,
    which: &'static str,
) -> Result<f64, EstimateError> {
    debug_assert!(m >= 1);
    debug_assert!((0.0..=1.0).contains(&fraction_zeros));
    if fraction_zeros <= 0.0 {
        return Err(EstimateError::Saturated { which });
    }
    if m == 1 {
        // A single-bit map that still has a zero encoded nothing.
        return Ok(0.0);
    }
    Ok(fraction_zeros.ln() / (1.0 - 1.0 / m as f64).ln())
}

/// The paper's Eq. (1) form, `n̂ = -m ln V_0`.
///
/// Exposed for comparison benches; production code uses the exact base.
///
/// # Errors
///
/// Returns [`EstimateError::Saturated`] when the bitmap has no zeros.
pub fn estimate_cardinality_approx(bitmap: &Bitmap) -> Result<f64, EstimateError> {
    let v0 = bitmap.fraction_zeros();
    if v0 <= 0.0 {
        return Err(EstimateError::Saturated { which: "bitmap" });
    }
    Ok(-(bitmap.len() as f64) * v0.ln())
}

/// Standard error of the LPC estimate at load `t = n/m` (Whang et al. 1990):
/// `StdErr(n̂)/n ≈ sqrt(m) (e^t - t - 1)^{1/2} / n`.
///
/// Useful for choosing the load factor: at the paper's `f = 2`
/// (i.e. `t ≈ 0.5`) the relative standard error for `n = 10⁴` is well under
/// 1 %.
pub fn relative_standard_error(n: f64, m: usize) -> f64 {
    assert!(n > 0.0 && m > 0, "n and m must be positive");
    let t = n / m as f64;
    (m as f64).sqrt() * (t.exp() - t - 1.0).sqrt() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fill_random(m: usize, n: usize, seed: u64) -> Bitmap {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = Bitmap::new(m);
        for _ in 0..n {
            b.set(rng.gen_range(0..m));
        }
        b
    }

    #[test]
    fn empty_bitmap_estimates_zero() {
        let b = Bitmap::new(1024);
        assert_eq!(estimate_cardinality(&b).expect("not saturated"), 0.0);
    }

    #[test]
    fn single_item() {
        let mut b = Bitmap::new(1024);
        b.set(5);
        let est = estimate_cardinality(&b).expect("not saturated");
        assert!((est - 1.0).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn accuracy_at_paper_load() {
        // n = m/2 is the paper's f = 2 operating point.
        let m = 1 << 16;
        let n = m / 2;
        let b = fill_random(m, n, 42);
        let est = estimate_cardinality(&b).expect("not saturated");
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn accuracy_at_high_load() {
        // Even at n = 2m the estimator works (with more variance).
        let m = 1 << 16;
        let n = 2 * m;
        let b = fill_random(m, n, 43);
        let est = estimate_cardinality(&b).expect("not saturated");
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn saturated_is_error() {
        let mut b = Bitmap::new(2);
        b.set(0);
        b.set(1);
        assert_eq!(
            estimate_cardinality(&b),
            Err(EstimateError::Saturated { which: "bitmap" })
        );
        assert!(estimate_cardinality_approx(&b).is_err());
    }

    #[test]
    fn exact_and_approx_forms_agree_for_large_m() {
        let m = 1 << 18;
        let b = fill_random(m, m / 2, 44);
        let exact = estimate_cardinality(&b).expect("ok");
        let approx = estimate_cardinality_approx(&b).expect("ok");
        assert!(
            (exact - approx).abs() / exact < 1e-4,
            "exact {exact} vs approx {approx}"
        );
    }

    #[test]
    fn single_bit_map() {
        let b = Bitmap::new(1);
        assert_eq!(estimate_cardinality(&b).expect("zero"), 0.0);
    }

    #[test]
    fn relative_standard_error_shrinks_with_m() {
        let loose = relative_standard_error(1000.0, 1024);
        let tight = relative_standard_error(1000.0, 8192);
        assert!(tight < loose);
        // At the paper's operating point the error is small.
        assert!(relative_standard_error(10_000.0, 32_768) < 0.01);
    }

    proptest! {
        /// Inversion property: encoding exactly k distinct bits yields an
        /// estimate that is at least k-consistent (the estimator inverts the
        /// expectation, so the estimate from `z` zero bits is exact for the
        /// "expected" bitmap).
        #[test]
        fn estimate_increases_with_ones(m_pow in 6u32..12, ones in 1usize..60) {
            let m = 1usize << m_pow;
            prop_assume!(ones < m);
            let mut b = Bitmap::new(m);
            for i in 0..ones {
                b.set(i);
            }
            let mut b_more = b.clone();
            b_more.set(ones);
            let est = estimate_cardinality(&b).expect("ok");
            let est_more = estimate_cardinality(&b_more).expect("ok");
            prop_assert!(est_more > est, "monotone in observed ones");
            // k distinct ones estimate at least k (collisions only subtract).
            prop_assert!(est >= ones as f64 * 0.999);
        }
    }
}
