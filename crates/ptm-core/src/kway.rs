//! K-way generalization of the point persistent estimator.
//!
//! The paper divides the record set `Π` into **two** halves and notes that
//! "dividing Π into more than two sets is possible, \[but\] we find the
//! two-set solution is not only simple but works effectively" (Sec. III-B).
//! This module implements the general k-way estimator so that claim can be
//! tested quantitatively (see the `kway` ablation).
//!
//! # Derivation
//!
//! Split `Π` into `k` groups; AND-join group `i` into `E_i` with zero
//! fraction `V_i,0 = (1 − 1/m)^{n_i}`, where `n_i` is the abstract
//! cardinality of the group join. All groups contain the `n_*` common
//! vehicles. A bit of `E_* = E_1 ∧ … ∧ E_k` is one iff a common vehicle
//! set it, or *every* group had it set by transients:
//!
//! ```text
//! P{X=1}(n_*) = q^{-n_*}·Π_i V_i,0  −  Π_i (V_i,0 − q^{n_*})·q^{-n_*}·(−1)^k …
//! ```
//!
//! written directly with `q = 1 − 1/m`:
//!
//! ```text
//! P{X=1} = 1 − q^{n_*} + q^{n_*} · Π_i (1 − q^{n_i − n_*})
//! ```
//!
//! For `k = 2` this reduces to the paper's Eq. (6). There is no closed-form
//! inverse for general `k`, so the estimator finds the `n_*` matching the
//! observed one-fraction `V_*,1` by bisection — `P{X=1}` is continuous and
//! strictly decreasing in `n_*` on `[0, min_i n_i]` whenever transients are
//! present, because raising `n_*` moves mass from k independent transient
//! coin flips (which only align with probability `Π(1 − q^{…})`) to a
//! single common coin flip... in fact monotonicity can fail in corner
//! cases, so the solver brackets the root defensively and falls back to
//! the closest endpoint.

use crate::bitmap::Bitmap;
use crate::error::EstimateError;
use crate::join::and_join;
use crate::record::TrafficRecord;

/// The k-way point persistent estimator.
#[derive(Debug, Clone, Copy)]
pub struct KwayEstimator {
    k: usize,
}

impl KwayEstimator {
    /// Creates an estimator that splits the records into `k` groups
    /// round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "k-way split needs k >= 2");
        Self { k }
    }

    /// Number of groups.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Estimates the persistent traffic volume.
    ///
    /// # Errors
    ///
    /// * [`EstimateError::TooFewRecords`] — fewer records than groups;
    /// * [`EstimateError::LocationMismatch`] — mixed locations;
    /// * [`EstimateError::Saturated`] — a group join has no zeros;
    /// * [`EstimateError::Degenerate`] — the observed one-fraction lies
    ///   outside the model's attainable range.
    pub fn estimate(&self, records: &[TrafficRecord]) -> Result<f64, EstimateError> {
        if records.len() < self.k {
            return Err(EstimateError::TooFewRecords {
                required: self.k,
                actual: records.len(),
            });
        }
        let location = records[0].location();
        if records.iter().any(|r| r.location() != location) {
            return Err(EstimateError::LocationMismatch);
        }
        let bitmaps: Vec<&Bitmap> = records.iter().map(TrafficRecord::bitmap).collect();
        self.estimate_bitmaps(&bitmaps)
    }

    /// Bitmap-level variant without metadata checks.
    ///
    /// # Errors
    ///
    /// As [`KwayEstimator::estimate`] minus the metadata conditions.
    pub fn estimate_bitmaps(&self, bitmaps: &[&Bitmap]) -> Result<f64, EstimateError> {
        let _t = ptm_obs::span!("core.kway.estimate");
        ptm_obs::counter!("core.kway.ops").inc();
        ptm_obs::histogram!("core.kway.k").record(self.k as u64);
        if bitmaps.len() < self.k {
            return Err(EstimateError::TooFewRecords {
                required: self.k,
                actual: bitmaps.len(),
            });
        }
        // Round-robin grouping, then AND-join each group.
        let mut groups: Vec<Vec<&Bitmap>> = vec![Vec::new(); self.k];
        for (i, &bm) in bitmaps.iter().enumerate() {
            groups[i % self.k].push(bm);
        }
        let joins: Vec<Bitmap> = groups
            .iter()
            .map(|group| and_join(group.iter().copied()))
            .collect::<Result<_, _>>()?;

        // Expand all group joins to the common size and AND them into E*.
        let m = joins.iter().map(Bitmap::len).max().expect("k >= 2 groups");
        let expanded: Vec<Bitmap> = joins
            .iter()
            .map(|j| j.expand_to(m))
            .collect::<Result<_, _>>()?;
        let mut e_star = expanded[0].clone();
        for e in &expanded[1..] {
            e_star.and_assign(e)?;
        }

        let v0: Vec<f64> = expanded.iter().map(Bitmap::fraction_zeros).collect();
        for (i, &v) in v0.iter().enumerate() {
            if v <= 0.0 {
                let which: &'static str = match i {
                    0 => "E_1",
                    1 => "E_2",
                    _ => "E_i",
                };
                return Err(EstimateError::Saturated { which });
            }
        }
        let v_star1 = e_star.fraction_ones();

        let q = 1.0 - 1.0 / m as f64;
        // Abstract per-group cardinalities n_i = ln V_i,0 / ln q.
        let n_groups: Vec<f64> = v0.iter().map(|v| v.ln() / q.ln()).collect();
        let n_max = n_groups.iter().copied().fold(f64::INFINITY, f64::min);

        // P{X=1} as a function of the candidate n*.
        let predicted = |n_star: f64| -> f64 {
            let qc = q.powf(n_star);
            let transient_align: f64 = n_groups
                .iter()
                .map(|&n_i| 1.0 - q.powf((n_i - n_star).max(0.0)))
                .product();
            1.0 - qc + qc * transient_align
        };

        // The attainable range: n* = n_max gives the minimum one-fraction?
        // Evaluate both endpoints and bisect toward the observed value.
        let lo_val = predicted(0.0);
        let hi_val = predicted(n_max);
        // predicted is increasing in n*: more common vehicles => more ones.
        if v_star1 <= lo_val.min(hi_val) {
            return Ok(if lo_val <= hi_val { 0.0 } else { n_max });
        }
        if v_star1 >= lo_val.max(hi_val) {
            return Ok(if lo_val <= hi_val { n_max } else { 0.0 });
        }
        let (mut lo, mut hi) = if lo_val <= hi_val {
            (0.0, n_max)
        } else {
            (n_max, 0.0)
        };
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if predicted(mid) < v_star1 {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo).abs() < 1e-9 * n_max.max(1.0) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{EncodingScheme, LocationId, VehicleSecrets};
    use crate::params::BitmapSize;
    use crate::point::PointEstimator;
    use crate::record::PeriodId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(seed: u64, t: usize, m: usize, common: usize, transient: usize) -> Vec<TrafficRecord> {
        let scheme = EncodingScheme::new(0x4A11, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let location = LocationId::new(1);
        let size = BitmapSize::new(m).expect("pow2");
        let commons: Vec<VehicleSecrets> = (0..common)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        (0..t)
            .map(|p| {
                let mut record = TrafficRecord::new(location, PeriodId::new(p as u32), size);
                for v in &commons {
                    record.encode(&scheme, v);
                }
                for _ in 0..transient {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect()
    }

    #[test]
    fn two_way_matches_closed_form_estimator() {
        // With k = 2 and an even record count the round-robin grouping
        // differs from the paper's halves split, but both must land close
        // to the truth and to each other.
        let records = build(1, 6, 1 << 14, 900, 4000);
        let kway = KwayEstimator::new(2).estimate(&records).expect("estimate");
        let halves = PointEstimator::new().estimate(&records).expect("estimate");
        assert!((kway - 900.0).abs() / 900.0 < 0.1, "kway {kway}");
        assert!((halves - 900.0).abs() / 900.0 < 0.1, "halves {halves}");
    }

    #[test]
    fn three_and_four_way_recover_truth() {
        let records = build(2, 12, 1 << 14, 700, 5000);
        for k in [3usize, 4] {
            let est = KwayEstimator::new(k).estimate(&records).expect("estimate");
            let rel = (est - 700.0).abs() / 700.0;
            assert!(rel < 0.12, "k={k}: estimate {est}, error {rel}");
        }
    }

    #[test]
    fn zero_common_vehicles_estimates_near_zero() {
        let records = build(3, 9, 1 << 13, 0, 3000);
        let est = KwayEstimator::new(3).estimate(&records).expect("estimate");
        assert!(est.abs() < 80.0, "estimate {est}");
    }

    #[test]
    fn all_common_no_transients_clamps_to_n_max() {
        let records = build(4, 6, 1 << 13, 1500, 0);
        let est = KwayEstimator::new(3).estimate(&records).expect("estimate");
        let rel = (est - 1500.0).abs() / 1500.0;
        assert!(rel < 0.05, "estimate {est}");
    }

    #[test]
    fn too_few_records_for_k() {
        let records = build(5, 2, 1 << 10, 10, 50);
        assert_eq!(
            KwayEstimator::new(3).estimate(&records),
            Err(EstimateError::TooFewRecords {
                required: 3,
                actual: 2
            })
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_one_panics() {
        let _ = KwayEstimator::new(1);
    }

    #[test]
    fn location_mismatch_rejected() {
        let mut records = build(6, 4, 1 << 10, 10, 50);
        records.push(TrafficRecord::new(
            LocationId::new(99),
            PeriodId::new(9),
            BitmapSize::new(1 << 10).expect("pow2"),
        ));
        assert_eq!(
            KwayEstimator::new(2).estimate(&records),
            Err(EstimateError::LocationMismatch)
        );
    }

    #[test]
    fn mixed_sizes_supported() {
        // Different record sizes within the groups exercise the expansion
        // path inside each group join and across groups.
        let scheme = EncodingScheme::new(0x4A12, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let location = LocationId::new(2);
        let commons: Vec<VehicleSecrets> = (0..400)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let sizes = [1 << 12, 1 << 13, 1 << 13, 1 << 12, 1 << 13, 1 << 13];
        let records: Vec<TrafficRecord> = sizes
            .iter()
            .enumerate()
            .map(|(p, &m)| {
                let mut record = TrafficRecord::new(
                    location,
                    PeriodId::new(p as u32),
                    BitmapSize::new(m).expect("pow2"),
                );
                for v in &commons {
                    record.encode(&scheme, v);
                }
                for _ in 0..1500 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect();
        let est = KwayEstimator::new(3).estimate(&records).expect("estimate");
        let rel = (est - 400.0).abs() / 400.0;
        assert!(rel < 0.2, "estimate {est}, error {rel}");
    }
}
