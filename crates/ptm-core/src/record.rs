//! Traffic records: the per-RSU, per-period bitmap plus its metadata.

use crate::bitmap::Bitmap;
use crate::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use crate::params::BitmapSize;
use serde::{Deserialize, Serialize};

/// Identifies one measurement period (e.g. a day index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeriodId(u32);

impl PeriodId {
    /// Wraps a raw period index.
    pub fn new(id: u32) -> Self {
        Self(id)
    }

    /// The raw value.
    pub fn get(&self) -> u32 {
        self.0
    }
}

/// A traffic record: what one RSU uploads to the central server at the end
/// of one measurement period (paper Sec. II-D).
///
/// The record deliberately stores no vehicle identifiers — only the bitmap.
///
/// # Example
///
/// ```
/// use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
/// use ptm_core::params::BitmapSize;
/// use ptm_core::record::{PeriodId, TrafficRecord};
/// use rand::SeedableRng;
///
/// let scheme = EncodingScheme::new(1, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let vehicle = VehicleSecrets::generate(&mut rng, 3);
/// let m = BitmapSize::new(1024).expect("power of two");
///
/// let mut record = TrafficRecord::new(LocationId::new(5), PeriodId::new(0), m);
/// record.encode(&scheme, &vehicle);
/// assert_eq!(record.bitmap().count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficRecord {
    location: LocationId,
    period: PeriodId,
    bitmap: Bitmap,
}

impl TrafficRecord {
    /// Creates an empty record with a power-of-two bitmap of `size` bits.
    pub fn new(location: LocationId, period: PeriodId, size: BitmapSize) -> Self {
        Self {
            location,
            period,
            bitmap: Bitmap::new(size.get()),
        }
    }

    /// The RSU location this record was produced at.
    pub fn location(&self) -> LocationId {
        self.location
    }

    /// The measurement period this record covers.
    pub fn period(&self) -> PeriodId {
        self.period
    }

    /// The underlying bitmap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// The same bitmap restamped with a different period id.
    ///
    /// Used when an RSU armed with a provisional sequential id hands its
    /// record to a coordinator that knows the authoritative period.
    pub fn restamped(mut self, period: PeriodId) -> Self {
        self.period = period;
        self
    }

    /// Number of bits `m` in the record.
    pub fn len(&self) -> usize {
        self.bitmap.len()
    }

    /// Always false; records are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.bitmap.is_empty()
    }

    /// Encodes a passing vehicle: computes `h_v mod m` and sets that bit.
    ///
    /// This is the *whole* per-vehicle operation the RSU performs — "that is
    /// the only operation of vehicle encoding" (Sec. II-D). Encoding the same
    /// vehicle again in the same period is harmless (idempotent).
    pub fn encode(&mut self, scheme: &EncodingScheme, vehicle: &VehicleSecrets) {
        let _t = ptm_obs::span!("core.encode.record");
        let index = scheme.encode_index(vehicle, self.location, self.bitmap.len());
        self.observe_set(index);
        self.bitmap.set(index);
    }

    /// Directly sets the bit a vehicle reported.
    ///
    /// Used by the V2I layer where the *vehicle* computes the index and the
    /// RSU only learns the index, never the identity.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the record's bitmap.
    pub fn set_reported_index(&mut self, index: usize) {
        if index < self.bitmap.len() {
            self.observe_set(index);
        }
        self.bitmap.set(index);
    }

    /// Metric bookkeeping for one bit-set: encodes attempted, fresh bits vs
    /// collisions (a bit that was already one — either the same vehicle
    /// re-passing or a hash collision). Free when metrics are disabled.
    fn observe_set(&self, index: usize) {
        if !ptm_obs::metrics_enabled() {
            return;
        }
        ptm_obs::counter!("core.encode.vehicles").inc();
        if self.bitmap.get(index) {
            ptm_obs::counter!("core.encode.collisions").inc();
        } else {
            ptm_obs::counter!("core.encode.bits_set").inc();
        }
    }

    /// Fraction of zero bits (`V_0`), the LPC observable.
    pub fn fraction_zeros(&self) -> f64 {
        self.bitmap.fraction_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::VehicleId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (EncodingScheme, VehicleSecrets, TrafficRecord) {
        let scheme = EncodingScheme::new(11, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let vehicle = VehicleSecrets::generate(&mut rng, 3);
        let record = TrafficRecord::new(
            LocationId::new(1),
            PeriodId::new(0),
            BitmapSize::new(256).expect("power of two"),
        );
        (scheme, vehicle, record)
    }

    #[test]
    fn encode_sets_exactly_one_bit() {
        let (scheme, vehicle, mut record) = setup();
        record.encode(&scheme, &vehicle);
        assert_eq!(record.bitmap().count_ones(), 1);
    }

    #[test]
    fn encode_is_idempotent_within_a_period() {
        let (scheme, vehicle, mut record) = setup();
        record.encode(&scheme, &vehicle);
        record.encode(&scheme, &vehicle);
        assert_eq!(record.bitmap().count_ones(), 1);
    }

    #[test]
    fn same_vehicle_same_bit_across_periods() {
        // The property AND-joins rely on: persistent vehicles re-set the
        // same bit at the same location every period.
        let (scheme, vehicle, _) = setup();
        let size = BitmapSize::new(256).expect("pow2");
        let mut day0 = TrafficRecord::new(LocationId::new(1), PeriodId::new(0), size);
        let mut day1 = TrafficRecord::new(LocationId::new(1), PeriodId::new(1), size);
        day0.encode(&scheme, &vehicle);
        day1.encode(&scheme, &vehicle);
        assert_eq!(
            day0.bitmap().iter_ones().collect::<Vec<_>>(),
            day1.bitmap().iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_reported_index_matches_encode() {
        let (scheme, vehicle, mut record) = setup();
        let mut via_report = record.clone();
        record.encode(&scheme, &vehicle);
        let index = scheme.encode_index(&vehicle, LocationId::new(1), 256);
        via_report.set_reported_index(index);
        assert_eq!(record, via_report);
    }

    #[test]
    fn accessors() {
        let (_, _, record) = setup();
        assert_eq!(record.location(), LocationId::new(1));
        assert_eq!(record.period(), PeriodId::new(0));
        assert_eq!(record.len(), 256);
        assert!(!record.is_empty());
        assert_eq!(record.fraction_zeros(), 1.0);
    }

    #[test]
    fn record_never_contains_identities() {
        // Serialize the record and check the vehicle id bytes never appear:
        // the record is a bitmap plus metadata, nothing else.
        let scheme = EncodingScheme::new(11, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let vehicle =
            VehicleSecrets::generate_with_id(&mut rng, VehicleId::new(0xDEAD_BEEF_CAFE), 3);
        let mut record = TrafficRecord::new(
            LocationId::new(1),
            PeriodId::new(0),
            BitmapSize::new(64).expect("pow2"),
        );
        record.encode(&scheme, &vehicle);
        let json = serde_json::to_string(&record).expect("serialize");
        assert!(
            !json.contains("DEAD"),
            "no identity material may leak into the record"
        );
        assert!(!json.contains(&vehicle.id().get().to_string()));
    }

    #[test]
    fn serde_roundtrip() {
        let (scheme, vehicle, mut record) = setup();
        record.encode(&scheme, &vehicle);
        let json = serde_json::to_string(&record).expect("serialize");
        let back: TrafficRecord = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, record);
    }
}
