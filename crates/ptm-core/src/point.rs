//! Point persistent traffic estimation (paper Sec. III).
//!
//! Given `t` records `{B_1, …, B_t}` from one location, estimate the number
//! of *common* vehicles — those that passed in **all** `t` periods.
//!
//! The derivation: split the (expanded) records into `Π_a` / `Π_b`, AND-join
//! each into `E_a` / `E_b`, and AND those into `E_*`. Modelling each joined
//! half as `n_a` (resp. `n_b`) independent abstract vehicles that contain
//! the `n_*` common vehicles, the expected one-fraction of `E_*` solves to
//! Eq. (12):
//!
//! ```text
//! n̂_* = [ln V_a,0 + ln V_b,0 − ln(V_*,1 + V_a,0 + V_b,0 − 1)] / ln(1 − 1/m)
//! ```

use crate::bitmap::Bitmap;
use crate::error::EstimateError;
use crate::join::{and_join, SplitStrategy};
use crate::record::TrafficRecord;

/// The proposed point persistent estimator (Eq. 12).
#[derive(Debug, Clone, Copy, Default)]
pub struct PointEstimator {
    split: SplitStrategy,
}

impl PointEstimator {
    /// Creates the estimator with the paper's halves split.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses an alternative split strategy (ablation).
    pub fn with_split(split: SplitStrategy) -> Self {
        Self { split }
    }

    /// Estimates the persistent traffic volume from single-location records.
    ///
    /// # Errors
    ///
    /// * [`EstimateError::TooFewRecords`] — fewer than two records; with one
    ///   record "persistent" degenerates to plain cardinality, use
    ///   [`crate::lpc::estimate_cardinality`] instead.
    /// * [`EstimateError::LocationMismatch`] — records from several
    ///   locations.
    /// * [`EstimateError::Saturated`] — one of the joined halves has no zero
    ///   bits (undersized records).
    /// * [`EstimateError::Degenerate`] — the observed fractions violate
    ///   `V_*,1 + V_a,0 + V_b,0 > 1`, which happens with tiny bitmaps when
    ///   sampling noise dominates; larger `m` (higher `f`) avoids it.
    pub fn estimate(&self, records: &[TrafficRecord]) -> Result<f64, EstimateError> {
        if records.len() < 2 {
            return Err(EstimateError::TooFewRecords {
                required: 2,
                actual: records.len(),
            });
        }
        let location = records[0].location();
        if records.iter().any(|r| r.location() != location) {
            return Err(EstimateError::LocationMismatch);
        }
        self.estimate_bitmaps(
            &records
                .iter()
                .map(TrafficRecord::bitmap)
                .collect::<Vec<_>>(),
        )
    }

    /// Estimates directly from bitmaps (no metadata checks); the building
    /// block for both [`PointEstimator::estimate`] and the point-to-point
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Same as [`PointEstimator::estimate`] minus the metadata checks.
    pub fn estimate_bitmaps(&self, bitmaps: &[&Bitmap]) -> Result<f64, EstimateError> {
        let _t = ptm_obs::span!("core.point.estimate");
        ptm_obs::counter!("core.point.ops").inc();
        if bitmaps.len() < 2 {
            return Err(EstimateError::TooFewRecords {
                required: 2,
                actual: bitmaps.len(),
            });
        }
        let (idx_a, idx_b) = self.split.split(bitmaps.len());
        let e_a = and_join(idx_a.iter().map(|&i| bitmaps[i]))?;
        let e_b = and_join(idx_b.iter().map(|&i| bitmaps[i]))?;
        estimate_from_halves(&e_a, &e_b)
    }
}

/// Applies Eq. (12) to the two AND-joined halves.
///
/// # Errors
///
/// See [`PointEstimator::estimate`].
pub fn estimate_from_halves(e_a: &Bitmap, e_b: &Bitmap) -> Result<f64, EstimateError> {
    // The halves may differ in size when the original records did; expand
    // to the common size before the final AND.
    let m = e_a.len().max(e_b.len());
    let e_a = e_a.expand_to(m)?;
    let e_b = e_b.expand_to(m)?;
    let mut e_star = e_a.clone();
    e_star.and_assign(&e_b)?;

    let v_a0 = e_a.fraction_zeros();
    let v_b0 = e_b.fraction_zeros();
    let v_star1 = e_star.fraction_ones();
    if v_a0 <= 0.0 {
        return Err(EstimateError::Saturated { which: "E_a" });
    }
    if v_b0 <= 0.0 {
        return Err(EstimateError::Saturated { which: "E_b" });
    }
    let arg = v_star1 + v_a0 + v_b0 - 1.0;
    if arg <= 0.0 {
        return Err(EstimateError::Degenerate);
    }
    let denom = (1.0 - 1.0 / m as f64).ln();
    Ok((v_a0.ln() + v_b0.ln() - arg.ln()) / denom)
}

/// A point estimate together with its delta-method standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateWithError {
    /// The estimated persistent volume `n̂_*`.
    pub value: f64,
    /// First-order standard error propagated from the sampling noise of
    /// the three observed fractions.
    pub std_error: f64,
}

impl EstimateWithError {
    /// A symmetric `value ± z·std_error` interval.
    pub fn interval(&self, z: f64) -> (f64, f64) {
        (
            self.value - z * self.std_error,
            self.value + z * self.std_error,
        )
    }
}

/// Applies Eq. (12) and propagates a first-order (delta-method) standard
/// error.
///
/// The estimator is a function `g(V_a,0, V_b,0, V_*,1)`; treating each
/// fraction as a mean of `m` weakly dependent Bernoulli bits with variance
/// `V(1−V)/m`, the variance of `n̂_*` is approximately
/// `Σ (∂g/∂V_i)² · Var(V_i)`. The fractions are positively correlated (the
/// same bits feed all three), which the independence assumption ignores, so
/// the propagated error is **conservative** — empirically ~3× the observed
/// spread at the paper's operating point (a unit test pins the band). Error
/// bars built from it are safe, not tight.
///
/// # Errors
///
/// Same conditions as [`estimate_from_halves`].
pub fn estimate_from_halves_with_error(
    e_a: &Bitmap,
    e_b: &Bitmap,
) -> Result<EstimateWithError, EstimateError> {
    let m = e_a.len().max(e_b.len());
    let e_a = e_a.expand_to(m)?;
    let e_b = e_b.expand_to(m)?;
    let mut e_star = e_a.clone();
    e_star.and_assign(&e_b)?;

    let v_a0 = e_a.fraction_zeros();
    let v_b0 = e_b.fraction_zeros();
    let v_star1 = e_star.fraction_ones();
    if v_a0 <= 0.0 {
        return Err(EstimateError::Saturated { which: "E_a" });
    }
    if v_b0 <= 0.0 {
        return Err(EstimateError::Saturated { which: "E_b" });
    }
    let arg = v_star1 + v_a0 + v_b0 - 1.0;
    if arg <= 0.0 {
        return Err(EstimateError::Degenerate);
    }
    let ln_q = (1.0 - 1.0 / m as f64).ln();
    let value = (v_a0.ln() + v_b0.ln() - arg.ln()) / ln_q;

    // Partial derivatives of g w.r.t. (V_a0, V_b0, V_*1).
    let d_va = (1.0 / v_a0 - 1.0 / arg) / ln_q;
    let d_vb = (1.0 / v_b0 - 1.0 / arg) / ln_q;
    let d_v1 = (-1.0 / arg) / ln_q;
    let mf = m as f64;
    let var = d_va * d_va * v_a0 * (1.0 - v_a0) / mf
        + d_vb * d_vb * v_b0 * (1.0 - v_b0) / mf
        + d_v1 * d_v1 * v_star1 * (1.0 - v_star1) / mf;
    Ok(EstimateWithError {
        value,
        std_error: var.max(0.0).sqrt(),
    })
}

impl PointEstimator {
    /// [`PointEstimator::estimate`] with a propagated standard error.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PointEstimator::estimate`].
    pub fn estimate_with_error(
        &self,
        records: &[TrafficRecord],
    ) -> Result<EstimateWithError, EstimateError> {
        if records.len() < 2 {
            return Err(EstimateError::TooFewRecords {
                required: 2,
                actual: records.len(),
            });
        }
        let location = records[0].location();
        if records.iter().any(|r| r.location() != location) {
            return Err(EstimateError::LocationMismatch);
        }
        let bitmaps: Vec<&Bitmap> = records.iter().map(TrafficRecord::bitmap).collect();
        let (idx_a, idx_b) = self.split.split(bitmaps.len());
        let e_a = and_join(idx_a.iter().map(|&i| bitmaps[i]))?;
        let e_b = and_join(idx_b.iter().map(|&i| bitmaps[i]))?;
        estimate_from_halves_with_error(&e_a, &e_b)
    }
}

/// The benchmark estimator from the evaluation (Sec. VI-B): apply plain
/// linear probabilistic counting to the AND of **all** `t` records,
/// `n̂_* = ln V_*,0 / ln(1 − 1/m)`.
///
/// It over-estimates because transient hash collisions surviving the AND are
/// counted as persistent vehicles; Fig. 4 quantifies the gap.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveAndEstimator;

impl NaiveAndEstimator {
    /// Creates the benchmark estimator.
    pub fn new() -> Self {
        Self
    }

    /// Estimates persistent traffic as the LPC cardinality of the full AND.
    ///
    /// # Errors
    ///
    /// * [`EstimateError::NoRecords`] — empty input;
    /// * [`EstimateError::LocationMismatch`] — mixed locations;
    /// * [`EstimateError::Saturated`] — the AND has no zero bits.
    pub fn estimate(&self, records: &[TrafficRecord]) -> Result<f64, EstimateError> {
        if records.is_empty() {
            return Err(EstimateError::NoRecords);
        }
        let location = records[0].location();
        if records.iter().any(|r| r.location() != location) {
            return Err(EstimateError::LocationMismatch);
        }
        self.estimate_bitmaps(
            &records
                .iter()
                .map(TrafficRecord::bitmap)
                .collect::<Vec<_>>(),
        )
    }

    /// Bitmap-level variant of [`NaiveAndEstimator::estimate`].
    ///
    /// # Errors
    ///
    /// Same as [`NaiveAndEstimator::estimate`] minus metadata checks.
    pub fn estimate_bitmaps(&self, bitmaps: &[&Bitmap]) -> Result<f64, EstimateError> {
        ptm_obs::counter!("core.point.naive.ops").inc();
        let e_star = and_join(bitmaps.iter().copied())?;
        crate::lpc::from_zero_fraction(e_star.fraction_zeros(), e_star.len(), "E_*")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{EncodingScheme, LocationId, VehicleSecrets};
    use crate::params::BitmapSize;
    use crate::record::{PeriodId, TrafficRecord};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Builds t records at one location with `common` persistent vehicles
    /// and `transient_per_period` fresh vehicles per period.
    fn build_records(
        seed: u64,
        t: usize,
        m: usize,
        common: usize,
        transient_per_period: usize,
    ) -> Vec<TrafficRecord> {
        let scheme = EncodingScheme::new(0x5EED, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let location = LocationId::new(99);
        let size = BitmapSize::new(m).expect("pow2");
        let commons: Vec<VehicleSecrets> = (0..common)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        (0..t)
            .map(|p| {
                let mut record = TrafficRecord::new(location, PeriodId::new(p as u32), size);
                for v in &commons {
                    record.encode(&scheme, v);
                }
                for _ in 0..transient_per_period {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect()
    }

    #[test]
    fn recovers_persistent_volume() {
        let records = build_records(1, 5, 1 << 14, 1000, 4000);
        let est = PointEstimator::new().estimate(&records).expect("estimate");
        let rel = (est - 1000.0).abs() / 1000.0;
        assert!(rel < 0.1, "estimate {est}, relative error {rel}");
    }

    #[test]
    fn beats_naive_benchmark_at_small_volume() {
        // The headline Fig. 4 behaviour: with few persistent vehicles, the
        // naive AND estimator is swamped by transient collisions.
        let truth = 100.0;
        let records = build_records(2, 5, 1 << 14, 100, 6000);
        let proposed = PointEstimator::new().estimate(&records).expect("proposed");
        let naive = NaiveAndEstimator::new().estimate(&records).expect("naive");
        let err_p = (proposed - truth).abs() / truth;
        let err_n = (naive - truth).abs() / truth;
        assert!(
            err_p < err_n,
            "proposed {proposed} (err {err_p}) should beat naive {naive} (err {err_n})"
        );
    }

    #[test]
    fn more_periods_reduce_naive_bias() {
        // AND of more bitmaps filters more transient noise.
        let r5 = build_records(3, 5, 1 << 13, 200, 3000);
        let r10 = build_records(3, 10, 1 << 13, 200, 3000);
        let naive5 = NaiveAndEstimator::new().estimate(&r5).expect("t=5");
        let naive10 = NaiveAndEstimator::new().estimate(&r10).expect("t=10");
        assert!(
            (naive10 - 200.0).abs() <= (naive5 - 200.0).abs(),
            "t=10 naive {naive10} should be no worse than t=5 naive {naive5}"
        );
    }

    #[test]
    fn works_with_mixed_record_sizes() {
        // Period 0 gets a half-size record (as in the paper's Fig. 3).
        let scheme = EncodingScheme::new(0x5EED, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let location = LocationId::new(7);
        let commons: Vec<VehicleSecrets> = (0..500)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let sizes = [1 << 12, 1 << 13, 1 << 13, 1 << 13, 1 << 13];
        let records: Vec<TrafficRecord> = sizes
            .iter()
            .enumerate()
            .map(|(p, &m)| {
                let mut record = TrafficRecord::new(
                    location,
                    PeriodId::new(p as u32),
                    BitmapSize::new(m).expect("pow2"),
                );
                for v in &commons {
                    record.encode(&scheme, v);
                }
                for _ in 0..2000 {
                    let v = VehicleSecrets::generate(&mut rng, 3);
                    record.encode(&scheme, &v);
                }
                record
            })
            .collect();
        let est = PointEstimator::new().estimate(&records).expect("estimate");
        let rel = (est - 500.0).abs() / 500.0;
        assert!(rel < 0.15, "estimate {est}, relative error {rel}");
    }

    #[test]
    fn zero_persistent_traffic() {
        let records = build_records(5, 5, 1 << 14, 0, 3000);
        let est = PointEstimator::new().estimate(&records).expect("estimate");
        assert!(est.abs() < 60.0, "estimate {est} should be near zero");
    }

    #[test]
    fn all_persistent_no_transient() {
        let records = build_records(6, 4, 1 << 13, 2000, 0);
        let est = PointEstimator::new().estimate(&records).expect("estimate");
        let rel = (est - 2000.0).abs() / 2000.0;
        assert!(rel < 0.05, "estimate {est}");
    }

    #[test]
    fn too_few_records() {
        let records = build_records(7, 1, 1 << 10, 10, 10);
        assert_eq!(
            PointEstimator::new().estimate(&records),
            Err(EstimateError::TooFewRecords {
                required: 2,
                actual: 1
            })
        );
        assert_eq!(
            PointEstimator::new().estimate(&[]),
            Err(EstimateError::TooFewRecords {
                required: 2,
                actual: 0
            })
        );
    }

    #[test]
    fn location_mismatch_detected() {
        let mut records = build_records(8, 3, 1 << 10, 10, 10);
        let other = TrafficRecord::new(
            LocationId::new(1234),
            PeriodId::new(9),
            BitmapSize::new(1 << 10).expect("pow2"),
        );
        records.push(other);
        assert_eq!(
            PointEstimator::new().estimate(&records),
            Err(EstimateError::LocationMismatch)
        );
        assert_eq!(
            NaiveAndEstimator::new().estimate(&records),
            Err(EstimateError::LocationMismatch)
        );
    }

    #[test]
    fn saturated_half_detected() {
        let mut full = Bitmap::new(8);
        for i in 0..8 {
            full.set(i);
        }
        let sparse = Bitmap::new(8);
        assert_eq!(
            estimate_from_halves(&full, &sparse),
            Err(EstimateError::Saturated { which: "E_a" })
        );
        assert_eq!(
            estimate_from_halves(&sparse, &full),
            Err(EstimateError::Saturated { which: "E_b" })
        );
    }

    #[test]
    fn interleaved_split_also_works() {
        let records = build_records(9, 6, 1 << 14, 800, 3000);
        let est = PointEstimator::with_split(SplitStrategy::Interleaved)
            .estimate(&records)
            .expect("estimate");
        let rel = (est - 800.0).abs() / 800.0;
        assert!(rel < 0.1, "estimate {est}");
    }

    #[test]
    fn estimate_with_error_matches_point_estimate() {
        let records = build_records(20, 6, 1 << 13, 500, 2500);
        let plain = PointEstimator::new().estimate(&records).expect("estimate");
        let with_err = PointEstimator::new()
            .estimate_with_error(&records)
            .expect("estimate");
        assert_eq!(with_err.value, plain);
        assert!(with_err.std_error > 0.0);
        let (lo, hi) = with_err.interval(2.0);
        assert!(lo < plain && plain < hi);
    }

    #[test]
    fn predicted_std_error_tracks_empirical_spread() {
        // Run many independent scenarios and compare the delta-method
        // prediction with the observed spread of the estimates.
        let truth = 600.0;
        let mut estimates = Vec::new();
        let mut predicted = Vec::new();
        for seed in 0..30u64 {
            let records = build_records(100 + seed, 4, 1 << 13, 600, 3000);
            let e = PointEstimator::new()
                .estimate_with_error(&records)
                .expect("estimate");
            estimates.push(e.value);
            predicted.push(e.std_error);
        }
        let mean_est: f64 = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let empirical_var: f64 = estimates
            .iter()
            .map(|e| (e - mean_est).powi(2))
            .sum::<f64>()
            / (estimates.len() - 1) as f64;
        let empirical_std = empirical_var.sqrt();
        let mean_predicted: f64 = predicted.iter().sum::<f64>() / predicted.len() as f64;
        // The delta method ignores the positive correlation between the
        // fractions, making the prediction conservative: it must never
        // under-state the spread, and should stay within ~4x above it.
        assert!(
            empirical_std <= 1.2 * mean_predicted,
            "prediction {mean_predicted} understates empirical spread {empirical_std}"
        );
        assert!(
            mean_predicted < 4.0 * empirical_std,
            "prediction {mean_predicted} uselessly loose vs empirical {empirical_std}"
        );
        // And the estimates themselves track the truth.
        assert!(
            (mean_est - truth).abs() / truth < 0.05,
            "mean estimate {mean_est}"
        );
    }

    #[test]
    fn error_api_rejects_bad_inputs_like_plain_api() {
        let records = build_records(21, 1, 1 << 10, 10, 10);
        assert_eq!(
            PointEstimator::new().estimate_with_error(&records),
            Err(EstimateError::TooFewRecords {
                required: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn naive_estimator_on_single_record_is_plain_lpc() {
        let records = build_records(10, 1, 1 << 12, 0, 1500);
        let naive = NaiveAndEstimator::new()
            .estimate(&records)
            .expect("estimate");
        let lpc = crate::lpc::estimate_cardinality(records[0].bitmap()).expect("lpc");
        assert_eq!(naive, lpc);
    }
}
