//! Word-packed bit vectors with the join operations the estimators need:
//! bitwise AND/OR of equal-length maps and power-of-two
//! replication-expansion (paper Sec. III-A).

use crate::error::EstimateError;
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-length bit vector.
///
/// # Example
///
/// ```
/// use ptm_core::Bitmap;
///
/// let mut b = Bitmap::new(8);
/// b.set(3);
/// assert!(b.get(3));
/// assert_eq!(b.count_ones(), 1);
/// assert_eq!(b.fraction_zeros(), 7.0 / 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "bitmap length must be positive");
        Self {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero length (never true; lengths are positive).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit at `index` to one.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range for length {}",
            self.len
        );
        self.words[index / WORD_BITS] |= 1u64 << (index % WORD_BITS);
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range for length {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of zero bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Fraction of bits that are zero (`V_0` in the paper).
    pub fn fraction_zeros(&self) -> f64 {
        self.count_zeros() as f64 / self.len as f64
    }

    /// Fraction of bits that are one (`V_1` in the paper).
    pub fn fraction_ones(&self) -> f64 {
        self.count_ones() as f64 / self.len as f64
    }

    /// Whether the length is a power of two (required for joins).
    pub fn is_power_of_two(&self) -> bool {
        self.len.is_power_of_two()
    }

    /// Bitwise AND with an equal-length bitmap, in place.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::IncompatibleSizes`] when lengths differ; use
    /// [`Bitmap::expand_to`] first.
    pub fn and_assign(&mut self, other: &Bitmap) -> Result<(), EstimateError> {
        self.check_same_len(other)?;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        Ok(())
    }

    /// Bitwise OR with an equal-length bitmap, in place.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::IncompatibleSizes`] when lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) -> Result<(), EstimateError> {
        self.check_same_len(other)?;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        Ok(())
    }

    fn check_same_len(&self, other: &Bitmap) -> Result<(), EstimateError> {
        if self.len == other.len {
            Ok(())
        } else {
            Err(EstimateError::IncompatibleSizes {
                small: self.len.min(other.len),
                large: self.len.max(other.len),
            })
        }
    }

    /// Replication-expansion (paper Fig. 2): replicates the bitmap until its
    /// length reaches `target`. Because record sizes are powers of two, the
    /// replication factor `target / len` is always an integer, and the
    /// membership property `B[h mod len] = 1  ⟹  E[h mod target] = 1`
    /// holds for every hash value `h`.
    ///
    /// # Errors
    ///
    /// * [`EstimateError::NotPowerOfTwo`] if either length is not a power of
    ///   two;
    /// * [`EstimateError::IncompatibleSizes`] if `target < len`.
    pub fn expand_to(&self, target: usize) -> Result<Bitmap, EstimateError> {
        if !self.len.is_power_of_two() {
            return Err(EstimateError::NotPowerOfTwo { len: self.len });
        }
        if !target.is_power_of_two() {
            return Err(EstimateError::NotPowerOfTwo { len: target });
        }
        if target < self.len {
            return Err(EstimateError::IncompatibleSizes {
                small: target,
                large: self.len,
            });
        }
        if target == self.len {
            return Ok(self.clone());
        }
        let mut expanded = Bitmap::new(target);
        if self.len >= WORD_BITS {
            // Whole words replicate cleanly: len is a multiple of 64.
            let src_words = self.words.len();
            for (i, word) in expanded.words.iter_mut().enumerate() {
                *word = self.words[i % src_words];
            }
        } else {
            // Sub-word bitmap: build one 64-bit tile by repeating the
            // pattern, then replicate the tile.
            let pattern = self.words[0] & mask_low_bits(self.len);
            let mut tile = 0u64;
            let copies_per_word = WORD_BITS / self.len;
            for k in 0..copies_per_word.min(target / self.len) {
                tile |= pattern << (k * self.len);
            }
            if target < WORD_BITS {
                expanded.words[0] = tile & mask_low_bits(target);
            } else {
                for word in expanded.words.iter_mut() {
                    *word = tile;
                }
            }
        }
        Ok(expanded)
    }

    /// Packs the bitmap into `ceil(len/8)` little-endian bytes (bit `i` is
    /// bit `i % 8` of byte `i / 8`) — the stable on-disk / wire layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for (wi, word) in self.words.iter().enumerate() {
            let bytes = word.to_le_bytes();
            let start = wi * 8;
            let take = bytes.len().min(out.len().saturating_sub(start));
            out[start..start + take].copy_from_slice(&bytes[..take]);
        }
        out
    }

    /// Rebuilds a bitmap from [`Bitmap::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::IncompatibleSizes`] when the byte count
    /// does not match `len`, and rejects set bits beyond `len` (corrupt
    /// input) the same way.
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Result<Self, EstimateError> {
        if len == 0 || bytes.len() != len.div_ceil(8) {
            return Err(EstimateError::IncompatibleSizes {
                small: len.div_ceil(8),
                large: bytes.len(),
            });
        }
        let mut bitmap = Bitmap::new(len);
        for (i, &byte) in bytes.iter().enumerate() {
            bitmap.words[i / 8] |= (byte as u64) << ((i % 8) * 8);
        }
        // Reject garbage beyond the logical length.
        let tail_bits = len % WORD_BITS;
        if tail_bits != 0 {
            let last = *bitmap.words.last().expect("non-empty");
            if tail_bits < WORD_BITS && (last >> tail_bits) != 0 {
                return Err(EstimateError::IncompatibleSizes {
                    small: len,
                    large: len + 1,
                });
            }
        }
        Ok(bitmap)
    }

    /// Iterator over the indices of the one bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let base = wi * WORD_BITS;
            let len = self.len;
            BitIter { word, base }.take_while(move |&i| i < len)
        })
    }
}

/// All-ones mask covering the low `bits` bits (`bits` in `1..=63`).
fn mask_low_bits(bits: usize) -> u64 {
    debug_assert!((1..WORD_BITS).contains(&bits));
    (1u64 << bits) - 1
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.count_zeros(), 126);
        // Setting the same bit twice is idempotent.
        b.set(0);
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn fractions() {
        let mut b = Bitmap::new(4);
        b.set(1);
        assert_eq!(b.fraction_ones(), 0.25);
        assert_eq!(b.fraction_zeros(), 0.75);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::new(8).set(8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let _ = Bitmap::new(0);
    }

    #[test]
    fn and_or_basics() {
        let mut a = Bitmap::new(8);
        a.set(0);
        a.set(1);
        let mut b = Bitmap::new(8);
        b.set(1);
        b.set(2);

        let mut and = a.clone();
        and.and_assign(&b).expect("same length");
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![1]);

        let mut or = a.clone();
        or.or_assign(&b).expect("same length");
        assert_eq!(or.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn and_length_mismatch_is_error() {
        let mut a = Bitmap::new(8);
        let b = Bitmap::new(16);
        assert_eq!(
            a.and_assign(&b),
            Err(EstimateError::IncompatibleSizes {
                small: 8,
                large: 16
            })
        );
    }

    #[test]
    fn expand_doubles_pattern() {
        // The Fig. 2 example: B2 replicated once.
        let mut b = Bitmap::new(4);
        b.set(1);
        b.set(2);
        let e = b.expand_to(8).expect("expand");
        assert_eq!(e.iter_ones().collect::<Vec<_>>(), vec![1, 2, 5, 6]);
        assert_eq!(e.fraction_zeros(), b.fraction_zeros());
    }

    #[test]
    fn expand_identity() {
        let mut b = Bitmap::new(64);
        b.set(7);
        let e = b.expand_to(64).expect("expand");
        assert_eq!(e, b);
    }

    #[test]
    fn expand_sub_word_to_multi_word() {
        let mut b = Bitmap::new(2);
        b.set(1);
        let e = b.expand_to(256).expect("expand");
        assert_eq!(e.count_ones(), 128);
        for i in 0..256 {
            assert_eq!(e.get(i), i % 2 == 1, "bit {i}");
        }
    }

    #[test]
    fn expand_word_multiple() {
        let mut b = Bitmap::new(128);
        b.set(5);
        b.set(127);
        let e = b.expand_to(512).expect("expand");
        assert_eq!(e.count_ones(), 8);
        for k in 0..4 {
            assert!(e.get(5 + 128 * k));
            assert!(e.get(127 + 128 * k));
        }
    }

    #[test]
    fn expand_rejects_shrink_and_non_pow2() {
        let b = Bitmap::new(16);
        assert!(matches!(
            b.expand_to(8),
            Err(EstimateError::IncompatibleSizes { .. })
        ));
        assert!(matches!(
            b.expand_to(24),
            Err(EstimateError::NotPowerOfTwo { len: 24 })
        ));
        let c = Bitmap::new(12);
        assert!(matches!(
            c.expand_to(24),
            Err(EstimateError::NotPowerOfTwo { len: 12 })
        ));
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut b = Bitmap::new(200);
        for i in [0usize, 1, 63, 64, 65, 128, 199] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut b = Bitmap::new(100);
        b.set(42);
        let json = serde_json::to_string(&b).expect("serialize");
        let back: Bitmap = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, b);
    }

    #[test]
    fn byte_roundtrip_various_lengths() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 100, 256, 1000] {
            let mut b = Bitmap::new(len);
            let mut state = 0x1234u64;
            for i in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 63 == 1 {
                    b.set(i);
                }
            }
            let bytes = b.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            let back = Bitmap::from_bytes(len, &bytes).expect("roundtrip");
            assert_eq!(back, b, "length {len}");
        }
    }

    #[test]
    fn from_bytes_rejects_bad_input() {
        assert!(
            Bitmap::from_bytes(16, &[0u8; 3]).is_err(),
            "wrong byte count"
        );
        assert!(Bitmap::from_bytes(0, &[]).is_err(), "zero length");
        // A set bit beyond the logical length is corruption.
        assert!(Bitmap::from_bytes(4, &[0b0001_0000]).is_err());
        assert!(Bitmap::from_bytes(4, &[0b0000_1111]).is_ok());
    }

    #[test]
    fn byte_layout_is_little_endian_bits() {
        let mut b = Bitmap::new(16);
        b.set(0);
        b.set(9);
        assert_eq!(b.to_bytes(), vec![0b0000_0001, 0b0000_0010]);
    }

    proptest! {
        /// The core membership property behind the paper's Sec. III-A proof:
        /// if `B[h mod len] = 1` then after expansion `E[h mod target] = 1`.
        #[test]
        fn expansion_preserves_membership(
            len_pow in 0u32..10,
            extra_pow in 0u32..6,
            hashes in proptest::collection::vec(any::<u64>(), 1..40),
        ) {
            let len = 1usize << len_pow;
            let target = len << extra_pow;
            let mut b = Bitmap::new(len);
            for &h in &hashes {
                b.set((h % len as u64) as usize);
            }
            let e = b.expand_to(target).expect("expand");
            for &h in &hashes {
                prop_assert!(e.get((h % target as u64) as usize));
            }
            // Expansion preserves the zero fraction exactly.
            prop_assert!((e.fraction_zeros() - b.fraction_zeros()).abs() < 1e-12);
        }

        /// AND of expanded maps only keeps bits set in every source map.
        #[test]
        fn and_is_intersection(
            ones_a in proptest::collection::btree_set(0usize..64, 0..32),
            ones_b in proptest::collection::btree_set(0usize..64, 0..32),
        ) {
            let mut a = Bitmap::new(64);
            for &i in &ones_a { a.set(i); }
            let mut b = Bitmap::new(64);
            for &i in &ones_b { b.set(i); }
            let mut joined = a.clone();
            joined.and_assign(&b).expect("same size");
            let expected: Vec<usize> = ones_a.intersection(&ones_b).copied().collect();
            prop_assert_eq!(joined.iter_ones().collect::<Vec<_>>(), expected);
        }

        /// OR is union.
        #[test]
        fn or_is_union(
            ones_a in proptest::collection::btree_set(0usize..64, 0..32),
            ones_b in proptest::collection::btree_set(0usize..64, 0..32),
        ) {
            let mut a = Bitmap::new(64);
            for &i in &ones_a { a.set(i); }
            let mut b = Bitmap::new(64);
            for &i in &ones_b { b.set(i); }
            let mut joined = a.clone();
            joined.or_assign(&b).expect("same size");
            let expected: Vec<usize> = ones_a.union(&ones_b).copied().collect();
            prop_assert_eq!(joined.iter_ones().collect::<Vec<_>>(), expected);
        }

        /// counts always agree with a naive bit-by-bit scan.
        #[test]
        fn counts_agree_with_scan(
            len in 1usize..300,
            seed in any::<u64>(),
        ) {
            let mut b = Bitmap::new(len);
            let mut state = seed;
            for i in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if state >> 63 == 1 {
                    b.set(i);
                }
            }
            let scanned = (0..len).filter(|&i| b.get(i)).count();
            prop_assert_eq!(b.count_ones(), scanned);
            prop_assert_eq!(b.count_zeros(), len - scanned);
        }
    }
}
