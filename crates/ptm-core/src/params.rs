//! System-wide parameters: the load factor `f`, the representative-bit count
//! `s`, and the power-of-two bitmap sizing rule (paper Eq. 2).

use serde::{Deserialize, Serialize};

/// A bitmap size constrained to be a power of two.
///
/// The paper sets every record size as `m = 2^⌈log2(n̄·f)⌉` (Eq. 2) so that
/// records of different sizes can be joined by replication-expansion
/// (Sec. III-A). The newtype makes "power of two" a compile-time-visible
/// invariant instead of a runtime convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "usize", into = "usize")]
pub struct BitmapSize(usize);

impl BitmapSize {
    /// Wraps a length that is already a power of two.
    ///
    /// # Errors
    ///
    /// Returns the raw value back if it is zero or not a power of two.
    pub fn new(len: usize) -> Result<Self, usize> {
        if len.is_power_of_two() {
            Ok(Self(len))
        } else {
            Err(len)
        }
    }

    /// Paper Eq. (2): the smallest power of two that is at least
    /// `expected_volume × load_factor`.
    ///
    /// # Panics
    ///
    /// Panics if the product is non-positive or non-finite — expected
    /// volumes come from historical averages and must be positive.
    pub fn for_expected_volume(expected_volume: f64, load_factor: f64) -> Self {
        let target = expected_volume * load_factor;
        assert!(
            target.is_finite() && target > 0.0,
            "expected volume x load factor must be positive and finite, got {target}"
        );
        let bits = target.log2().ceil() as u32;
        Self(1usize << bits.min(usize::BITS - 1))
    }

    /// The raw length in bits.
    pub fn get(&self) -> usize {
        self.0
    }
}

impl TryFrom<usize> for BitmapSize {
    type Error = String;

    fn try_from(value: usize) -> Result<Self, Self::Error> {
        Self::new(value).map_err(|v| format!("{v} is not a power of two"))
    }
}

impl From<BitmapSize> for usize {
    fn from(value: BitmapSize) -> usize {
        value.0
    }
}

impl std::fmt::Display for BitmapSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The two tunables the paper exposes: accuracy–privacy is traded off by the
/// load factor `f` and the representative-bit count `s` (Sec. VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    load_factor: f64,
    num_representatives: u32,
}

impl SystemParams {
    /// Creates parameters after validating them.
    ///
    /// # Panics
    ///
    /// Panics if `load_factor` is not positive and finite or `s` is zero.
    pub fn new(load_factor: f64, num_representatives: u32) -> Self {
        assert!(
            load_factor.is_finite() && load_factor > 0.0,
            "load factor must be positive, got {load_factor}"
        );
        assert!(num_representatives >= 1, "s must be at least 1");
        Self {
            load_factor,
            num_representatives,
        }
    }

    /// The paper's recommended compromise: `f = 2`, `s = 3` ("we believe
    /// f = 2 and s = 3 make a good compromise", Sec. VI-C).
    pub fn paper_default() -> Self {
        Self::new(2.0, 3)
    }

    /// Load factor `f`: ratio of bitmap size to expected traffic volume.
    pub fn load_factor(&self) -> f64 {
        self.load_factor
    }

    /// Representative-bit count `s`: how many bit positions a vehicle may
    /// occupy across locations.
    pub fn num_representatives(&self) -> u32 {
        self.num_representatives
    }

    /// Sizes a bitmap for the expected per-period volume at an RSU (Eq. 2).
    pub fn bitmap_size(&self, expected_volume: f64) -> BitmapSize {
        BitmapSize::for_expected_volume(expected_volume, self.load_factor)
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_matches_table_one() {
        // Table I of the paper lists the m produced by Eq. (2) with f = 2
        // for the Sioux Falls location volumes. Reproduce every row.
        let params = SystemParams::paper_default();
        let rows = [
            (213_000.0, 524_288),
            (140_000.0, 524_288),
            (121_000.0, 262_144),
            (78_000.0, 262_144),
            (76_000.0, 262_144),
            (47_000.0, 131_072),
            (40_000.0, 131_072),
            (28_000.0, 65_536),
            (451_000.0, 1_048_576), // L' in the same experiment
        ];
        for (volume, expected_m) in rows {
            assert_eq!(
                params.bitmap_size(volume).get(),
                expected_m,
                "volume {volume}"
            );
        }
    }

    #[test]
    fn exact_powers_stay_exact() {
        // n̄·f already a power of two: ceil(log2) keeps it.
        assert_eq!(BitmapSize::for_expected_volume(512.0, 2.0).get(), 1024);
        assert_eq!(BitmapSize::for_expected_volume(1024.0, 1.0).get(), 1024);
    }

    #[test]
    fn small_volumes() {
        assert_eq!(BitmapSize::for_expected_volume(1.0, 1.0).get(), 1);
        assert_eq!(BitmapSize::for_expected_volume(1.5, 1.0).get(), 2);
        assert_eq!(BitmapSize::for_expected_volume(3.0, 1.0).get(), 4);
    }

    #[test]
    fn fractional_load_factors() {
        // f = 1.5 as in the Table II sweep.
        assert_eq!(BitmapSize::for_expected_volume(1000.0, 1.5).get(), 2048);
        assert_eq!(BitmapSize::for_expected_volume(1000.0, 2.5).get(), 4096);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_volume_panics() {
        let _ = BitmapSize::for_expected_volume(0.0, 2.0);
    }

    #[test]
    fn new_rejects_non_powers() {
        assert!(BitmapSize::new(0).is_err());
        assert!(BitmapSize::new(3).is_err());
        assert!(BitmapSize::new(12).is_err());
        assert_eq!(BitmapSize::new(16).map(|s| s.get()), Ok(16));
    }

    #[test]
    fn serde_roundtrip_and_rejects_bad_values() {
        let size = BitmapSize::new(4096).expect("power of two");
        let json = serde_json::to_string(&size).expect("serialize");
        assert_eq!(json, "4096");
        let back: BitmapSize = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, size);
        assert!(serde_json::from_str::<BitmapSize>("4095").is_err());
    }

    #[test]
    fn params_accessors() {
        let p = SystemParams::new(3.0, 5);
        assert_eq!(p.load_factor(), 3.0);
        assert_eq!(p.num_representatives(), 5);
        let d = SystemParams::default();
        assert_eq!(d.load_factor(), 2.0);
        assert_eq!(d.num_representatives(), 3);
    }

    #[test]
    #[should_panic(expected = "s must be at least 1")]
    fn zero_s_panics() {
        let _ = SystemParams::new(2.0, 0);
    }

    #[test]
    fn display() {
        assert_eq!(BitmapSize::new(64).unwrap().to_string(), "64");
    }
}
