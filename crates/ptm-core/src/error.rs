//! Error types for estimation and record manipulation.

use std::fmt;

/// Why an estimate (or a join) could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EstimateError {
    /// No traffic records were supplied.
    NoRecords,
    /// The operation needs at least `required` records but only `actual`
    /// were supplied (e.g. the point persistent estimator needs two halves).
    TooFewRecords {
        /// Minimum number of records the operation needs.
        required: usize,
        /// Number of records actually supplied.
        actual: usize,
    },
    /// A bitmap had no zero bits left, so the zero-fraction estimators are
    /// undefined; the record was undersized for the observed traffic.
    Saturated {
        /// Which joined bitmap saturated (diagnostic label, e.g. `"E_a"`).
        which: &'static str,
    },
    /// The measured fractions fell outside the estimator's domain
    /// (`V*,1 + V_a,0 + V_b,0 - 1 <= 0` for the point estimator); statistical
    /// noise overwhelmed the signal.
    Degenerate,
    /// A bitmap length was not a power of two, so replication-expansion is
    /// not defined for it.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// Bitmaps could not be joined because one length does not divide the
    /// other.
    IncompatibleSizes {
        /// Smaller length involved in the join.
        small: usize,
        /// Larger length involved in the join.
        large: usize,
    },
    /// Records from different locations were mixed into a single-location
    /// operation.
    LocationMismatch,
    /// The two location record sets cover different numbers of periods.
    PeriodMismatch {
        /// Periods covered at the first location.
        left: usize,
        /// Periods covered at the second location.
        right: usize,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoRecords => write!(f, "no traffic records supplied"),
            Self::TooFewRecords { required, actual } => {
                write!(f, "need at least {required} records, got {actual}")
            }
            Self::Saturated { which } => {
                write!(
                    f,
                    "joined bitmap {which} has no zero bits; record undersized"
                )
            }
            Self::Degenerate => {
                write!(f, "measured fractions outside the estimator domain")
            }
            Self::NotPowerOfTwo { len } => {
                write!(f, "bitmap length {len} is not a power of two")
            }
            Self::IncompatibleSizes { small, large } => {
                write!(f, "bitmap length {small} does not divide {large}")
            }
            Self::LocationMismatch => {
                write!(
                    f,
                    "records from different locations mixed in a single-location join"
                )
            }
            Self::PeriodMismatch { left, right } => {
                write!(
                    f,
                    "locations cover different period counts ({left} vs {right})"
                )
            }
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(EstimateError, &str)> = vec![
            (EstimateError::NoRecords, "no traffic records"),
            (
                EstimateError::TooFewRecords {
                    required: 2,
                    actual: 1,
                },
                "at least 2",
            ),
            (EstimateError::Saturated { which: "E_a" }, "E_a"),
            (EstimateError::Degenerate, "domain"),
            (EstimateError::NotPowerOfTwo { len: 3 }, "3"),
            (
                EstimateError::IncompatibleSizes {
                    small: 8,
                    large: 12,
                },
                "8",
            ),
            (EstimateError::LocationMismatch, "locations"),
            (EstimateError::PeriodMismatch { left: 3, right: 5 }, "3"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should mention {needle:?}");
        }
    }

    #[test]
    fn error_trait_object_safe() {
        fn take(_: &dyn std::error::Error) {}
        take(&EstimateError::NoRecords);
    }
}
