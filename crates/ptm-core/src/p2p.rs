//! Point-to-point persistent traffic estimation (paper Sec. IV).
//!
//! Given records `{B_1, …, B_t}` from location `L` and `{B'_1, …, B'_t}`
//! from location `L'` over the same periods, estimate the number of vehicles
//! that passed **both** locations in **every** period.
//!
//! Two-level join: AND-join each location into `E_*` (size `m`) and `E'_*`
//! (size `m'`, w.l.o.g. `m ≤ m'`), expand `E_*` to `S_*` of size `m'`, and
//! **OR** them into `E''_*`. (OR because the AND of cross-location maps has
//! no closed-form estimator — a common vehicle generally sets *different*
//! bits at the two locations.) The zero probability of an `E''_*` bit solves
//! to Eq. (21):
//!
//! ```text
//! n̂'' = s · m' · (ln V''_*,0 − ln V_*,0 − ln V'_*,0)
//! ```

use crate::bitmap::Bitmap;
use crate::error::EstimateError;
use crate::join::and_join_records;
use crate::record::TrafficRecord;

/// Which algebraic form of the estimator to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum P2pForm {
    /// The paper's Eq. (21), using the `ln(1+x) ≈ x` approximation — exact
    /// in the large-`m'` limit.
    #[default]
    Paper,
    /// Solves Eq. (19) without the approximation:
    /// `n̂'' = ln(V''₀ / (V₀·V'₀)) / ln(1 + 1/(s·m' − s))`.
    /// An ablation; it differs from [`P2pForm::Paper`] by `O(1/m')`.
    Exact,
}

/// The proposed point-to-point persistent estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointToPointEstimator {
    s: u32,
    form: P2pForm,
}

impl PointToPointEstimator {
    /// Creates the estimator for a system configured with `s` representative
    /// bits per vehicle.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    pub fn new(s: u32) -> Self {
        assert!(s >= 1, "s must be at least 1");
        Self {
            s,
            form: P2pForm::Paper,
        }
    }

    /// Selects the algebraic form (ablation).
    pub fn with_form(mut self, form: P2pForm) -> Self {
        self.form = form;
        self
    }

    /// Estimates the point-to-point persistent volume.
    ///
    /// # Errors
    ///
    /// * [`EstimateError::NoRecords`] — either location has no records;
    /// * [`EstimateError::PeriodMismatch`] — the locations cover different
    ///   numbers of periods;
    /// * [`EstimateError::LocationMismatch`] — a record set mixes locations;
    /// * [`EstimateError::Saturated`] — a joined map has no zero bits.
    pub fn estimate(
        &self,
        records_l: &[TrafficRecord],
        records_lp: &[TrafficRecord],
    ) -> Result<f64, EstimateError> {
        if records_l.is_empty() || records_lp.is_empty() {
            return Err(EstimateError::NoRecords);
        }
        if records_l.len() != records_lp.len() {
            return Err(EstimateError::PeriodMismatch {
                left: records_l.len(),
                right: records_lp.len(),
            });
        }
        let e_star = and_join_records(records_l)?;
        let e_star_prime = and_join_records(records_lp)?;
        self.estimate_joined(&e_star, &e_star_prime)
    }

    /// Applies the estimator to already AND-joined per-location maps.
    ///
    /// # Errors
    ///
    /// Same saturation / size conditions as
    /// [`PointToPointEstimator::estimate`].
    pub fn estimate_joined(
        &self,
        e_star: &Bitmap,
        e_star_prime: &Bitmap,
    ) -> Result<f64, EstimateError> {
        let _t = ptm_obs::span!("core.p2p.estimate");
        ptm_obs::counter!("core.p2p.ops").inc();
        // W.l.o.g. the second map is the larger one (the paper's m <= m').
        let (small, large) = if e_star.len() <= e_star_prime.len() {
            (e_star, e_star_prime)
        } else {
            (e_star_prime, e_star)
        };
        let m_prime = large.len();

        let v0_small = small.fraction_zeros();
        let v0_large = large.fraction_zeros();
        if v0_small <= 0.0 {
            return Err(EstimateError::Saturated { which: "E_*" });
        }
        if v0_large <= 0.0 {
            return Err(EstimateError::Saturated { which: "E'_*" });
        }

        // Second-level expansion and OR-join.
        let s_star = small.expand_to(m_prime)?;
        let mut e_double = s_star;
        e_double.or_assign(large)?;
        let v0_double = e_double.fraction_zeros();
        if v0_double <= 0.0 {
            return Err(EstimateError::Saturated { which: "E''_*" });
        }

        let log_ratio = v0_double.ln() - v0_small.ln() - v0_large.ln();
        let s = self.s as f64;
        let m = m_prime as f64;
        Ok(match self.form {
            P2pForm::Paper => s * m * log_ratio,
            P2pForm::Exact => log_ratio / (1.0 + 1.0 / (s * m - s)).ln(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{EncodingScheme, LocationId, VehicleSecrets};
    use crate::params::BitmapSize;
    use crate::record::{PeriodId, TrafficRecord};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct Scenario {
        records_l: Vec<TrafficRecord>,
        records_lp: Vec<TrafficRecord>,
    }

    /// Two locations over t periods: `common` vehicles pass both every
    /// period; each location additionally sees fresh transient vehicles.
    fn build(
        seed: u64,
        t: usize,
        m_l: usize,
        m_lp: usize,
        common: usize,
        transient_l: usize,
        transient_lp: usize,
    ) -> Scenario {
        let scheme = EncodingScheme::new(0xBEEF, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let loc_l = LocationId::new(10);
        let loc_lp = LocationId::new(20);
        let size_l = BitmapSize::new(m_l).expect("pow2");
        let size_lp = BitmapSize::new(m_lp).expect("pow2");
        let commons: Vec<VehicleSecrets> = (0..common)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let mut records_l = Vec::new();
        let mut records_lp = Vec::new();
        for p in 0..t {
            let mut rl = TrafficRecord::new(loc_l, PeriodId::new(p as u32), size_l);
            let mut rlp = TrafficRecord::new(loc_lp, PeriodId::new(p as u32), size_lp);
            for v in &commons {
                rl.encode(&scheme, v);
                rlp.encode(&scheme, v);
            }
            for _ in 0..transient_l {
                let v = VehicleSecrets::generate(&mut rng, 3);
                rl.encode(&scheme, &v);
            }
            for _ in 0..transient_lp {
                let v = VehicleSecrets::generate(&mut rng, 3);
                rlp.encode(&scheme, &v);
            }
            records_l.push(rl);
            records_lp.push(rlp);
        }
        Scenario {
            records_l,
            records_lp,
        }
    }

    #[test]
    fn recovers_p2p_volume_equal_sizes() {
        let sc = build(1, 5, 1 << 14, 1 << 14, 1500, 4000, 4000);
        let est = PointToPointEstimator::new(3)
            .estimate(&sc.records_l, &sc.records_lp)
            .expect("estimate");
        let rel = (est - 1500.0).abs() / 1500.0;
        assert!(rel < 0.12, "estimate {est}, relative error {rel}");
    }

    #[test]
    fn recovers_p2p_volume_different_sizes() {
        // m'/m = 8, as in Table I columns 6-7.
        let sc = build(2, 5, 1 << 12, 1 << 15, 800, 1500, 14000);
        let est = PointToPointEstimator::new(3)
            .estimate(&sc.records_l, &sc.records_lp)
            .expect("estimate");
        let rel = (est - 800.0).abs() / 800.0;
        assert!(rel < 0.15, "estimate {est}, relative error {rel}");
    }

    #[test]
    fn argument_order_does_not_matter() {
        let sc = build(3, 3, 1 << 12, 1 << 14, 500, 1000, 4000);
        let e = PointToPointEstimator::new(3);
        let a = e.estimate(&sc.records_l, &sc.records_lp).expect("a");
        let b = e.estimate(&sc.records_lp, &sc.records_l).expect("b");
        assert_eq!(a, b);
    }

    #[test]
    fn zero_common_vehicles() {
        let sc = build(4, 5, 1 << 13, 1 << 13, 0, 3000, 3000);
        let est = PointToPointEstimator::new(3)
            .estimate(&sc.records_l, &sc.records_lp)
            .expect("estimate");
        assert!(est.abs() < 120.0, "estimate {est} should be near zero");
    }

    #[test]
    fn exact_form_close_to_paper_form() {
        let sc = build(5, 5, 1 << 13, 1 << 14, 600, 2000, 5000);
        let paper = PointToPointEstimator::new(3)
            .estimate(&sc.records_l, &sc.records_lp)
            .expect("paper");
        let exact = PointToPointEstimator::new(3)
            .with_form(P2pForm::Exact)
            .estimate(&sc.records_l, &sc.records_lp)
            .expect("exact");
        assert!(
            (paper - exact).abs() / exact.abs().max(1.0) < 1e-3,
            "paper {paper} vs exact {exact}"
        );
    }

    #[test]
    fn period_mismatch_detected() {
        let sc = build(6, 3, 1 << 10, 1 << 10, 10, 50, 50);
        let short = &sc.records_lp[..2];
        assert_eq!(
            PointToPointEstimator::new(3).estimate(&sc.records_l, short),
            Err(EstimateError::PeriodMismatch { left: 3, right: 2 })
        );
    }

    #[test]
    fn empty_inputs_detected() {
        let sc = build(7, 3, 1 << 10, 1 << 10, 10, 50, 50);
        assert_eq!(
            PointToPointEstimator::new(3).estimate(&[], &sc.records_lp),
            Err(EstimateError::NoRecords)
        );
        assert_eq!(
            PointToPointEstimator::new(3).estimate(&sc.records_l, &[]),
            Err(EstimateError::NoRecords)
        );
    }

    #[test]
    fn persistent_only_at_one_location_is_not_p2p_persistent() {
        // Vehicles persistent at L but never visiting L' must not inflate
        // the p2p estimate.
        let scheme = EncodingScheme::new(0xBEEF, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let loc_l = LocationId::new(10);
        let loc_lp = LocationId::new(20);
        let size = BitmapSize::new(1 << 13).expect("pow2");
        let l_only: Vec<VehicleSecrets> = (0..1000)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let both: Vec<VehicleSecrets> = (0..500)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let mut records_l = Vec::new();
        let mut records_lp = Vec::new();
        for p in 0..5u32 {
            let mut rl = TrafficRecord::new(loc_l, PeriodId::new(p), size);
            let mut rlp = TrafficRecord::new(loc_lp, PeriodId::new(p), size);
            for v in l_only.iter().chain(both.iter()) {
                rl.encode(&scheme, v);
            }
            for v in &both {
                rlp.encode(&scheme, v);
            }
            for _ in 0..2000 {
                let v = VehicleSecrets::generate(&mut rng, 3);
                rlp.encode(&scheme, &v);
            }
            records_l.push(rl);
            records_lp.push(rlp);
        }
        let est = PointToPointEstimator::new(3)
            .estimate(&records_l, &records_lp)
            .expect("estimate");
        let rel = (est - 500.0).abs() / 500.0;
        assert!(
            rel < 0.2,
            "estimate {est} should track the 500 true p2p vehicles"
        );
    }

    #[test]
    #[should_panic(expected = "s must be at least 1")]
    fn zero_s_panics() {
        let _ = PointToPointEstimator::new(0);
    }

    #[test]
    fn saturated_map_detected() {
        let mut full = Bitmap::new(8);
        for i in 0..8 {
            full.set(i);
        }
        let ok = Bitmap::new(8);
        let est = PointToPointEstimator::new(3);
        assert!(matches!(
            est.estimate_joined(&full, &ok),
            Err(EstimateError::Saturated { .. })
        ));
    }
}
