//! Privacy-preserving vehicle encoding (paper Sec. II-D).
//!
//! When a vehicle `v` passes the RSU at location `L`, it computes
//!
//! ```text
//! h_v = H(v ⊕ K_v ⊕ C[H(L ⊕ v) mod s]) mod m
//! ```
//!
//! where `K_v` is a private key known only to the vehicle and `C` is a
//! per-vehicle array of `s` secret random constants. The inner hash picks one
//! of the vehicle's `s` *representative bits* as a function of the location;
//! the outer hash maps that representative to a bit index. Two properties
//! follow (and are property-tested below):
//!
//! 1. different vehicles may collide on the same bit (mixing), and
//! 2. the same vehicle may set different bits at different locations
//!    (unlinkability), but always the *same* bit at the same location in
//!    every period (which is what makes AND-joins retain persistent traffic).

use ptm_crypto::SipHash24;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A vehicle's public identity (e.g. derived from its VIN).
///
/// The identity itself is never transmitted; it only enters hashes together
/// with the vehicle's secret material.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VehicleId(u64);

impl VehicleId {
    /// Wraps a raw 64-bit identity.
    pub fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A location identity: the coordinates `L` broadcast in RSU beacons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(u64);

impl LocationId {
    /// Wraps a raw location code.
    pub fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Everything a vehicle keeps on board: its ID, private key `K_v`, and the
/// secret constant array `C` of length `s`.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VehicleSecrets {
    id: VehicleId,
    private_key: u64,
    constants: Vec<u64>,
}

impl std::fmt::Debug for VehicleSecrets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The ID is fine to show in debug output; the key and constants are
        // the privacy-critical material and stay hidden.
        f.debug_struct("VehicleSecrets")
            .field("id", &self.id)
            .field("private_key", &"<redacted>")
            .field(
                "constants",
                &format_args!("<{} redacted>", self.constants.len()),
            )
            .finish()
    }
}

impl VehicleSecrets {
    /// Assembles secrets from explicit parts (useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if `constants` is empty — `s >= 1` is required.
    pub fn from_parts(id: VehicleId, private_key: u64, constants: Vec<u64>) -> Self {
        assert!(
            !constants.is_empty(),
            "constant array C must have s >= 1 entries"
        );
        Self {
            id,
            private_key,
            constants,
        }
    }

    /// Generates a fresh vehicle with random ID, key, and `s` constants.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, s: u32) -> Self {
        let id = VehicleId::new(rng.gen());
        Self::generate_with_id(rng, id, s)
    }

    /// Generates secret material for a vehicle with a known ID.
    pub fn generate_with_id<R: Rng + ?Sized>(rng: &mut R, id: VehicleId, s: u32) -> Self {
        assert!(s >= 1, "s must be at least 1");
        Self {
            id,
            private_key: rng.gen(),
            constants: (0..s).map(|_| rng.gen()).collect(),
        }
    }

    /// The vehicle's identity.
    pub fn id(&self) -> VehicleId {
        self.id
    }

    /// `s`, the number of representative bits.
    pub fn num_representatives(&self) -> u32 {
        self.constants.len() as u32
    }
}

/// The public hash scheme shared by all vehicles and RSUs.
///
/// `H` is instantiated with SipHash-2-4 under a system-wide key; the key is
/// public (it only provides hash-universe separation between simulations),
/// the per-vehicle material is what carries the privacy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingScheme {
    hasher: SipHash24,
    s: u32,
}

impl EncodingScheme {
    /// Creates a scheme from a system-wide hash seed and the representative
    /// count `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    pub fn new(hash_seed: u64, s: u32) -> Self {
        assert!(s >= 1, "s must be at least 1");
        Self {
            hasher: SipHash24::new(hash_seed, hash_seed.rotate_left(31) ^ 0x9e37_79b9_7f4a_7c15),
            s,
        }
    }

    /// `s`, the number of representative bits per vehicle.
    pub fn num_representatives(&self) -> u32 {
        self.s
    }

    /// The location-dependent representative choice `i = H(L ⊕ v) mod s`.
    pub fn representative_choice(&self, vehicle: VehicleId, location: LocationId) -> u32 {
        (self.hasher.hash_u64(location.get() ^ vehicle.get()) % self.s as u64) as u32
    }

    /// The full 64-bit hash of representative `i`,
    /// `H(v ⊕ K_v ⊕ C[i])` **before** the final `mod m` reduction.
    ///
    /// Keeping the pre-reduction value around is what lets records of
    /// different sizes stay consistent: reducing modulo any power of two
    /// divides out compatibly (`(h mod m) mod l = h mod l` when `l | m`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the vehicle's constant array.
    pub fn representative_hash(&self, vehicle: &VehicleSecrets, i: u32) -> u64 {
        let c = vehicle.constants[i as usize];
        self.hasher
            .hash_u64(vehicle.id.get() ^ vehicle.private_key ^ c)
    }

    /// The paper's `h_v` before the `mod m` reduction: the hash of the
    /// representative chosen for `location`.
    pub fn encode(&self, vehicle: &VehicleSecrets, location: LocationId) -> u64 {
        let i = self.representative_choice(vehicle.id, location);
        self.representative_hash(vehicle, i)
    }

    /// The bit index the vehicle reports to an RSU with bitmap size `m`:
    /// `h_v mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn encode_index(&self, vehicle: &VehicleSecrets, location: LocationId, m: usize) -> usize {
        assert!(m > 0, "bitmap size must be positive");
        (self.encode(vehicle, location) % m as u64) as usize
    }

    /// All `s` representative bit indices of a vehicle in a bitmap of size
    /// `m` (the bits `B[h_v(i)]` of Sec. II-D).
    pub fn representative_bits(&self, vehicle: &VehicleSecrets, m: usize) -> Vec<usize> {
        (0..vehicle.num_representatives())
            .map(|i| (self.representative_hash(vehicle, i) % m as u64) as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scheme(s: u32) -> EncodingScheme {
        EncodingScheme::new(0xABCD_EF01, s)
    }

    fn vehicle(seed: u64, s: u32) -> VehicleSecrets {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        VehicleSecrets::generate(&mut rng, s)
    }

    #[test]
    fn same_vehicle_same_location_is_deterministic() {
        let sch = scheme(3);
        let v = vehicle(1, 3);
        let l = LocationId::new(42);
        assert_eq!(sch.encode(&v, l), sch.encode(&v, l));
        assert_eq!(sch.encode_index(&v, l, 1024), sch.encode_index(&v, l, 1024));
    }

    #[test]
    fn representative_choice_in_range() {
        let sch = scheme(5);
        let v = vehicle(2, 5);
        for loc in 0..100u64 {
            let i = sch.representative_choice(v.id(), LocationId::new(loc));
            assert!(i < 5);
        }
    }

    #[test]
    fn encoding_consistent_across_record_sizes() {
        // The power-of-two consistency that makes expansion sound:
        // (h mod m) mod l == h mod l for l | m.
        let sch = scheme(3);
        let v = vehicle(3, 3);
        let l = LocationId::new(9);
        let idx_large = sch.encode_index(&v, l, 4096);
        let idx_small = sch.encode_index(&v, l, 512);
        assert_eq!(idx_large % 512, idx_small);
    }

    #[test]
    fn different_locations_usually_differ() {
        // With s = 3 representatives, encoding should vary across locations
        // for most vehicles.
        let sch = scheme(3);
        let v = vehicle(4, 3);
        let indices: std::collections::BTreeSet<u64> = (0..50)
            .map(|loc| sch.encode(&v, LocationId::new(loc)))
            .collect();
        // At most s distinct values, and (overwhelmingly likely) more than 1.
        assert!(indices.len() <= 3);
        assert!(
            indices.len() > 1,
            "vehicle never changed bits across 50 locations"
        );
    }

    #[test]
    fn at_most_s_distinct_hashes_across_locations() {
        for s in [1u32, 2, 4, 8] {
            let sch = scheme(s);
            let v = vehicle(5, s);
            let distinct: std::collections::BTreeSet<u64> = (0..500)
                .map(|loc| sch.encode(&v, LocationId::new(loc)))
                .collect();
            assert!(
                distinct.len() <= s as usize,
                "s={s}: {} distinct encodings",
                distinct.len()
            );
        }
    }

    #[test]
    fn s_equals_one_pins_a_single_bit_everywhere() {
        let sch = scheme(1);
        let v = vehicle(6, 1);
        let first = sch.encode(&v, LocationId::new(0));
        for loc in 1..100u64 {
            assert_eq!(sch.encode(&v, LocationId::new(loc)), first);
        }
    }

    #[test]
    fn encode_matches_representative_bits() {
        let sch = scheme(4);
        let v = vehicle(7, 4);
        let m = 1 << 14;
        let reps = sch.representative_bits(&v, m);
        assert_eq!(reps.len(), 4);
        for loc in 0..20u64 {
            let idx = sch.encode_index(&v, LocationId::new(loc), m);
            assert!(
                reps.contains(&idx),
                "encoded index must be one of the representatives"
            );
        }
    }

    #[test]
    fn vehicles_mix_onto_shared_bits() {
        // In a tiny bitmap, different vehicles must collide (pigeonhole),
        // demonstrating property (1) of Sec. II-D.
        let sch = scheme(3);
        let l = LocationId::new(1);
        let mut seen = std::collections::HashMap::new();
        let mut collision = false;
        for seed in 0..64u64 {
            let v = vehicle(seed + 100, 3);
            let idx = sch.encode_index(&v, l, 16);
            if seen.insert(idx, v.id()).is_some() {
                collision = true;
            }
        }
        assert!(collision);
    }

    #[test]
    fn secrets_debug_redacted() {
        let v = vehicle(8, 3);
        let text = format!("{v:?}");
        assert!(text.contains("redacted"));
        // The ID is deliberately shown (it is not the secret material).
        assert!(text.contains(&format!("{}", v.id().get())));
    }

    #[test]
    #[should_panic(expected = "s >= 1")]
    fn empty_constants_panics() {
        let _ = VehicleSecrets::from_parts(VehicleId::new(1), 2, vec![]);
    }

    #[test]
    fn serde_roundtrip() {
        let v = vehicle(9, 3);
        let json = serde_json::to_string(&v).expect("serialize");
        let back: VehicleSecrets = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, v);
    }

    proptest! {
        /// Uniformity smoke test: across many vehicles, bit indices should
        /// cover the space without gross skew.
        #[test]
        fn indices_cover_small_space(seed in any::<u64>()) {
            let sch = scheme(3);
            let l = LocationId::new(77);
            let mut counts = [0usize; 8];
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..400 {
                let v = VehicleSecrets::generate(&mut rng, 3);
                counts[sch.encode_index(&v, l, 8)] += 1;
            }
            // Expected 50 per bucket; require every bucket nonempty and no
            // bucket hoarding more than half the mass.
            for (i, &c) in counts.iter().enumerate() {
                prop_assert!(c > 0, "bucket {i} empty");
                prop_assert!(c < 200, "bucket {i} holds {c} of 400");
            }
        }

        /// mod-compatibility across arbitrary power-of-two pairs.
        #[test]
        fn mod_compatibility(seed in any::<u64>(), small_pow in 0u32..10, extra in 0u32..6) {
            let sch = scheme(3);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let v = VehicleSecrets::generate(&mut rng, 3);
            let l = LocationId::new(5);
            let small = 1usize << small_pow;
            let large = small << extra;
            prop_assert_eq!(
                sch.encode_index(&v, l, large) % small,
                sch.encode_index(&v, l, small)
            );
        }
    }
}
