//! Property tests for the wire codec: any syntactically valid message
//! round-trips, and no input buffer can panic the decoder.

use proptest::prelude::*;
use ptm_net::mac::TempMac;
use ptm_net::message::{Ack, Message, Report};
use ptm_net::wire::{decode, encode};

fn arb_report() -> impl Strategy<Value = Report> {
    (
        any::<[u8; 6]>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<[u8; 32]>(),
    )
        .prop_map(|(mac, dh_public, nonce, ciphertext, tag)| Report {
            mac: TempMac::from_bytes(mac),
            dh_public,
            nonce,
            ciphertext,
            tag,
        })
}

proptest! {
    #[test]
    fn report_roundtrip(report in arb_report()) {
        let bytes = encode(&Message::Report(report.clone()));
        prop_assert_eq!(decode(&bytes), Ok(Message::Report(report)));
    }

    #[test]
    fn ack_roundtrip(mac in any::<[u8; 6]>()) {
        let ack = Ack { mac: TempMac::from_bytes(mac) };
        let bytes = encode(&Message::Ack(ack));
        prop_assert_eq!(decode(&bytes), Ok(Message::Ack(ack)));
    }

    /// The decoder must reject or accept arbitrary bytes without panicking,
    /// and anything it accepts must re-encode to the same bytes.
    #[test]
    fn decoder_is_total_and_canonical(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        if let Ok(message) = decode(&bytes) {
            prop_assert_eq!(encode(&message), bytes);
        }
    }
}
