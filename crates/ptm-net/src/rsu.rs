//! The road-side unit (RSU) state machine.
//!
//! Per measurement period, an RSU resets its bitmap, broadcasts beacons at a
//! preset interval, records the (encrypted) bit indices reported by passing
//! vehicles, and uploads the finished traffic record to the central server.
//! It never learns a vehicle identity — only bit indices arriving under
//! one-time MAC addresses.

use crate::message::{self, Ack, Beacon, BeaconPayload, Report};
use ptm_core::encoding::LocationId;
use ptm_core::params::BitmapSize;
use ptm_core::record::{PeriodId, TrafficRecord};
use ptm_crypto::cert::Credential;
use rand::Rng;

/// An RSU mid-period.
#[derive(Debug)]
pub struct Rsu {
    credential: Credential,
    location: LocationId,
    size: BitmapSize,
    record: TrafficRecord,
    period: PeriodId,
    dh_secret: u64,
    dh_public: u64,
    /// Reports accepted this period (diagnostics).
    accepted: u64,
    /// Reports rejected (bad tag / malformed) this period.
    rejected: u64,
}

impl Rsu {
    /// Provisions an RSU with its credential, location, bitmap size and a
    /// fresh ephemeral DH key.
    pub fn new<R: Rng + ?Sized>(
        credential: Credential,
        location: LocationId,
        size: BitmapSize,
        first_period: PeriodId,
        rng: &mut R,
    ) -> Self {
        let (dh_secret, dh_public) = message::dh_keypair(rng.gen());
        Self {
            credential,
            location,
            size,
            record: TrafficRecord::new(location, first_period, size),
            period: first_period,
            dh_secret,
            dh_public,
            accepted: 0,
            rejected: 0,
        }
    }

    /// The RSU's location.
    pub fn location(&self) -> LocationId {
        self.location
    }

    /// Current period.
    pub fn period(&self) -> PeriodId {
        self.period
    }

    /// Reports accepted so far this period.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Reports rejected so far this period.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Builds the beacon to broadcast now.
    pub fn beacon(&self) -> Beacon {
        let payload = BeaconPayload {
            location: self.location,
            bitmap_size: self.size.get(),
            period: self.period,
            dh_public: self.dh_public,
        };
        let signature = self.credential.sign(&payload.signing_bytes());
        Beacon {
            payload,
            certificate: self.credential.certificate().clone(),
            signature,
        }
    }

    /// Processes a vehicle report: derives the session key from the DH
    /// shares, checks the integrity tag, decrypts the index, validates the
    /// range, sets the bit, and acknowledges.
    ///
    /// Returns `None` (and counts a rejection) for reports that fail any
    /// check.
    pub fn handle_report(&mut self, report: &Report) -> Option<Ack> {
        let shared = message::dh_shared(report.dh_public, self.dh_secret);
        let key = message::session_key(shared);
        let expected = message::report_tag(
            &key,
            report.mac,
            report.dh_public,
            report.nonce,
            &report.ciphertext,
        );
        if expected != report.tag {
            self.rejected += 1;
            return None;
        }
        let index = match message::decrypt_index(&key, report.nonce, &report.ciphertext) {
            Some(index) if (index as usize) < self.size.get() => index as usize,
            _ => {
                self.rejected += 1;
                return None;
            }
        };
        self.record.set_reported_index(index);
        self.accepted += 1;
        Some(Ack { mac: report.mac })
    }

    /// Ends the period: returns the finished record and resets state for
    /// `next_period` with a fresh ephemeral DH key.
    pub fn finish_period<R: Rng + ?Sized>(
        &mut self,
        next_period: PeriodId,
        rng: &mut R,
    ) -> TrafficRecord {
        let (dh_secret, dh_public) = message::dh_keypair(rng.gen());
        self.dh_secret = dh_secret;
        self.dh_public = dh_public;
        self.accepted = 0;
        self.rejected = 0;
        self.period = next_period;
        std::mem::replace(
            &mut self.record,
            TrafficRecord::new(self.location, next_period, self.size),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::TempMac;
    use ptm_crypto::cert::TrustedAuthority;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn make_rsu(rng: &mut ChaCha8Rng) -> Rsu {
        let mut authority = TrustedAuthority::from_seed(1);
        let cred = authority.issue("rsu-test");
        Rsu::new(
            cred,
            LocationId::new(5),
            BitmapSize::new(1024).expect("pow2"),
            PeriodId::new(0),
            rng,
        )
    }

    fn valid_report(rsu: &Rsu, rng: &mut ChaCha8Rng, index: u64) -> Report {
        let beacon = rsu.beacon();
        let (a_sec, a_pub) = message::dh_keypair(rng.gen());
        let key = message::session_key(message::dh_shared(beacon.payload.dh_public, a_sec));
        let nonce = rng.gen();
        let ciphertext = message::encrypt_index(&key, nonce, index);
        let mac = TempMac::random(rng);
        let tag = message::report_tag(&key, mac, a_pub, nonce, &ciphertext);
        Report {
            mac,
            dh_public: a_pub,
            nonce,
            ciphertext,
            tag,
        }
    }

    #[test]
    fn beacon_carries_signed_payload() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rsu = make_rsu(&mut rng);
        let beacon = rsu.beacon();
        assert_eq!(beacon.payload.location, LocationId::new(5));
        assert_eq!(beacon.payload.bitmap_size, 1024);
        assert!(beacon
            .certificate
            .subject_key()
            .verify(&beacon.payload.signing_bytes(), &beacon.signature)
            .is_ok());
    }

    #[test]
    fn valid_report_sets_bit_and_acks() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut rsu = make_rsu(&mut rng);
        let report = valid_report(&rsu, &mut rng, 77);
        let ack = rsu.handle_report(&report).expect("accepted");
        assert_eq!(ack.mac, report.mac);
        assert_eq!(rsu.accepted(), 1);
        let record = rsu.finish_period(PeriodId::new(1), &mut rng);
        assert_eq!(record.bitmap().iter_ones().collect::<Vec<_>>(), vec![77]);
    }

    #[test]
    fn tampered_report_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut rsu = make_rsu(&mut rng);
        let mut report = valid_report(&rsu, &mut rng, 10);
        report.ciphertext[0] ^= 1;
        assert!(rsu.handle_report(&report).is_none());
        assert_eq!(rsu.rejected(), 1);
        assert_eq!(rsu.accepted(), 0);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut rsu = make_rsu(&mut rng);
        let report = valid_report(&rsu, &mut rng, 5000); // m = 1024
        assert!(rsu.handle_report(&report).is_none());
        assert_eq!(rsu.rejected(), 1);
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut rsu = make_rsu(&mut rng);
        let mut report = valid_report(&rsu, &mut rng, 10);
        report.ciphertext.truncate(4);
        // Recompute a valid tag over the truncated ciphertext so the length
        // check (not the tag) is what rejects it.
        let (a_sec, _) = message::dh_keypair(1);
        let _ = a_sec; // tag will not match anyway; rejection is what matters
        assert!(rsu.handle_report(&report).is_none());
    }

    #[test]
    fn finish_period_resets_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut rsu = make_rsu(&mut rng);
        let report = valid_report(&rsu, &mut rng, 3);
        rsu.handle_report(&report).expect("accepted");
        let first = rsu.finish_period(PeriodId::new(1), &mut rng);
        assert_eq!(first.period(), PeriodId::new(0));
        assert_eq!(first.bitmap().count_ones(), 1);
        assert_eq!(rsu.period(), PeriodId::new(1));
        assert_eq!(rsu.accepted(), 0);
        // The new period's record is empty, and the DH key rotated so old
        // session keys no longer verify.
        let stale = valid_report_with_old_beacon(&mut rng, &report);
        assert!(rsu.handle_report(&stale).is_none());
        let second = rsu.finish_period(PeriodId::new(2), &mut rng);
        assert_eq!(second.bitmap().count_ones(), 0);
    }

    /// Replays the old report verbatim (its session key was derived against
    /// the previous-period DH share).
    fn valid_report_with_old_beacon(_rng: &mut ChaCha8Rng, old: &Report) -> Report {
        old.clone()
    }
}
