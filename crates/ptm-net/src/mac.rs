//! SpoofMAC-style anonymous MAC addresses (paper Sec. II-B).
//!
//! "Before a vehicle communicates with an RSU, it picks a temporary MAC
//! address randomly from a large space for one-time use, which prevents the
//! MAC address from serving as an identifier of the vehicle."

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A one-time 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TempMac([u8; 6]);

impl TempMac {
    /// Draws a fresh random address with the locally-administered bit set
    /// and the multicast bit cleared, as SpoofMAC does.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 6];
        rng.fill(&mut bytes);
        bytes[0] = (bytes[0] | 0b0000_0010) & 0b1111_1110;
        Self(bytes)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    /// Reconstructs an address from raw bytes (wire decoding).
    pub fn from_bytes(bytes: [u8; 6]) -> Self {
        Self(bytes)
    }

    /// Whether the locally-administered bit is set (true for all
    /// SpoofMAC-style addresses).
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0b0000_0010 != 0
    }

    /// Whether the address is unicast.
    pub fn is_unicast(&self) -> bool {
        self.0[0] & 0b0000_0001 == 0
    }
}

impl std::fmt::Display for TempMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_macs_are_well_formed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let mac = TempMac::random(&mut rng);
            assert!(mac.is_locally_administered());
            assert!(mac.is_unicast());
        }
    }

    #[test]
    fn consecutive_macs_differ() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = TempMac::random(&mut rng);
        let b = TempMac::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn display_format() {
        let mac = TempMac([0x02, 0xab, 0x00, 0x01, 0x02, 0xff]);
        assert_eq!(mac.to_string(), "02:ab:00:01:02:ff");
    }

    #[test]
    fn collision_rate_is_negligible() {
        // 10_000 draws from a 2^46 space: expect zero collisions.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(TempMac::random(&mut rng)));
        }
    }
}
