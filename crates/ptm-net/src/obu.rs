//! The vehicle's on-board unit (OBU) state machine.
//!
//! On receiving a beacon the OBU (1) verifies the RSU certificate against
//! the pre-installed authority key, (2) verifies the beacon signature with
//! the certified key, (3) computes its bit index `h_v mod m` for the
//! beacon's location, and (4) sends the index encrypted under a fresh
//! Diffie–Hellman session key, from a one-time MAC address. It keeps
//! retrying on later beacons until the RSU acknowledges.

use crate::mac::TempMac;
use crate::message::{self, Ack, Beacon, Report};
use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::record::PeriodId;
use ptm_crypto::cert::RootKey;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Why an OBU refused to answer a beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeaconRejection {
    /// The certificate was not issued by the trusted authority — a rogue
    /// RSU. The vehicle "will keep silent" (paper Sec. II-B).
    UntrustedCertificate,
    /// The payload signature did not verify under the certified key.
    BadSignature,
}

/// An on-board unit.
#[derive(Debug)]
pub struct Obu {
    secrets: VehicleSecrets,
    root: RootKey,
    /// Contacts already acknowledged: no further reports needed.
    completed: HashSet<(LocationId, PeriodId)>,
    /// Outstanding reports awaiting acks, keyed by their one-time MAC.
    pending: HashMap<TempMac, (LocationId, PeriodId)>,
    /// Diagnostics: rogue beacons rejected.
    rejections: u64,
}

impl Obu {
    /// Creates an OBU holding the vehicle's secrets and the pre-installed
    /// authority root key.
    pub fn new(secrets: VehicleSecrets, root: RootKey) -> Self {
        Self {
            secrets,
            root,
            completed: HashSet::new(),
            pending: HashMap::new(),
            rejections: 0,
        }
    }

    /// The vehicle's secret material (used by tests and ground truth).
    pub fn secrets(&self) -> &VehicleSecrets {
        &self.secrets
    }

    /// Count of rejected (rogue / tampered) beacons.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Whether the `(location, period)` contact completed (ack received).
    pub fn completed(&self, location: LocationId, period: PeriodId) -> bool {
        self.completed.contains(&(location, period))
    }

    /// Handles a received beacon.
    ///
    /// Returns `Ok(Some(report))` when a (re)transmission is warranted,
    /// `Ok(None)` when this contact already completed.
    ///
    /// # Errors
    ///
    /// [`BeaconRejection`] when the certificate chain or signature fails —
    /// the vehicle stays silent.
    pub fn handle_beacon<R: Rng + ?Sized>(
        &mut self,
        scheme: &EncodingScheme,
        beacon: &Beacon,
        rng: &mut R,
    ) -> Result<Option<Report>, BeaconRejection> {
        if self.root.verify_certificate(&beacon.certificate).is_err() {
            self.rejections += 1;
            return Err(BeaconRejection::UntrustedCertificate);
        }
        if beacon
            .certificate
            .subject_key()
            .verify(&beacon.payload.signing_bytes(), &beacon.signature)
            .is_err()
        {
            self.rejections += 1;
            return Err(BeaconRejection::BadSignature);
        }
        let contact = (beacon.payload.location, beacon.payload.period);
        if self.completed.contains(&contact) {
            return Ok(None);
        }

        let index = scheme.encode_index(
            &self.secrets,
            beacon.payload.location,
            beacon.payload.bitmap_size,
        );
        let (a_secret, a_public) = message::dh_keypair(rng.gen());
        let key = message::session_key(message::dh_shared(beacon.payload.dh_public, a_secret));
        let nonce = rng.gen();
        let ciphertext = message::encrypt_index(&key, nonce, index as u64);
        let mac = TempMac::random(rng);
        let tag = message::report_tag(&key, mac, a_public, nonce, &ciphertext);
        self.pending.insert(mac, contact);
        Ok(Some(Report {
            mac,
            dh_public: a_public,
            nonce,
            ciphertext,
            tag,
        }))
    }

    /// Handles an acknowledgement; returns whether it matched an
    /// outstanding report.
    pub fn handle_ack(&mut self, ack: &Ack) -> bool {
        match self.pending.remove(&ack.mac) {
            Some(contact) => {
                self.completed.insert(contact);
                // Older duplicate reports for the same contact may still be
                // pending under other MACs; drop them.
                self.pending.retain(|_, c| *c != contact);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsu::Rsu;
    use ptm_core::params::BitmapSize;
    use ptm_crypto::cert::TrustedAuthority;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct Fixture {
        scheme: EncodingScheme,
        rsu: Rsu,
        obu: Obu,
        rng: ChaCha8Rng,
    }

    fn fixture() -> Fixture {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut authority = TrustedAuthority::from_seed(1);
        let cred = authority.issue("rsu-main");
        let rsu = Rsu::new(
            cred,
            LocationId::new(9),
            BitmapSize::new(2048).expect("pow2"),
            PeriodId::new(0),
            &mut rng,
        );
        let scheme = EncodingScheme::new(0x0B0, 3);
        let secrets = VehicleSecrets::generate(&mut rng, 3);
        let obu = Obu::new(secrets, authority.root());
        Fixture {
            scheme,
            rsu,
            obu,
            rng,
        }
    }

    #[test]
    fn happy_path_end_to_end() {
        let mut fx = fixture();
        let beacon = fx.rsu.beacon();
        let report = fx
            .obu
            .handle_beacon(&fx.scheme, &beacon, &mut fx.rng)
            .expect("trusted")
            .expect("first contact sends");
        let ack = fx.rsu.handle_report(&report).expect("valid report");
        assert!(fx.obu.handle_ack(&ack));
        assert!(fx.obu.completed(LocationId::new(9), PeriodId::new(0)));

        // The bit set at the RSU is exactly the vehicle's encoding index.
        let expected = fx
            .scheme
            .encode_index(fx.obu.secrets(), LocationId::new(9), 2048);
        let record = fx.rsu.finish_period(PeriodId::new(1), &mut fx.rng);
        assert_eq!(
            record.bitmap().iter_ones().collect::<Vec<_>>(),
            vec![expected]
        );
    }

    #[test]
    fn completed_contact_stops_retransmitting() {
        let mut fx = fixture();
        let beacon = fx.rsu.beacon();
        let report = fx
            .obu
            .handle_beacon(&fx.scheme, &beacon, &mut fx.rng)
            .unwrap()
            .unwrap();
        let ack = fx.rsu.handle_report(&report).expect("valid");
        fx.obu.handle_ack(&ack);
        // Next beacon of the same period: nothing to send.
        assert_eq!(
            fx.obu.handle_beacon(&fx.scheme, &beacon, &mut fx.rng),
            Ok(None)
        );
    }

    #[test]
    fn unacked_report_retries_with_fresh_mac() {
        let mut fx = fixture();
        let beacon = fx.rsu.beacon();
        let first = fx
            .obu
            .handle_beacon(&fx.scheme, &beacon, &mut fx.rng)
            .unwrap()
            .unwrap();
        // Pretend the report was lost; vehicle hears another beacon.
        let second = fx
            .obu
            .handle_beacon(&fx.scheme, &beacon, &mut fx.rng)
            .unwrap()
            .unwrap();
        assert_ne!(first.mac, second.mac, "one-time MACs must not repeat");
        assert_ne!(first.nonce, second.nonce);
        // Both decrypt to the same index at the RSU.
        let a1 = fx.rsu.handle_report(&first).expect("valid");
        let a2 = fx.rsu.handle_report(&second).expect("valid");
        assert!(fx.obu.handle_ack(&a1));
        // The second ack's MAC no longer maps to a pending contact.
        assert!(!fx.obu.handle_ack(&a2));
        let record = fx.rsu.finish_period(PeriodId::new(1), &mut fx.rng);
        assert_eq!(record.bitmap().count_ones(), 1, "idempotent bit setting");
    }

    #[test]
    fn rogue_rsu_is_rejected() {
        let mut fx = fixture();
        let mut rogue_authority = TrustedAuthority::from_seed(666);
        let rogue_cred = rogue_authority.issue("rsu-evil");
        let mut rogue = Rsu::new(
            rogue_cred,
            LocationId::new(9),
            BitmapSize::new(2048).expect("pow2"),
            PeriodId::new(0),
            &mut fx.rng,
        );
        let beacon = rogue.beacon();
        assert_eq!(
            fx.obu.handle_beacon(&fx.scheme, &beacon, &mut fx.rng),
            Err(BeaconRejection::UntrustedCertificate)
        );
        assert_eq!(fx.obu.rejections(), 1);
        let record = rogue.finish_period(PeriodId::new(1), &mut fx.rng);
        assert_eq!(record.bitmap().count_ones(), 0, "vehicle stayed silent");
    }

    #[test]
    fn tampered_beacon_is_rejected() {
        let mut fx = fixture();
        let mut beacon = fx.rsu.beacon();
        beacon.payload.bitmap_size = 4096; // enlarge m to corrupt encoding
        assert_eq!(
            fx.obu.handle_beacon(&fx.scheme, &beacon, &mut fx.rng),
            Err(BeaconRejection::BadSignature)
        );
    }

    #[test]
    fn new_period_triggers_new_report() {
        let mut fx = fixture();
        let beacon0 = fx.rsu.beacon();
        let report0 = fx
            .obu
            .handle_beacon(&fx.scheme, &beacon0, &mut fx.rng)
            .unwrap()
            .unwrap();
        let ack0 = fx.rsu.handle_report(&report0).expect("valid");
        fx.obu.handle_ack(&ack0);
        let _ = fx.rsu.finish_period(PeriodId::new(1), &mut fx.rng);
        let beacon1 = fx.rsu.beacon();
        let report1 = fx
            .obu
            .handle_beacon(&fx.scheme, &beacon1, &mut fx.rng)
            .expect("trusted")
            .expect("new period, new contact");
        let ack1 = fx.rsu.handle_report(&report1).expect("valid");
        assert!(fx.obu.handle_ack(&ack1));
    }

    #[test]
    fn unknown_ack_ignored() {
        let mut fx = fixture();
        let bogus = Ack {
            mac: TempMac::random(&mut fx.rng),
        };
        assert!(!fx.obu.handle_ack(&bogus));
    }
}
