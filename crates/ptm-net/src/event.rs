//! A deterministic discrete-event queue.
//!
//! Events fire in timestamp order; ties break by insertion sequence so a
//! seeded simulation replays identically.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap
            .pop()
            .map(|Reverse(entry)| (entry.at, entry.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| entry.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), "c");
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_micros(7), ());
        q.schedule(SimTime::from_micros(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 1)));
        q.schedule(SimTime::from_micros(5), 2);
        q.schedule(SimTime::from_micros(15), 3);
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(15), 3)));
    }
}
