//! Over-the-air protocol messages.
//!
//! The exchange per vehicle–RSU contact (Sec. II-B/II-D of the paper):
//!
//! ```text
//! RSU  ──beacon──▶  vehicle     location, bitmap size, period,
//!                               certificate, DH share, signature
//! vehicle ──report──▶ RSU       one-time MAC, DH share,
//!                               encrypted bit index + integrity tag
//! RSU  ──ack──▶  vehicle        one-time MAC echoed
//! ```
//!
//! The session key is `SHA-256(g^{ab})`; the bit index travels encrypted
//! with the HMAC-CTR stream cipher and is authenticated with HMAC-SHA256.

use crate::mac::TempMac;
use ptm_core::encoding::LocationId;
use ptm_core::record::PeriodId;
use ptm_crypto::cert::Certificate;
use ptm_crypto::group::Group;
use ptm_crypto::hmac::hmac_sha256;
use ptm_crypto::schnorr::Signature;
use ptm_crypto::sha256::Sha256;
use ptm_crypto::stream::StreamCipher;

/// The signed body of a beacon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeaconPayload {
    /// The RSU's location `L`, included in the vehicle's encoding hash.
    pub location: LocationId,
    /// The RSU's bitmap size `m`.
    pub bitmap_size: usize,
    /// Current measurement period.
    pub period: PeriodId,
    /// The RSU's ephemeral Diffie–Hellman share `g^b`.
    pub dh_public: u64,
}

impl BeaconPayload {
    /// Canonical byte encoding covered by the beacon signature.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(28);
        bytes.extend_from_slice(&self.location.get().to_le_bytes());
        bytes.extend_from_slice(&(self.bitmap_size as u64).to_le_bytes());
        bytes.extend_from_slice(&self.period.get().to_le_bytes());
        bytes.extend_from_slice(&self.dh_public.to_le_bytes());
        bytes
    }
}

/// An RSU beacon: payload + certificate + signature by the certified key.
#[derive(Debug, Clone, PartialEq)]
pub struct Beacon {
    /// Signed body.
    pub payload: BeaconPayload,
    /// The RSU's authority-issued certificate.
    pub certificate: Certificate,
    /// Signature over [`BeaconPayload::signing_bytes`].
    pub signature: Signature,
}

/// A vehicle's encrypted bit report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// One-time MAC address identifying this contact (not the vehicle).
    pub mac: TempMac,
    /// The vehicle's ephemeral Diffie–Hellman share `g^a`.
    pub dh_public: u64,
    /// Cipher nonce.
    pub nonce: u64,
    /// Encrypted little-endian `u64` bit index (8 bytes).
    pub ciphertext: Vec<u8>,
    /// `HMAC(session key, mac ‖ dh ‖ nonce ‖ ciphertext)`.
    pub tag: [u8; 32],
}

/// RSU acknowledgement of a report, addressed by the one-time MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The one-time MAC from the acknowledged report.
    pub mac: TempMac,
}

/// Any over-the-air message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// RSU → broadcast.
    Beacon(Beacon),
    /// Vehicle → RSU.
    Report(Report),
    /// RSU → vehicle.
    Ack(Ack),
}

/// Derives the symmetric session key from the DH shared secret.
pub fn session_key(shared_secret: u64) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(b"ptm-v2i-session-v1");
    hasher.update(&shared_secret.to_le_bytes());
    hasher.finalize()
}

/// Computes the report integrity tag.
pub fn report_tag(
    key: &[u8; 32],
    mac: TempMac,
    dh_public: u64,
    nonce: u64,
    ciphertext: &[u8],
) -> [u8; 32] {
    let mut data = Vec::with_capacity(6 + 16 + ciphertext.len());
    data.extend_from_slice(mac.as_bytes());
    data.extend_from_slice(&dh_public.to_le_bytes());
    data.extend_from_slice(&nonce.to_le_bytes());
    data.extend_from_slice(ciphertext);
    hmac_sha256(key, &data)
}

/// Encrypts a bit index under the session key.
pub fn encrypt_index(key: &[u8; 32], nonce: u64, index: u64) -> Vec<u8> {
    StreamCipher::new(key, nonce).apply(&index.to_le_bytes())
}

/// Decrypts a bit index; `None` if the ciphertext is malformed.
pub fn decrypt_index(key: &[u8; 32], nonce: u64, ciphertext: &[u8]) -> Option<u64> {
    if ciphertext.len() != 8 {
        return None;
    }
    let plain = StreamCipher::new(key, nonce).apply(ciphertext);
    Some(u64::from_le_bytes(plain.try_into().ok()?))
}

/// Computes both DH shares' agreement: `peer^mine mod p` on the simulation
/// group.
pub fn dh_shared(peer_public: u64, my_secret: u64) -> u64 {
    Group::simulation_default().pow(peer_public, my_secret)
}

/// Derives a fresh DH key pair `(secret, public)` from a raw random scalar.
pub fn dh_keypair(raw_secret: u64) -> (u64, u64) {
    let group = Group::simulation_default();
    let secret = 1 + raw_secret % (group.q - 1);
    (secret, group.gen_pow(secret))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_agreement() {
        let (a_sec, a_pub) = dh_keypair(123);
        let (b_sec, b_pub) = dh_keypair(456);
        assert_eq!(dh_shared(b_pub, a_sec), dh_shared(a_pub, b_sec));
        let (c_sec, _) = dh_keypair(789);
        assert_ne!(dh_shared(b_pub, a_sec), dh_shared(b_pub, c_sec));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = session_key(42);
        let ct = encrypt_index(&key, 7, 123_456);
        assert_eq!(decrypt_index(&key, 7, &ct), Some(123_456));
        // Wrong key garbles; wrong nonce garbles.
        let other = session_key(43);
        assert_ne!(decrypt_index(&other, 7, &ct), Some(123_456));
        assert_ne!(decrypt_index(&key, 8, &ct), Some(123_456));
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let key = session_key(1);
        assert_eq!(decrypt_index(&key, 0, &[0u8; 7]), None);
        assert_eq!(decrypt_index(&key, 0, &[]), None);
    }

    #[test]
    fn tag_binds_all_fields() {
        let key = session_key(9);
        let mac = TempMac::random(&mut rand::rngs::mock::StepRng::new(1, 1));
        let ct = encrypt_index(&key, 5, 77);
        let tag = report_tag(&key, mac, 100, 5, &ct);
        assert_ne!(tag, report_tag(&key, mac, 101, 5, &ct));
        assert_ne!(tag, report_tag(&key, mac, 100, 6, &ct));
        let other_key = session_key(10);
        assert_ne!(tag, report_tag(&other_key, mac, 100, 5, &ct));
    }

    #[test]
    fn signing_bytes_are_injective_on_fields() {
        let base = BeaconPayload {
            location: LocationId::new(1),
            bitmap_size: 1024,
            period: PeriodId::new(0),
            dh_public: 5,
        };
        let mut other = base.clone();
        other.period = PeriodId::new(1);
        assert_ne!(base.signing_bytes(), other.signing_bytes());
        let mut other = base.clone();
        other.bitmap_size = 2048;
        assert_ne!(base.signing_bytes(), other.signing_bytes());
    }

    #[test]
    fn ciphertext_hides_index() {
        // Same index under two nonces yields unrelated ciphertexts, so the
        // RSU log cannot link two reports with equal indices.
        let key = session_key(77);
        assert_ne!(encrypt_index(&key, 1, 42), encrypt_index(&key, 2, 42));
    }
}
