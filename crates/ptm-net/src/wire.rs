//! Binary wire format for the over-the-air messages.
//!
//! DSRC frames are small and the paper's design goal is a *single bit
//! index* per vehicle pass, so the codec is a compact hand-rolled format
//! (little-endian, length-prefixed where needed) rather than a
//! self-describing one. It also gives the simulator honest per-pass byte
//! accounting (`Message::wire_len`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! byte 0: message tag (1 = beacon, 2 = report, 3 = ack)
//! beacon:  location u64 | m u64 | period u32 | dh u64 |
//!          serial u64 | subject_key u64 | sig.e u64 | sig.s u64 |
//!          subject_len u16 | subject bytes | cert_sig.e u64 | cert_sig.s u64
//! report:  mac [6] | dh u64 | nonce u64 | ct_len u16 | ct | tag [32]
//! ack:     mac [6]
//! ```

use crate::mac::TempMac;
use crate::message::{Ack, Beacon, BeaconPayload, Message, Report};
use ptm_core::encoding::LocationId;
use ptm_core::record::PeriodId;
use ptm_crypto::cert::Certificate;
use ptm_crypto::schnorr::Signature;

/// Errors raised while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// Unknown message tag byte.
    UnknownTag(u8),
    /// A length field exceeded sane bounds.
    BadLength(usize),
    /// The subject name was not valid UTF-8.
    BadSubject,
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame truncated"),
            Self::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            Self::BadLength(len) => write!(f, "implausible length field {len}"),
            Self::BadSubject => write!(f, "certificate subject is not valid utf-8"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn finish(&self) -> Result<(), WireError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(rest))
        }
    }
}

/// Maximum accepted variable-length field (subject names, ciphertexts).
const MAX_VAR_LEN: usize = 1024;

/// Encodes a message to bytes.
pub fn encode(message: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    match message {
        Message::Beacon(beacon) => {
            out.push(1);
            out.extend_from_slice(&beacon.payload.location.get().to_le_bytes());
            out.extend_from_slice(&(beacon.payload.bitmap_size as u64).to_le_bytes());
            out.extend_from_slice(&beacon.payload.period.get().to_le_bytes());
            out.extend_from_slice(&beacon.payload.dh_public.to_le_bytes());
            let cert = &beacon.certificate;
            out.extend_from_slice(&cert.serial().to_le_bytes());
            out.extend_from_slice(&cert.subject_key().element().to_le_bytes());
            let (sig_e, sig_s) = signature_parts(&cert_signature(cert));
            out.extend_from_slice(&sig_e.to_le_bytes());
            out.extend_from_slice(&sig_s.to_le_bytes());
            let subject = cert.subject().as_bytes();
            out.extend_from_slice(&(subject.len() as u16).to_le_bytes());
            out.extend_from_slice(subject);
            let (be, bs) = signature_parts(&beacon.signature);
            out.extend_from_slice(&be.to_le_bytes());
            out.extend_from_slice(&bs.to_le_bytes());
        }
        Message::Report(report) => {
            out.push(2);
            out.extend_from_slice(report.mac.as_bytes());
            out.extend_from_slice(&report.dh_public.to_le_bytes());
            out.extend_from_slice(&report.nonce.to_le_bytes());
            out.extend_from_slice(&(report.ciphertext.len() as u16).to_le_bytes());
            out.extend_from_slice(&report.ciphertext);
            out.extend_from_slice(&report.tag);
        }
        Message::Ack(ack) => {
            out.push(3);
            out.extend_from_slice(ack.mac.as_bytes());
        }
    }
    out
}

/// Decodes a message from bytes.
///
/// # Errors
///
/// Any [`WireError`] condition — truncation, bad tags, bad lengths,
/// trailing garbage.
pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(buf);
    let message = match r.u8()? {
        1 => {
            let location = LocationId::new(r.u64()?);
            let bitmap_size = r.u64()? as usize;
            let period = PeriodId::new(r.u32()?);
            let dh_public = r.u64()?;
            let serial = r.u64()?;
            let subject_key = r.u64()?;
            let cert_sig = signature_from_parts(r.u64()?, r.u64()?);
            let subject_len = r.u16()? as usize;
            if subject_len > MAX_VAR_LEN {
                return Err(WireError::BadLength(subject_len));
            }
            let subject = std::str::from_utf8(r.take(subject_len)?)
                .map_err(|_| WireError::BadSubject)?
                .to_owned();
            let signature = signature_from_parts(r.u64()?, r.u64()?);
            Message::Beacon(Beacon {
                payload: BeaconPayload {
                    location,
                    bitmap_size,
                    period,
                    dh_public,
                },
                certificate: Certificate::from_wire_parts(subject, subject_key, serial, cert_sig),
                signature,
            })
        }
        2 => {
            let mac = TempMac::from_bytes(r.array()?);
            let dh_public = r.u64()?;
            let nonce = r.u64()?;
            let ct_len = r.u16()? as usize;
            if ct_len > MAX_VAR_LEN {
                return Err(WireError::BadLength(ct_len));
            }
            let ciphertext = r.take(ct_len)?.to_vec();
            let tag: [u8; 32] = r.array()?;
            Message::Report(Report {
                mac,
                dh_public,
                nonce,
                ciphertext,
                tag,
            })
        }
        3 => {
            let mac = TempMac::from_bytes(r.array()?);
            Message::Ack(Ack { mac })
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(message)
}

/// Encoded size of a message in bytes (for channel accounting).
pub fn wire_len(message: &Message) -> usize {
    encode(message).len()
}

fn signature_parts(sig: &Signature) -> (u64, u64) {
    sig.to_parts()
}

fn signature_from_parts(e: u64, s: u64) -> Signature {
    Signature::from_parts(e, s)
}

fn cert_signature(cert: &Certificate) -> Signature {
    cert.signature()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsu::Rsu;
    use ptm_core::params::BitmapSize;
    use ptm_crypto::cert::TrustedAuthority;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_beacon() -> Beacon {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut authority = TrustedAuthority::from_seed(5);
        let cred = authority.issue("rsu-wire-test");
        let rsu = Rsu::new(
            cred,
            LocationId::new(3),
            BitmapSize::new(4096).expect("pow2"),
            PeriodId::new(2),
            &mut rng,
        );
        rsu.beacon()
    }

    fn sample_report() -> Report {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        Report {
            mac: TempMac::random(&mut rng),
            dh_public: 0x1234_5678,
            nonce: 42,
            ciphertext: vec![1, 2, 3, 4, 5, 6, 7, 8],
            tag: [9u8; 32],
        }
    }

    #[test]
    fn beacon_roundtrip_preserves_verifiability() {
        let beacon = sample_beacon();
        let bytes = encode(&Message::Beacon(beacon.clone()));
        let decoded = decode(&bytes).expect("decode");
        assert_eq!(decoded, Message::Beacon(beacon.clone()));
        // The decoded certificate still verifies (signature fields intact).
        if let Message::Beacon(b) = decoded {
            assert!(b
                .certificate
                .subject_key()
                .verify(&b.payload.signing_bytes(), &b.signature)
                .is_ok());
        }
    }

    #[test]
    fn report_and_ack_roundtrip() {
        let report = sample_report();
        let bytes = encode(&Message::Report(report.clone()));
        assert_eq!(decode(&bytes), Ok(Message::Report(report.clone())));
        let ack = Ack { mac: report.mac };
        let bytes = encode(&Message::Ack(ack));
        assert_eq!(decode(&bytes), Ok(Message::Ack(ack)));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        for msg in [
            Message::Beacon(sample_beacon()),
            Message::Report(sample_report()),
            Message::Ack(Ack {
                mac: sample_report().mac,
            }),
        ] {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                let err = decode(&bytes[..cut]).expect_err("truncated frame must fail");
                assert!(
                    matches!(err, WireError::Truncated | WireError::UnknownTag(_)),
                    "cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = encode(&Message::Ack(Ack {
            mac: sample_report().mac,
        }));
        bytes.push(0xFF);
        assert_eq!(decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[9, 0, 0]), Err(WireError::UnknownTag(9)));
        assert_eq!(decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_length_fields_rejected() {
        // Tag 2 (report), then a ciphertext length of 0xFFFF.
        let mut bytes = vec![2u8];
        bytes.extend_from_slice(&[0; 6]); // mac
        bytes.extend_from_slice(&0u64.to_le_bytes()); // dh
        bytes.extend_from_slice(&0u64.to_le_bytes()); // nonce
        bytes.extend_from_slice(&0xFFFFu16.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        assert_eq!(decode(&bytes), Err(WireError::BadLength(0xFFFF)));
    }

    #[test]
    fn per_pass_overhead_is_small() {
        // The design's selling point: a complete vehicle pass is one report
        // (+ ack). Keep the report frame under 100 bytes.
        let report_len = wire_len(&Message::Report(sample_report()));
        assert!(report_len < 100, "report frame is {report_len} bytes");
        let ack_len = wire_len(&Message::Ack(Ack {
            mac: sample_report().mac,
        }));
        assert_eq!(ack_len, 7);
    }
}
