//! Discrete-event vehicle-to-infrastructure (V2I) substrate.
//!
//! The paper's system model (Sec. II) assumes DSRC-style wireless exchanges
//! between vehicles and road-side units: RSUs broadcast beacons carrying
//! their location, bitmap size and public-key certificate; vehicles verify
//! the certificate against a pre-installed authority key, authenticate, and
//! report a single encrypted bit index under a one-time MAC address. This
//! crate simulates that whole path:
//!
//! * [`time`] / [`event`] — the discrete-event engine;
//! * [`channel`] — a lossy, delayed broadcast channel;
//! * [`message`] — the over-the-air protocol messages;
//! * [`mac`] — SpoofMAC-style one-time MAC addresses;
//! * [`rsu`] / [`obu`] — the road-side unit and on-board unit state
//!   machines (beacon → verify → Diffie–Hellman → encrypted report → ack);
//! * [`server`] — the central server that collects traffic records and
//!   answers persistent-traffic queries;
//! * [`sim`] — the simulator that wires everything together.
//!
//! The estimator experiments in `ptm-sim` use a fast direct-encoding path;
//! an integration test drives this full protocol stack and checks that the
//! records that reach the central server are *bit-identical* to directly
//! encoded ones when the channel is lossless.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod event;
pub mod mac;
pub mod message;
pub mod obu;
pub mod rsu;
pub mod server;
pub mod sim;
pub mod time;
pub mod wire;

pub use channel::ChannelModel;
pub use server::CentralServer;
pub use sim::{SimConfig, SimStats, V2iSimulator};
pub use time::{SimDuration, SimTime};
