//! Simulation time: microsecond-resolution instants and durations.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulation time (microseconds since the simulation epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since the epoch (lossy, for display).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000)
    }

    /// The raw microsecond count.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Multiplies the duration by an integer factor.
    pub fn saturating_mul(&self, factor: u64) -> Self {
        Self(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Time since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // ptm-analyze: allow(no-unwrap): documented panicking operator, like slice indexing; callers uphold monotonic time
                .expect("subtracting a later instant from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(1_000);
        let d = SimDuration::from_millis(2);
        assert_eq!((t + d).as_micros(), 3_000);
        assert_eq!((t + d) - t, SimDuration::from_micros(2_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(d + d, SimDuration::from_micros(4_000));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::ZERO, SimTime::from_micros(0));
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn negative_duration_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs_helper(1).to_string(), "1.000000s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500000s");
    }

    impl SimTime {
        fn from_secs_helper(secs: u64) -> Self {
            SimTime::from_micros(secs * 1_000_000)
        }
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(
            SimDuration::from_secs(2).saturating_mul(3),
            SimDuration::from_secs(6)
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX).saturating_mul(2),
            SimDuration::from_micros(u64::MAX)
        );
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(5);
        assert_eq!(t.as_secs_f64(), 5.0);
    }
}
