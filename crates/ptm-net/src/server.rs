//! The central server: collects traffic records from RSUs and answers
//! persistent-traffic queries (paper Sec. II-A: "all RSUs are connected …
//! to a central server, where data are collected and processed").

use ptm_core::encoding::LocationId;
use ptm_core::error::EstimateError;
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::point::{NaiveAndEstimator, PointEstimator};
use ptm_core::record::{PeriodId, TrafficRecord};
use std::collections::HashMap;

/// Errors from server-side query processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// A *different* record for this `(location, period)` was already
    /// uploaded (identical re-sends are accepted idempotently).
    DuplicateRecord {
        /// Location of the duplicate upload.
        location: LocationId,
        /// Period of the duplicate upload.
        period: PeriodId,
    },
    /// The query needs a record the server never received.
    MissingRecord {
        /// Location with the gap.
        location: LocationId,
        /// Period with the gap.
        period: PeriodId,
    },
    /// The underlying estimator failed.
    Estimate(EstimateError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateRecord { location, period } => write!(
                f,
                "duplicate record for location {} period {}",
                location.get(),
                period.get()
            ),
            Self::MissingRecord { location, period } => write!(
                f,
                "missing record for location {} period {}",
                location.get(),
                period.get()
            ),
            Self::Estimate(err) => write!(f, "estimation failed: {err}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Estimate(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EstimateError> for ServerError {
    fn from(err: EstimateError) -> Self {
        Self::Estimate(err)
    }
}

/// The record store plus query engine.
#[derive(Debug, Default)]
pub struct CentralServer {
    records: HashMap<(LocationId, PeriodId), TrafficRecord>,
    /// Representative-bit count `s`, needed by the point-to-point estimator.
    s: u32,
}

impl CentralServer {
    /// Creates a server for a system configured with `s` representative
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    pub fn new(s: u32) -> Self {
        assert!(s >= 1, "s must be at least 1");
        Self { records: HashMap::new(), s }
    }

    /// Accepts an uploaded record.
    ///
    /// Submission is **idempotent**: re-submitting a record identical to
    /// the one already stored for its `(location, period)` succeeds without
    /// changing anything (an RSU retrying an upload whose ack was lost must
    /// not be punished). Only a *conflicting* duplicate — same slot,
    /// different contents — is an error, because silently keeping either
    /// copy would corrupt the measurement.
    ///
    /// # Errors
    ///
    /// [`ServerError::DuplicateRecord`] when the `(location, period)` slot
    /// already holds a record with different contents.
    pub fn submit(&mut self, record: TrafficRecord) -> Result<(), ServerError> {
        let key = (record.location(), record.period());
        if let Some(existing) = self.records.get(&key) {
            if *existing == record {
                ptm_obs::counter!("net.server.submit.duplicate_idempotent").inc();
                return Ok(());
            }
            ptm_obs::counter!("net.server.submit.duplicate").inc();
            return Err(ServerError::DuplicateRecord { location: key.0, period: key.1 });
        }
        if ptm_obs::metrics_enabled() {
            ptm_obs::counter!("net.server.submit.accepted").inc();
            ptm_obs::counter!("net.server.bits_stored")
                .add(record.bitmap().count_ones() as u64);
            // Per-location record gauges use dynamic names, so they go
            // through the registry rather than a cached macro handle.
            ptm_obs::registry()
                .gauge(format!("net.server.records.loc{}", key.0.get()))
                .inc();
        }
        self.records.insert(key, record);
        ptm_obs::gauge!("net.server.records").set(self.records.len() as i64);
        Ok(())
    }

    /// Number of stored records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Fetches one record.
    pub fn record(&self, location: LocationId, period: PeriodId) -> Option<&TrafficRecord> {
        self.records.get(&(location, period))
    }

    fn gather(
        &self,
        location: LocationId,
        periods: &[PeriodId],
    ) -> Result<Vec<TrafficRecord>, ServerError> {
        periods
            .iter()
            .map(|&period| {
                self.records
                    .get(&(location, period))
                    .cloned()
                    .ok_or(ServerError::MissingRecord { location, period })
            })
            .collect()
    }

    /// Plain traffic volume at one location in one period (paper Eq. 1).
    ///
    /// # Errors
    ///
    /// Missing record or saturated bitmap.
    pub fn estimate_volume(
        &self,
        location: LocationId,
        period: PeriodId,
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.volume");
        ptm_obs::counter!("net.server.query.volume").inc();
        let record = self
            .records
            .get(&(location, period))
            .ok_or(ServerError::MissingRecord { location, period })?;
        Ok(ptm_core::lpc::estimate_cardinality(record.bitmap())?)
    }

    /// Point persistent traffic over the listed periods (paper Eq. 12).
    ///
    /// # Errors
    ///
    /// Missing records or estimator failure.
    pub fn estimate_point_persistent(
        &self,
        location: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.point");
        ptm_obs::counter!("net.server.query.point").inc();
        let records = self.gather(location, periods)?;
        Ok(PointEstimator::new().estimate(&records)?)
    }

    /// The naive AND benchmark for point persistent traffic.
    ///
    /// # Errors
    ///
    /// Missing records or estimator failure.
    pub fn estimate_point_persistent_naive(
        &self,
        location: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.naive");
        ptm_obs::counter!("net.server.query.naive").inc();
        let records = self.gather(location, periods)?;
        Ok(NaiveAndEstimator::new().estimate(&records)?)
    }

    /// Point-to-point persistent traffic between two locations (Eq. 21).
    ///
    /// # Errors
    ///
    /// Missing records or estimator failure.
    pub fn estimate_p2p_persistent(
        &self,
        location_a: LocationId,
        location_b: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.p2p");
        ptm_obs::counter!("net.server.query.p2p").inc();
        let records_a = self.gather(location_a, periods)?;
        let records_b = self.gather(location_b, periods)?;
        Ok(PointToPointEstimator::new(self.s).estimate(&records_a, &records_b)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn record_with(
        location: LocationId,
        period: PeriodId,
        m: usize,
        vehicles: &[VehicleSecrets],
        scheme: &EncodingScheme,
    ) -> TrafficRecord {
        let mut r = TrafficRecord::new(location, period, BitmapSize::new(m).expect("pow2"));
        for v in vehicles {
            r.encode(scheme, v);
        }
        r
    }

    #[test]
    fn submit_and_query_roundtrip() {
        let mut server = CentralServer::new(3);
        let scheme = EncodingScheme::new(7, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let fleet: Vec<VehicleSecrets> =
            (0..500).map(|_| VehicleSecrets::generate(&mut rng, 3)).collect();
        let loc = LocationId::new(1);
        for p in 0..4u32 {
            let rec = record_with(loc, PeriodId::new(p), 4096, &fleet, &scheme);
            server.submit(rec).expect("first upload");
        }
        assert_eq!(server.record_count(), 4);
        let periods: Vec<PeriodId> = (0..4).map(PeriodId::new).collect();
        let est = server.estimate_point_persistent(loc, &periods).expect("estimate");
        assert!((est - 500.0).abs() / 500.0 < 0.1, "estimate {est}");
        let vol = server.estimate_volume(loc, PeriodId::new(0)).expect("volume");
        assert!((vol - 500.0).abs() / 500.0 < 0.1, "volume {vol}");
    }

    #[test]
    fn identical_resend_is_idempotent() {
        let mut server = CentralServer::new(3);
        let loc = LocationId::new(2);
        let mut rec = TrafficRecord::new(loc, PeriodId::new(0), BitmapSize::new(64).expect("pow2"));
        rec.set_reported_index(5);
        server.submit(rec.clone()).expect("first");
        // An RSU retrying after a lost ack re-sends the same bytes: success,
        // and the store is unchanged.
        server.submit(rec.clone()).expect("identical resend");
        assert_eq!(server.record_count(), 1);
        assert_eq!(server.record(loc, PeriodId::new(0)), Some(&rec));
    }

    #[test]
    fn conflicting_duplicate_rejected() {
        let mut server = CentralServer::new(3);
        let loc = LocationId::new(2);
        let rec = TrafficRecord::new(loc, PeriodId::new(0), BitmapSize::new(64).expect("pow2"));
        server.submit(rec.clone()).expect("first");
        let mut conflicting = rec.clone();
        conflicting.set_reported_index(3);
        assert_eq!(
            server.submit(conflicting),
            Err(ServerError::DuplicateRecord { location: loc, period: PeriodId::new(0) })
        );
        // The original record survives the rejected conflict untouched.
        assert_eq!(server.record(loc, PeriodId::new(0)), Some(&rec));
    }

    #[test]
    fn missing_record_reported() {
        let server = CentralServer::new(3);
        let loc = LocationId::new(3);
        let err = server
            .estimate_point_persistent(loc, &[PeriodId::new(0), PeriodId::new(1)])
            .expect_err("missing");
        assert_eq!(
            err,
            ServerError::MissingRecord { location: loc, period: PeriodId::new(0) }
        );
    }

    #[test]
    fn p2p_query() {
        let mut server = CentralServer::new(3);
        let scheme = EncodingScheme::new(9, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let commons: Vec<VehicleSecrets> =
            (0..800).map(|_| VehicleSecrets::generate(&mut rng, 3)).collect();
        let (a, b) = (LocationId::new(10), LocationId::new(20));
        for p in 0..3u32 {
            server
                .submit(record_with(a, PeriodId::new(p), 8192, &commons, &scheme))
                .expect("upload");
            server
                .submit(record_with(b, PeriodId::new(p), 8192, &commons, &scheme))
                .expect("upload");
        }
        let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
        let est = server.estimate_p2p_persistent(a, b, &periods).expect("estimate");
        assert!((est - 800.0).abs() / 800.0 < 0.15, "estimate {est}");
    }

    #[test]
    fn estimate_error_wrapped() {
        let mut server = CentralServer::new(3);
        let loc = LocationId::new(5);
        server
            .submit(TrafficRecord::new(loc, PeriodId::new(0), BitmapSize::new(64).expect("pow2")))
            .expect("upload");
        let err = server
            .estimate_point_persistent(loc, &[PeriodId::new(0)])
            .expect_err("too few records");
        assert!(matches!(err, ServerError::Estimate(EstimateError::TooFewRecords { .. })));
        // Display and source() behave.
        assert!(err.to_string().contains("estimation failed"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
