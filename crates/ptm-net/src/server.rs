//! The central server: collects traffic records from RSUs and answers
//! persistent-traffic queries (paper Sec. II-A: "all RSUs are connected …
//! to a central server, where data are collected and processed").
//!
//! # Sharded store
//!
//! The record store is sharded **by location**: a read-mostly directory
//! maps each [`LocationId`] to its own shard, and each shard holds that
//! location's per-period records behind its own [`RwLock`]. The paper's
//! query side is embarrassingly parallel — point (Sec. III) and
//! point-to-point (Sec. IV) estimates are read-only AND/OR joins over
//! per-location records — so queries take *shared* read locks and proceed
//! concurrently with each other and with uploads to other locations. A
//! query never holds two shard locks at once (point-to-point gathers one
//! location, releases it, then gathers the other), so the locking scheme
//! cannot deadlock.
//!
//! Every shard also carries an **epoch**: a counter bumped once per
//! *accepted* record (idempotent re-uploads and rejected conflicts leave
//! it unchanged, because they leave the records unchanged). Epochs let a
//! caller cache query answers and validate them cheaply: an answer
//! computed when the involved locations had epochs `E` is still exact
//! while those epochs are unchanged. `ptm-rpc` builds its query-result
//! cache on this.
//!
//! All locks recover from poisoning (`PoisonError::into_inner`): a
//! panicking reader or writer must not turn one bad request into a
//! permanent outage for every later request. Shard state is a plain map
//! plus a counter, mutated with single `insert`s, so a recovered guard is
//! never mid-invariant.
//!
//! Shard instrumentation (through `ptm-obs`, disabled by default):
//! `rpc.shard.locations` (gauge, shard count) and
//! `rpc.shard.lock_wait.read` / `rpc.shard.lock_wait.write` (histograms,
//! ns spent waiting to acquire a shard lock).

use ptm_core::encoding::LocationId;
use ptm_core::error::EstimateError;
use ptm_core::p2p::PointToPointEstimator;
use ptm_core::point::{NaiveAndEstimator, PointEstimator};
use ptm_core::record::{PeriodId, TrafficRecord};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Errors from server-side query processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// A *different* record for this `(location, period)` was already
    /// uploaded (identical re-sends are accepted idempotently).
    DuplicateRecord {
        /// Location of the duplicate upload.
        location: LocationId,
        /// Period of the duplicate upload.
        period: PeriodId,
    },
    /// The query needs a record the server never received.
    MissingRecord {
        /// Location with the gap.
        location: LocationId,
        /// Period with the gap.
        period: PeriodId,
    },
    /// The underlying estimator failed.
    Estimate(EstimateError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateRecord { location, period } => write!(
                f,
                "duplicate record for location {} period {}",
                location.get(),
                period.get()
            ),
            Self::MissingRecord { location, period } => write!(
                f,
                "missing record for location {} period {}",
                location.get(),
                period.get()
            ),
            Self::Estimate(err) => write!(f, "estimation failed: {err}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Estimate(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EstimateError> for ServerError {
    fn from(err: EstimateError) -> Self {
        Self::Estimate(err)
    }
}

/// One location's records plus its upload epoch, guarded together so a
/// reader always sees an epoch consistent with (or older than) the records
/// it reads.
#[derive(Debug, Default)]
struct ShardInner {
    records: HashMap<PeriodId, TrafficRecord>,
    /// Bumped once per accepted record. Idempotent re-uploads and rejected
    /// conflicts do not move it: the stored records did not change, so any
    /// cached answer derived from them is still exact.
    epoch: u64,
}

#[derive(Debug, Default)]
struct LocationShard {
    inner: RwLock<ShardInner>,
}

/// Acquires a shard read lock, recovering from poisoning and recording the
/// wait when metrics are enabled.
fn shard_read(lock: &RwLock<ShardInner>) -> RwLockReadGuard<'_, ShardInner> {
    let start = ptm_obs::metrics_enabled().then(Instant::now);
    // ptm-analyze: allow(reactor-blocking): short-held shard lock — every holder does in-memory map work only, so the inline stats path cannot stall behind I/O
    let guard = lock.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(start) = start {
        ptm_obs::histogram!("rpc.shard.lock_wait.read").record(start.elapsed().as_nanos() as u64);
    }
    guard
}

/// Acquires a shard write lock, recovering from poisoning and recording
/// the wait when metrics are enabled.
fn shard_write(lock: &RwLock<ShardInner>) -> RwLockWriteGuard<'_, ShardInner> {
    let start = ptm_obs::metrics_enabled().then(Instant::now);
    // ptm-analyze: allow(reactor-blocking): ingest runs on pool workers; the reactor edge is name aliasing of `pool.submit` with `CentralServer::submit` (see docs/ANALYSIS.md on resolution-lite)
    let guard = lock.write().unwrap_or_else(PoisonError::into_inner);
    if let Some(start) = start {
        ptm_obs::histogram!("rpc.shard.lock_wait.write").record(start.elapsed().as_nanos() as u64);
    }
    guard
}

/// The record store plus query engine.
///
/// Internally sharded by location (see the module docs), so every method
/// takes `&self`: uploads and queries from many threads proceed
/// concurrently, and a query blocks only on a simultaneous upload to a
/// location it is reading.
#[derive(Debug, Default)]
pub struct CentralServer {
    /// Location directory. Read-mostly: taken for writing only when a
    /// location uploads its first record.
    shards: RwLock<HashMap<LocationId, Arc<LocationShard>>>,
    /// Total stored records, maintained alongside the shards so
    /// [`CentralServer::record_count`] never walks the directory.
    total_records: AtomicUsize,
    /// Representative-bit count `s`, needed by the point-to-point estimator.
    s: u32,
}

impl CentralServer {
    /// Creates a server for a system configured with `s` representative
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    pub fn new(s: u32) -> Self {
        assert!(s >= 1, "s must be at least 1");
        Self {
            shards: RwLock::new(HashMap::new()),
            total_records: AtomicUsize::new(0),
            s,
        }
    }

    /// The shard for `location`, if it has ever stored a record.
    fn shard(&self, location: LocationId) -> Option<Arc<LocationShard>> {
        self.shards
            // ptm-analyze: allow(reactor-blocking): directory reads are Arc clones under a short-held lock; the reactor edge is `pool.submit` aliasing `CentralServer::submit`
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&location)
            .map(Arc::clone)
    }

    /// The shard for `location`, created on first use.
    fn shard_or_create(&self, location: LocationId) -> Arc<LocationShard> {
        if let Some(shard) = self.shard(location) {
            return shard;
        }
        // ptm-analyze: allow(reactor-blocking): shard creation happens on worker ingest; the reactor edge is `pool.submit` aliasing `CentralServer::submit`
        let mut directory = self.shards.write().unwrap_or_else(PoisonError::into_inner);
        let shard = Arc::clone(directory.entry(location).or_default());
        ptm_obs::gauge!("rpc.shard.locations").set(directory.len() as i64);
        shard
    }

    /// Accepts an uploaded record.
    ///
    /// Submission is **idempotent**: re-submitting a record identical to
    /// the one already stored for its `(location, period)` succeeds without
    /// changing anything (an RSU retrying an upload whose ack was lost must
    /// not be punished). Only a *conflicting* duplicate — same slot,
    /// different contents — is an error, because silently keeping either
    /// copy would corrupt the measurement.
    ///
    /// Only an accepted record bumps the location's epoch (see
    /// [`CentralServer::epoch`]).
    ///
    /// # Errors
    ///
    /// [`ServerError::DuplicateRecord`] when the `(location, period)` slot
    /// already holds a record with different contents.
    pub fn submit(&self, record: TrafficRecord) -> Result<(), ServerError> {
        let location = record.location();
        let period = record.period();
        let shard = self.shard_or_create(location);
        let mut inner = shard_write(&shard.inner);
        if let Some(existing) = inner.records.get(&period) {
            if *existing == record {
                ptm_obs::counter!("net.server.submit.duplicate_idempotent").inc();
                return Ok(());
            }
            ptm_obs::counter!("net.server.submit.duplicate").inc();
            return Err(ServerError::DuplicateRecord { location, period });
        }
        if ptm_obs::metrics_enabled() {
            ptm_obs::counter!("net.server.submit.accepted").inc();
            ptm_obs::counter!("net.server.bits_stored").add(record.bitmap().count_ones() as u64);
            // Per-location record gauges use dynamic names, so they go
            // through the registry rather than a cached macro handle.
            ptm_obs::registry()
                .gauge(format!("net.server.records.loc{}", location.get()))
                .inc();
        }
        inner.records.insert(period, record);
        inner.epoch += 1;
        let total = self.total_records.fetch_add(1, Ordering::Relaxed) + 1;
        ptm_obs::gauge!("net.server.records").set(total as i64);
        Ok(())
    }

    /// Number of stored records.
    pub fn record_count(&self) -> usize {
        self.total_records.load(Ordering::Relaxed)
    }

    /// Number of locations that have stored at least one record (i.e. the
    /// number of live shards).
    pub fn location_count(&self) -> usize {
        self.shards
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Every location that has stored at least one record, sorted by id.
    ///
    /// Sorted output makes the listing stable across calls regardless of
    /// hash-map iteration order, so operational tooling (the daemon's
    /// degraded-mode recovery sweep, status printouts) sees a
    /// deterministic view.
    pub fn locations(&self) -> Vec<LocationId> {
        let mut out: Vec<LocationId> = self
            .shards
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .copied()
            .collect();
        out.sort_unstable_by_key(|loc| loc.get());
        out
    }

    /// Per-shard introspection rows `(location, stored records, epoch)`,
    /// sorted by location id — what the daemon's stats RPC and `ptm top`
    /// report as shard depths. Shard locks are taken one at a time, so the
    /// listing is per-shard consistent but not a global snapshot.
    pub fn shard_stats(&self) -> Vec<(LocationId, usize, u64)> {
        let shards: Vec<(LocationId, Arc<LocationShard>)> = self
            .shards
            // ptm-analyze: allow(reactor-blocking): Stats answers inline by design; this directory read lock only clones Arcs and writers hold it only for in-memory inserts
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(loc, shard)| (*loc, Arc::clone(shard)))
            .collect();
        let mut out: Vec<(LocationId, usize, u64)> = shards
            .into_iter()
            .map(|(loc, shard)| {
                let inner = shard_read(&shard.inner);
                (loc, inner.records.len(), inner.epoch)
            })
            .collect();
        out.sort_unstable_by_key(|(loc, ..)| loc.get());
        out
    }

    /// The upload epoch of `location`: 0 for a location that never stored
    /// a record, then +1 per accepted record.
    ///
    /// An answer computed from this location's records while its epoch was
    /// `e` remains exact for as long as `epoch(location) == e` — the basis
    /// of the epoch-invalidated query cache in `ptm-rpc`.
    pub fn epoch(&self, location: LocationId) -> u64 {
        match self.shard(location) {
            Some(shard) => shard_read(&shard.inner).epoch,
            None => 0,
        }
    }

    /// Fetches one record (cloned out of its shard).
    pub fn record(&self, location: LocationId, period: PeriodId) -> Option<TrafficRecord> {
        let shard = self.shard(location)?;
        let inner = shard_read(&shard.inner);
        inner.records.get(&period).cloned()
    }

    /// Clones this location's records for `periods` under one read lock,
    /// so the set is a consistent snapshot of the location.
    fn gather(
        &self,
        location: LocationId,
        periods: &[PeriodId],
    ) -> Result<Vec<TrafficRecord>, ServerError> {
        if periods.is_empty() {
            return Ok(Vec::new());
        }
        let missing = |period: PeriodId| ServerError::MissingRecord { location, period };
        let shard = self.shard(location).ok_or_else(|| missing(periods[0]))?;
        let inner = shard_read(&shard.inner);
        periods
            .iter()
            .map(|&period| {
                inner
                    .records
                    .get(&period)
                    .cloned()
                    .ok_or_else(|| missing(period))
            })
            .collect()
    }

    /// Plain traffic volume at one location in one period (paper Eq. 1).
    ///
    /// # Errors
    ///
    /// Missing record or saturated bitmap.
    pub fn estimate_volume(
        &self,
        location: LocationId,
        period: PeriodId,
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.volume");
        ptm_obs::counter!("net.server.query.volume").inc();
        let record = self
            .record(location, period)
            .ok_or(ServerError::MissingRecord { location, period })?;
        Ok(ptm_core::lpc::estimate_cardinality(record.bitmap())?)
    }

    /// Point persistent traffic over the listed periods (paper Eq. 12).
    ///
    /// # Errors
    ///
    /// Missing records or estimator failure.
    pub fn estimate_point_persistent(
        &self,
        location: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.point");
        ptm_obs::counter!("net.server.query.point").inc();
        let records = self.gather(location, periods)?;
        Ok(PointEstimator::new().estimate(&records)?)
    }

    /// The naive AND benchmark for point persistent traffic.
    ///
    /// # Errors
    ///
    /// Missing records or estimator failure.
    pub fn estimate_point_persistent_naive(
        &self,
        location: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.naive");
        ptm_obs::counter!("net.server.query.naive").inc();
        let records = self.gather(location, periods)?;
        Ok(NaiveAndEstimator::new().estimate(&records)?)
    }

    /// Point-to-point persistent traffic between two locations (Eq. 21).
    ///
    /// The two locations are gathered one after the other (never holding
    /// both shard locks), so concurrent point-to-point queries over
    /// overlapping location pairs cannot deadlock.
    ///
    /// # Errors
    ///
    /// Missing records or estimator failure.
    pub fn estimate_p2p_persistent(
        &self,
        location_a: LocationId,
        location_b: LocationId,
        periods: &[PeriodId],
    ) -> Result<f64, ServerError> {
        let _t = ptm_obs::span!("net.server.estimate.p2p");
        ptm_obs::counter!("net.server.query.p2p").inc();
        let records_a = self.gather(location_a, periods)?;
        let records_b = self.gather(location_b, periods)?;
        Ok(PointToPointEstimator::new(self.s).estimate(&records_a, &records_b)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptm_core::encoding::{EncodingScheme, VehicleSecrets};
    use ptm_core::params::BitmapSize;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::panic::AssertUnwindSafe;

    fn record_with(
        location: LocationId,
        period: PeriodId,
        m: usize,
        vehicles: &[VehicleSecrets],
        scheme: &EncodingScheme,
    ) -> TrafficRecord {
        let mut r = TrafficRecord::new(location, period, BitmapSize::new(m).expect("pow2"));
        for v in vehicles {
            r.encode(scheme, v);
        }
        r
    }

    #[test]
    fn submit_and_query_roundtrip() {
        let server = CentralServer::new(3);
        let scheme = EncodingScheme::new(7, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let fleet: Vec<VehicleSecrets> = (0..500)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let loc = LocationId::new(1);
        for p in 0..4u32 {
            let rec = record_with(loc, PeriodId::new(p), 4096, &fleet, &scheme);
            server.submit(rec).expect("first upload");
        }
        assert_eq!(server.record_count(), 4);
        assert_eq!(server.location_count(), 1);
        let periods: Vec<PeriodId> = (0..4).map(PeriodId::new).collect();
        let est = server
            .estimate_point_persistent(loc, &periods)
            .expect("estimate");
        assert!((est - 500.0).abs() / 500.0 < 0.1, "estimate {est}");
        let vol = server
            .estimate_volume(loc, PeriodId::new(0))
            .expect("volume");
        assert!((vol - 500.0).abs() / 500.0 < 0.1, "volume {vol}");
    }

    #[test]
    fn locations_listing_is_sorted_and_complete() {
        let server = CentralServer::new(3);
        assert!(server.locations().is_empty());
        for id in [9u64, 2, 40, 7] {
            let rec = TrafficRecord::new(
                LocationId::new(id),
                PeriodId::new(0),
                BitmapSize::new(64).expect("pow2"),
            );
            server.submit(rec).expect("upload");
        }
        let listed: Vec<u64> = server.locations().iter().map(|l| l.get()).collect();
        assert_eq!(listed, vec![2, 7, 9, 40]);
    }

    #[test]
    fn identical_resend_is_idempotent() {
        let server = CentralServer::new(3);
        let loc = LocationId::new(2);
        let mut rec = TrafficRecord::new(loc, PeriodId::new(0), BitmapSize::new(64).expect("pow2"));
        rec.set_reported_index(5);
        server.submit(rec.clone()).expect("first");
        // An RSU retrying after a lost ack re-sends the same bytes: success,
        // and the store is unchanged.
        server.submit(rec.clone()).expect("identical resend");
        assert_eq!(server.record_count(), 1);
        assert_eq!(server.record(loc, PeriodId::new(0)), Some(rec));
    }

    #[test]
    fn conflicting_duplicate_rejected() {
        let server = CentralServer::new(3);
        let loc = LocationId::new(2);
        let rec = TrafficRecord::new(loc, PeriodId::new(0), BitmapSize::new(64).expect("pow2"));
        server.submit(rec.clone()).expect("first");
        let mut conflicting = rec.clone();
        conflicting.set_reported_index(3);
        assert_eq!(
            server.submit(conflicting),
            Err(ServerError::DuplicateRecord {
                location: loc,
                period: PeriodId::new(0)
            })
        );
        // The original record survives the rejected conflict untouched.
        assert_eq!(server.record(loc, PeriodId::new(0)), Some(rec));
    }

    #[test]
    fn missing_record_reported() {
        let server = CentralServer::new(3);
        let loc = LocationId::new(3);
        let err = server
            .estimate_point_persistent(loc, &[PeriodId::new(0), PeriodId::new(1)])
            .expect_err("missing");
        assert_eq!(
            err,
            ServerError::MissingRecord {
                location: loc,
                period: PeriodId::new(0)
            }
        );
    }

    #[test]
    fn p2p_query() {
        let server = CentralServer::new(3);
        let scheme = EncodingScheme::new(9, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let commons: Vec<VehicleSecrets> = (0..800)
            .map(|_| VehicleSecrets::generate(&mut rng, 3))
            .collect();
        let (a, b) = (LocationId::new(10), LocationId::new(20));
        for p in 0..3u32 {
            server
                .submit(record_with(a, PeriodId::new(p), 8192, &commons, &scheme))
                .expect("upload");
            server
                .submit(record_with(b, PeriodId::new(p), 8192, &commons, &scheme))
                .expect("upload");
        }
        let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
        let est = server
            .estimate_p2p_persistent(a, b, &periods)
            .expect("estimate");
        assert!((est - 800.0).abs() / 800.0 < 0.15, "estimate {est}");
    }

    #[test]
    fn estimate_error_wrapped() {
        let server = CentralServer::new(3);
        let loc = LocationId::new(5);
        server
            .submit(TrafficRecord::new(
                loc,
                PeriodId::new(0),
                BitmapSize::new(64).expect("pow2"),
            ))
            .expect("upload");
        let err = server
            .estimate_point_persistent(loc, &[PeriodId::new(0)])
            .expect_err("too few records");
        assert!(matches!(
            err,
            ServerError::Estimate(EstimateError::TooFewRecords { .. })
        ));
        // Display and source() behave.
        assert!(err.to_string().contains("estimation failed"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn epoch_bumps_only_on_accepted_records_and_per_location() {
        let server = CentralServer::new(3);
        let (a, b) = (LocationId::new(1), LocationId::new(2));
        assert_eq!(server.epoch(a), 0, "untouched location");

        let mut rec = TrafficRecord::new(a, PeriodId::new(0), BitmapSize::new(64).expect("pow2"));
        rec.set_reported_index(5);
        server.submit(rec.clone()).expect("first");
        assert_eq!(server.epoch(a), 1);

        // Idempotent re-send: records unchanged, epoch unchanged.
        server.submit(rec.clone()).expect("resend");
        assert_eq!(server.epoch(a), 1);

        // Rejected conflict: records unchanged, epoch unchanged.
        let mut conflicting = rec.clone();
        conflicting.set_reported_index(7);
        assert!(server.submit(conflicting).is_err());
        assert_eq!(server.epoch(a), 1);

        // Uploads to one location never move another location's epoch.
        let other = TrafficRecord::new(b, PeriodId::new(0), BitmapSize::new(64).expect("pow2"));
        server.submit(other).expect("other location");
        assert_eq!(server.epoch(a), 1);
        assert_eq!(server.epoch(b), 1);

        let second = TrafficRecord::new(a, PeriodId::new(1), BitmapSize::new(64).expect("pow2"));
        server.submit(second).expect("second period");
        assert_eq!(server.epoch(a), 2);
    }

    #[test]
    fn poisoned_shard_lock_is_recovered() {
        let server = CentralServer::new(3);
        let loc = LocationId::new(7);
        let mut rec = TrafficRecord::new(loc, PeriodId::new(0), BitmapSize::new(64).expect("pow2"));
        rec.set_reported_index(3);
        server.submit(rec.clone()).expect("first");

        // Poison the shard's lock the way a panicking handler thread would.
        let shard = server.shard(loc).expect("shard exists");
        let poisoned = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = shard.inner.write().expect("not yet poisoned");
            panic!("injected handler panic");
        }));
        assert!(poisoned.is_err());
        assert!(
            shard.inner.read().is_err(),
            "lock must actually be poisoned"
        );

        // Every path still works: the store recovers the guard instead of
        // cascading the panic into every later request.
        assert_eq!(server.record(loc, PeriodId::new(0)), Some(rec));
        let mut next =
            TrafficRecord::new(loc, PeriodId::new(1), BitmapSize::new(64).expect("pow2"));
        next.set_reported_index(4);
        server.submit(next).expect("submit after poison");
        assert_eq!(server.record_count(), 2);
        assert_eq!(server.epoch(loc), 2);
        assert!(server.estimate_volume(loc, PeriodId::new(0)).is_ok());
    }

    #[test]
    fn concurrent_uploads_and_queries_across_locations() {
        let server = CentralServer::new(3);
        let scheme = EncodingScheme::new(5, 3);
        const LOCATIONS: u64 = 8;
        const PERIODS: u32 = 3;
        let server_ref = &server;
        let scheme_ref = &scheme;
        std::thread::scope(|scope| {
            for loc in 0..LOCATIONS {
                let server = server_ref;
                let scheme = scheme_ref;
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(loc);
                    let fleet: Vec<VehicleSecrets> = (0..50)
                        .map(|_| VehicleSecrets::generate(&mut rng, 3))
                        .collect();
                    for p in 0..PERIODS {
                        let rec = record_with(
                            LocationId::new(loc),
                            PeriodId::new(p),
                            1024,
                            &fleet,
                            scheme,
                        );
                        server.submit(rec).expect("concurrent submit");
                    }
                });
                // Concurrent readers: any Ok answer is fine, any missing
                // record is fine; nothing may panic or deadlock.
                let server = server_ref;
                scope.spawn(move || {
                    let periods: Vec<PeriodId> = (0..PERIODS).map(PeriodId::new).collect();
                    for _ in 0..20 {
                        let _ = server.estimate_point_persistent(LocationId::new(loc), &periods);
                        let _ = server.estimate_volume(LocationId::new(loc), PeriodId::new(0));
                    }
                });
            }
        });
        assert_eq!(
            server.record_count(),
            (LOCATIONS * u64::from(PERIODS)) as usize
        );
        assert_eq!(server.location_count(), LOCATIONS as usize);
    }
}
