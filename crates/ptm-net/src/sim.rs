//! The end-to-end V2I simulator: RSUs beacon, vehicles arrive/depart,
//! frames traverse a lossy channel, and finished records are uploaded to
//! the central server.

use crate::channel::ChannelModel;
use crate::event::EventQueue;
use crate::message::Message;
use crate::obu::Obu;
use crate::rsu::Rsu;
use crate::server::{CentralServer, ServerError};
use crate::time::{SimDuration, SimTime};
use ptm_core::encoding::{EncodingScheme, LocationId, VehicleSecrets};
use ptm_core::params::BitmapSize;
use ptm_core::record::PeriodId;
use ptm_crypto::cert::TrustedAuthority;
use ptm_traffic::presence::PresenceLog;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::HashSet;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// How often each RSU broadcasts a beacon ("such as once per second",
    /// paper Sec. II-D).
    pub beacon_interval: SimDuration,
    /// How long a passing vehicle stays within radio range.
    pub dwell_time: SimDuration,
    /// The wireless channel.
    pub channel: ChannelModel,
    /// Length of one measurement period.
    pub period_length: SimDuration,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            beacon_interval: SimDuration::from_secs(1),
            dwell_time: SimDuration::from_secs(5),
            channel: ChannelModel::lossless(),
            period_length: SimDuration::from_secs(60),
        }
    }
}

/// Frame- and protocol-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Beacons broadcast by RSUs.
    pub beacons_broadcast: u64,
    /// Beacon frames that reached a vehicle.
    pub beacon_frames_delivered: u64,
    /// Reports transmitted by vehicles (including retries).
    pub reports_sent: u64,
    /// Reports accepted by RSUs.
    pub reports_accepted: u64,
    /// Acks that reached their vehicle.
    pub acks_delivered: u64,
    /// Frames lost on the channel (any type).
    pub frames_lost: u64,
    /// Total bytes transmitted over the air (wire format, including lost
    /// frames; beacons counted once per broadcast).
    pub bytes_sent: u64,
}

#[derive(Debug)]
enum SimEvent {
    BeaconTick {
        rsu: usize,
        period_end: SimTime,
    },
    Arrive {
        vehicle: usize,
        rsu: usize,
    },
    Depart {
        vehicle: usize,
        rsu: usize,
    },
    VehicleRx {
        vehicle: usize,
        rsu: usize,
        message: Message,
    },
    RsuRx {
        rsu: usize,
        vehicle: usize,
        message: Message,
    },
}

/// A scheduled vehicle pass within the next period.
#[derive(Debug, Clone, Copy)]
struct PendingPass {
    vehicle: usize,
    rsu: usize,
    offset: SimDuration,
}

/// The discrete-event V2I simulator.
///
/// Typical use: create RSUs, add vehicles, schedule passes, call
/// [`V2iSimulator::run_period`] once per measurement period, then query the
/// [`CentralServer`] for persistent-traffic estimates.
#[derive(Debug)]
pub struct V2iSimulator {
    config: SimConfig,
    scheme: EncodingScheme,
    rsus: Vec<Rsu>,
    obus: Vec<Obu>,
    in_range: Vec<HashSet<usize>>,
    pending: Vec<PendingPass>,
    queue: EventQueue<SimEvent>,
    now: SimTime,
    rng: ChaCha12Rng,
    server: CentralServer,
    presence: PresenceLog,
    stats: SimStats,
    authority: TrustedAuthority,
}

impl V2iSimulator {
    /// Builds a simulator with RSUs at the given `(location, bitmap size)`
    /// specs, all certified by a single trusted authority.
    pub fn new(
        config: SimConfig,
        scheme: EncodingScheme,
        rsu_specs: &[(LocationId, BitmapSize)],
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut authority = TrustedAuthority::from_seed(rng.gen());
        let rsus: Vec<Rsu> = rsu_specs
            .iter()
            .map(|&(location, size)| {
                let credential = authority.issue(&format!("rsu-{}", location.get()));
                Rsu::new(credential, location, size, PeriodId::new(0), &mut rng)
            })
            .collect();
        let in_range = vec![HashSet::new(); rsus.len()];
        Self {
            config,
            scheme,
            rsus,
            obus: Vec::new(),
            in_range,
            pending: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng,
            server: CentralServer::new(scheme.num_representatives()),
            presence: PresenceLog::new(),
            stats: SimStats::default(),
            authority,
        }
    }

    /// Deploys a **rogue** RSU: same radio behaviour, but its certificate
    /// comes from an unrelated authority, so vehicles silently refuse to
    /// answer its beacons (paper Sec. II-B). Returns the RSU index.
    ///
    /// The rogue's records still upload to the server (the server trusts
    /// its backhaul, not the airside), so tests can observe that they stay
    /// empty.
    pub fn add_rogue_rsu(&mut self, location: LocationId, size: BitmapSize) -> usize {
        let mut rogue_authority = TrustedAuthority::from_seed(self.rng.gen());
        let credential = rogue_authority.issue(&format!("rogue-{}", location.get()));
        self.rsus.push(Rsu::new(
            credential,
            location,
            size,
            PeriodId::new(0),
            &mut self.rng,
        ));
        self.in_range.push(HashSet::new());
        self.rsus.len() - 1
    }

    /// Registers a vehicle with freshly generated secrets; returns its
    /// index.
    pub fn add_vehicle(&mut self) -> usize {
        let secrets = VehicleSecrets::generate(&mut self.rng, self.scheme.num_representatives());
        self.add_vehicle_with_secrets(secrets)
    }

    /// Registers a vehicle with caller-provided secrets; returns its index.
    pub fn add_vehicle_with_secrets(&mut self, secrets: VehicleSecrets) -> usize {
        self.obus.push(Obu::new(secrets, self.authority.root()));
        self.obus.len() - 1
    }

    /// Schedules vehicle `vehicle` to pass RSU `rsu` at `offset` into the
    /// *next* period run.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `offset` exceeds the period
    /// length.
    pub fn schedule_pass(&mut self, vehicle: usize, rsu: usize, offset: SimDuration) {
        assert!(vehicle < self.obus.len(), "vehicle index out of range");
        assert!(rsu < self.rsus.len(), "rsu index out of range");
        assert!(
            offset <= self.config.period_length,
            "pass offset beyond the period length"
        );
        self.pending.push(PendingPass {
            vehicle,
            rsu,
            offset,
        });
    }

    /// Runs one full measurement period: drains all scheduled passes and
    /// protocol events, then uploads every RSU's record to the server.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerError::DuplicateRecord`] if a period id is re-run
    /// and produces records that differ from the ones already uploaded
    /// (identical re-uploads are accepted idempotently).
    pub fn run_period(&mut self, period: PeriodId) -> Result<(), ServerError> {
        let _t = ptm_obs::span!("net.sim.period");
        let stats_before = self.stats;
        let start = self.now;
        let end = start + self.config.period_length;

        // Re-arm the RSUs for this period id (they were initialised with
        // period 0; finish_period below realigns subsequent ones).
        for rsu in 0..self.rsus.len() {
            self.queue.schedule(
                start,
                SimEvent::BeaconTick {
                    rsu,
                    period_end: end,
                },
            );
        }
        let passes = std::mem::take(&mut self.pending);
        for pass in passes {
            let vehicle_id = self.obus[pass.vehicle].secrets().id();
            self.presence
                .record(self.rsus[pass.rsu].location(), period, vehicle_id);
            self.queue.schedule(
                start + pass.offset,
                SimEvent::Arrive {
                    vehicle: pass.vehicle,
                    rsu: pass.rsu,
                },
            );
        }

        while let Some((at, event)) = self.queue.pop() {
            self.now = at;
            self.handle(event);
        }
        self.now = end;

        // Upload and reset.
        let next = PeriodId::new(period.get() + 1);
        for i in 0..self.rsus.len() {
            let mut record = self.rsus[i].finish_period(next, &mut self.rng);
            // RSUs were armed with sequential ids; stamp the authoritative
            // period id the caller asked for.
            if record.period() != period {
                record = record.restamped(period);
            }
            self.server.submit(record)?;
        }
        // Clear residual range state (vehicles may still be "in range" if
        // the period ended mid-dwell).
        for set in &mut self.in_range {
            set.clear();
        }
        ptm_obs::counter!("net.sim.periods").inc();
        ptm_obs::debug!("net.sim", "period complete";
            period = period.get(),
            beacons = self.stats.beacons_broadcast - stats_before.beacons_broadcast,
            reports_sent = self.stats.reports_sent - stats_before.reports_sent,
            reports_accepted = self.stats.reports_accepted - stats_before.reports_accepted,
            frames_lost = self.stats.frames_lost - stats_before.frames_lost,
            bytes_sent = self.stats.bytes_sent - stats_before.bytes_sent,
        );
        Ok(())
    }

    fn handle(&mut self, event: SimEvent) {
        match event {
            SimEvent::BeaconTick { rsu, period_end } => {
                self.stats.beacons_broadcast += 1;
                let beacon = self.rsus[rsu].beacon();
                self.stats.bytes_sent +=
                    crate::wire::wire_len(&Message::Beacon(beacon.clone())) as u64;
                let vehicles: Vec<usize> = self.in_range[rsu].iter().copied().collect();
                for vehicle in vehicles {
                    match self.config.channel.transmit(&mut self.rng) {
                        Some(delay) => {
                            self.stats.beacon_frames_delivered += 1;
                            self.queue.schedule(
                                self.now + delay,
                                SimEvent::VehicleRx {
                                    vehicle,
                                    rsu,
                                    message: Message::Beacon(beacon.clone()),
                                },
                            );
                        }
                        None => self.stats.frames_lost += 1,
                    }
                }
                let next = self.now + self.config.beacon_interval;
                if next < period_end {
                    self.queue
                        .schedule(next, SimEvent::BeaconTick { rsu, period_end });
                }
            }
            SimEvent::Arrive { vehicle, rsu } => {
                self.in_range[rsu].insert(vehicle);
                self.queue.schedule(
                    self.now + self.config.dwell_time,
                    SimEvent::Depart { vehicle, rsu },
                );
            }
            SimEvent::Depart { vehicle, rsu } => {
                self.in_range[rsu].remove(&vehicle);
            }
            SimEvent::VehicleRx {
                vehicle,
                rsu,
                message,
            } => match message {
                Message::Beacon(beacon) => {
                    if let Ok(Some(report)) =
                        self.obus[vehicle].handle_beacon(&self.scheme, &beacon, &mut self.rng)
                    {
                        self.stats.reports_sent += 1;
                        self.stats.bytes_sent +=
                            crate::wire::wire_len(&Message::Report(report.clone())) as u64;
                        match self.config.channel.transmit(&mut self.rng) {
                            Some(delay) => self.queue.schedule(
                                self.now + delay,
                                SimEvent::RsuRx {
                                    rsu,
                                    vehicle,
                                    message: Message::Report(report),
                                },
                            ),
                            None => self.stats.frames_lost += 1,
                        }
                    }
                }
                Message::Ack(ack) => {
                    if self.obus[vehicle].handle_ack(&ack) {
                        self.stats.acks_delivered += 1;
                    }
                }
                Message::Report(_) => {} // vehicles never receive reports
            },
            SimEvent::RsuRx {
                rsu,
                vehicle,
                message,
            } => {
                if let Message::Report(report) = message {
                    if let Some(ack) = self.rsus[rsu].handle_report(&report) {
                        self.stats.reports_accepted += 1;
                        if self.in_range[rsu].contains(&vehicle) {
                            self.stats.bytes_sent +=
                                crate::wire::wire_len(&Message::Ack(ack)) as u64;
                            match self.config.channel.transmit(&mut self.rng) {
                                Some(delay) => self.queue.schedule(
                                    self.now + delay,
                                    SimEvent::VehicleRx {
                                        vehicle,
                                        rsu,
                                        message: Message::Ack(ack),
                                    },
                                ),
                                None => self.stats.frames_lost += 1,
                            }
                        }
                    }
                }
            }
        }
    }

    /// The central server with all uploaded records.
    pub fn server(&self) -> &CentralServer {
        &self.server
    }

    /// Frame/protocol counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Ground-truth presence log.
    pub fn presence(&self) -> &PresenceLog {
        &self.presence
    }

    /// The shared encoding scheme.
    pub fn scheme(&self) -> &EncodingScheme {
        &self.scheme
    }

    /// A registered vehicle's secrets (for ground-truth checks in tests).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn vehicle_secrets(&self, vehicle: usize) -> &VehicleSecrets {
        self.obus[vehicle].secrets()
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(ms: &[usize]) -> Vec<(LocationId, BitmapSize)> {
        ms.iter()
            .enumerate()
            .map(|(i, &m)| {
                (
                    LocationId::new(i as u64 + 1),
                    BitmapSize::new(m).expect("pow2"),
                )
            })
            .collect()
    }

    #[test]
    fn single_vehicle_is_recorded_exactly() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(42, 3),
            &specs(&[1024]),
            7,
        );
        let v = sim.add_vehicle();
        sim.schedule_pass(v, 0, SimDuration::from_secs(2));
        sim.run_period(PeriodId::new(0)).expect("period runs");

        let location = LocationId::new(1);
        let record = sim
            .server()
            .record(location, PeriodId::new(0))
            .expect("uploaded");
        let expected = sim
            .scheme()
            .encode_index(sim.vehicle_secrets(v), location, 1024);
        assert_eq!(
            record.bitmap().iter_ones().collect::<Vec<_>>(),
            vec![expected]
        );
        assert_eq!(sim.stats().reports_accepted, 1);
        assert!(sim.stats().acks_delivered >= 1);
    }

    #[test]
    fn lossless_protocol_records_every_vehicle() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(43, 3),
            &specs(&[4096]),
            8,
        );
        let vehicles: Vec<usize> = (0..200).map(|_| sim.add_vehicle()).collect();
        for (i, &v) in vehicles.iter().enumerate() {
            sim.schedule_pass(v, 0, SimDuration::from_millis(i as u64 * 100));
        }
        sim.run_period(PeriodId::new(0)).expect("period runs");
        // Every vehicle's bit must be set — compare to direct encoding.
        let location = LocationId::new(1);
        let record = sim
            .server()
            .record(location, PeriodId::new(0))
            .expect("uploaded");
        for &v in &vehicles {
            let idx = sim
                .scheme()
                .encode_index(sim.vehicle_secrets(v), location, 4096);
            assert!(record.bitmap().get(idx), "vehicle {v} missing");
        }
        assert_eq!(sim.presence().present(location, PeriodId::new(0)), 200);
    }

    #[test]
    fn lossy_channel_still_converges_with_retries() {
        let config = SimConfig {
            channel: ChannelModel::with_loss(0.5),
            dwell_time: SimDuration::from_secs(20),
            ..SimConfig::default()
        };
        let mut sim = V2iSimulator::new(config, EncodingScheme::new(44, 3), &specs(&[1024]), 9);
        let vehicles: Vec<usize> = (0..50).map(|_| sim.add_vehicle()).collect();
        for &v in &vehicles {
            sim.schedule_pass(v, 0, SimDuration::from_secs(1));
        }
        sim.run_period(PeriodId::new(0)).expect("period runs");
        // 20 s dwell at 1 beacon/s and 50% loss: each vehicle effectively
        // gets ~20 attempts; all should land.
        let location = LocationId::new(1);
        let record = sim
            .server()
            .record(location, PeriodId::new(0))
            .expect("uploaded");
        for &v in &vehicles {
            let idx = sim
                .scheme()
                .encode_index(sim.vehicle_secrets(v), location, 1024);
            assert!(record.bitmap().get(idx), "vehicle {v} lost despite retries");
        }
        assert!(
            sim.stats().frames_lost > 0,
            "channel was supposed to drop frames"
        );
    }

    #[test]
    fn total_loss_records_nothing() {
        let config = SimConfig {
            channel: ChannelModel::with_loss(1.0),
            ..SimConfig::default()
        };
        let mut sim = V2iSimulator::new(config, EncodingScheme::new(45, 3), &specs(&[1024]), 10);
        let v = sim.add_vehicle();
        sim.schedule_pass(v, 0, SimDuration::from_secs(1));
        sim.run_period(PeriodId::new(0)).expect("period runs");
        let record = sim
            .server()
            .record(LocationId::new(1), PeriodId::new(0))
            .expect("uploaded even when empty");
        assert_eq!(record.bitmap().count_ones(), 0);
        // Ground truth still knows the vehicle physically passed.
        assert_eq!(
            sim.presence().present(LocationId::new(1), PeriodId::new(0)),
            1
        );
    }

    #[test]
    fn multi_period_point_persistent_query() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(46, 3),
            &specs(&[2048]),
            11,
        );
        let commons: Vec<usize> = (0..100).map(|_| sim.add_vehicle()).collect();
        let periods: Vec<PeriodId> = (0..4).map(PeriodId::new).collect();
        for &p in &periods {
            for &v in &commons {
                sim.schedule_pass(v, 0, SimDuration::from_secs(1));
            }
            // Plus per-period transient vehicles.
            for _ in 0..150 {
                let t = sim.add_vehicle();
                sim.schedule_pass(t, 0, SimDuration::from_secs(2));
            }
            sim.run_period(p).expect("period runs");
        }
        let location = LocationId::new(1);
        let truth = sim.presence().point_persistent(location, &periods);
        assert_eq!(truth, 100);
        let est = sim
            .server()
            .estimate_point_persistent(location, &periods)
            .expect("estimate");
        assert!(
            (est - 100.0).abs() / 100.0 < 0.3,
            "estimate {est} vs truth 100"
        );
    }

    #[test]
    fn two_rsu_p2p_query() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(47, 3),
            &specs(&[2048, 2048]),
            12,
        );
        let commons: Vec<usize> = (0..120).map(|_| sim.add_vehicle()).collect();
        let periods: Vec<PeriodId> = (0..3).map(PeriodId::new).collect();
        for &p in &periods {
            for &v in &commons {
                sim.schedule_pass(v, 0, SimDuration::from_secs(1));
                sim.schedule_pass(v, 1, SimDuration::from_secs(10));
            }
            for _ in 0..100 {
                let t = sim.add_vehicle();
                sim.schedule_pass(t, 0, SimDuration::from_secs(3));
            }
            for _ in 0..100 {
                let t = sim.add_vehicle();
                sim.schedule_pass(t, 1, SimDuration::from_secs(3));
            }
            sim.run_period(p).expect("period runs");
        }
        let (a, b) = (LocationId::new(1), LocationId::new(2));
        assert_eq!(sim.presence().p2p_persistent(a, b, &periods), 120);
        let est = sim
            .server()
            .estimate_p2p_persistent(a, b, &periods)
            .expect("estimate");
        assert!(
            (est - 120.0).abs() / 120.0 < 0.4,
            "estimate {est} vs truth 120"
        );
    }

    #[test]
    fn rogue_rsu_collects_nothing_while_genuine_rsu_works() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(50, 3),
            &specs(&[1024]),
            15,
        );
        let rogue = sim.add_rogue_rsu(LocationId::new(666), BitmapSize::new(1024).expect("pow2"));
        let vehicles: Vec<usize> = (0..40).map(|_| sim.add_vehicle()).collect();
        for &v in &vehicles {
            sim.schedule_pass(v, 0, SimDuration::from_secs(1));
            sim.schedule_pass(v, rogue, SimDuration::from_secs(1));
        }
        sim.run_period(PeriodId::new(0)).expect("period runs");
        let genuine = sim
            .server()
            .record(LocationId::new(1), PeriodId::new(0))
            .expect("uploaded");
        assert!(genuine.bitmap().count_ones() > 0);
        let rogue_record = sim
            .server()
            .record(LocationId::new(666), PeriodId::new(0))
            .expect("uploaded");
        assert_eq!(
            rogue_record.bitmap().count_ones(),
            0,
            "vehicles must stay silent toward the rogue RSU"
        );
    }

    #[test]
    fn bytes_are_accounted() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(51, 3),
            &specs(&[1024]),
            16,
        );
        let v = sim.add_vehicle();
        sim.schedule_pass(v, 0, SimDuration::from_secs(1));
        sim.run_period(PeriodId::new(0)).expect("period runs");
        let stats = sim.stats();
        // At least: beacons (~100 B each) + one report (<100 B) + one ack.
        assert!(stats.bytes_sent > stats.beacons_broadcast * 50);
        assert!(stats.bytes_sent < stats.beacons_broadcast * 200 + 500);
    }

    #[test]
    fn rerun_with_identical_records_is_idempotent() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(48, 3),
            &specs(&[64]),
            13,
        );
        // No traffic: both runs upload the same empty record, which the
        // server accepts idempotently.
        sim.run_period(PeriodId::new(0)).expect("first run");
        sim.run_period(PeriodId::new(0)).expect("identical re-run");
    }

    #[test]
    fn rerun_with_conflicting_records_rejected() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(48, 3),
            &specs(&[64]),
            13,
        );
        sim.run_period(PeriodId::new(0)).expect("first run");
        // A vehicle passes during the re-run, so period 0's record now has
        // different contents: a conflict, not an idempotent duplicate.
        let v = sim.add_vehicle();
        sim.schedule_pass(v, 0, SimDuration::from_secs(1));
        assert!(sim.run_period(PeriodId::new(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_schedule_panics() {
        let mut sim = V2iSimulator::new(
            SimConfig::default(),
            EncodingScheme::new(49, 3),
            &specs(&[64]),
            14,
        );
        sim.schedule_pass(0, 0, SimDuration::ZERO);
    }
}
