//! The wireless channel model: per-message loss and propagation delay.
//!
//! DSRC contacts are short and lossy; the estimators' robustness to lost
//! beacons/reports is one of this repo's ablation experiments. The model is
//! deliberately simple — independent Bernoulli loss plus a fixed propagation
//! delay — because the estimator only cares whether a vehicle's single bit
//! report eventually lands.

use crate::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Loss/delay parameters for one hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Probability an individual frame is lost.
    pub loss_probability: f64,
    /// One-way propagation + processing delay.
    pub delay: SimDuration,
}

impl ChannelModel {
    /// A perfect channel: no loss, 100 µs delay.
    pub fn lossless() -> Self {
        Self {
            loss_probability: 0.0,
            delay: SimDuration::from_micros(100),
        }
    }

    /// A lossy channel with the given frame-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is outside `[0, 1]`.
    pub fn with_loss(loss_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability must be in [0, 1]"
        );
        Self {
            loss_probability,
            delay: SimDuration::from_micros(100),
        }
    }

    /// Samples one transmission: `Some(delay)` when the frame gets through,
    /// `None` when it is lost.
    pub fn transmit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimDuration> {
        if self.loss_probability > 0.0 && rng.gen::<f64>() < self.loss_probability {
            ptm_obs::counter!("net.channel.dropped").inc();
            None
        } else {
            ptm_obs::counter!("net.channel.delivered").inc();
            Some(self.delay)
        }
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self::lossless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn lossless_always_delivers() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ch = ChannelModel::lossless();
        for _ in 0..1000 {
            assert_eq!(ch.transmit(&mut rng), Some(SimDuration::from_micros(100)));
        }
    }

    #[test]
    fn total_loss_never_delivers() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ch = ChannelModel::with_loss(1.0);
        for _ in 0..1000 {
            assert_eq!(ch.transmit(&mut rng), None);
        }
    }

    #[test]
    fn loss_rate_is_calibrated() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ch = ChannelModel::with_loss(0.3);
        let delivered = (0..100_000)
            .filter(|_| ch.transmit(&mut rng).is_some())
            .count();
        let rate = delivered as f64 / 100_000.0;
        assert!((rate - 0.7).abs() < 0.01, "delivery rate {rate}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = ChannelModel::with_loss(1.5);
    }
}
