//! Deterministic fault injection for the persistent traffic measurement
//! stack.
//!
//! Production code in `ptm-store` and `ptm-rpc` keeps permanent *fault
//! sites* — named hook points on the real I/O paths (archive writes and
//! fsyncs, RPC stream reads and writes, estimate execution). Each site is a
//! [`SiteHandle`]; the default handle is disabled and its per-operation
//! [`SiteHandle::check`] is one branch on a `None`, which keeps the hooks
//! free when no faults are scheduled.
//!
//! Tests (and `ptm serve --faults`) build a [`FaultPlan`] — a seeded set of
//! per-site [`Rule`] schedules — and hand its handles to the code under
//! test. The same seed and spec reproduce the same faults, so chaos runs
//! are replayable. [`FaultyStream`] applies the same actions to any
//! `Read + Write` transport.
//!
//! ```
//! use ptm_fault::{sites, FaultAction, FaultPlan, Rule};
//!
//! let plan = FaultPlan::parse("store.write@3=enospc", 42).expect("spec");
//! let site = plan.site(sites::STORE_WRITE);
//! assert_eq!(site.check(), None);
//! assert_eq!(site.check(), None);
//! assert_eq!(
//!     site.check(),
//!     Some(FaultAction::Error(std::io::ErrorKind::StorageFull))
//! );
//! let _ = Rule::every(1, 2, FaultAction::Reset).times(3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Production code must propagate errors, not abort: unwrap/expect are
// test-only conveniences (same gate as ptm-rpc/ptm-store; enforced by
// `cargo clippy -p ptm-fault -- -D warnings` in scripts/ci.sh).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod plan;
mod stream;

pub use plan::{FaultAction, FaultPlan, FaultPlanBuilder, PlanError, Rule, SiteHandle};
pub use stream::FaultyStream;

/// The registry of fault-site names production code exposes.
///
/// [`FaultPlanBuilder::build`] rejects rules naming sites outside this list,
/// so a typo in a chaos spec fails loudly instead of silently never firing.
pub mod sites {
    /// Archive record/frame writes ([`std::io::Write::write`] on the
    /// storage backend).
    pub const STORE_WRITE: &str = "store.write";
    /// Archive buffer flushes ([`std::io::Write::flush`]).
    pub const STORE_FLUSH: &str = "store.flush";
    /// Archive fsyncs (`File::sync_all`).
    pub const STORE_SYNC: &str = "store.sync";
    /// Archive truncations during rollback (`File::set_len`).
    pub const STORE_SET_LEN: &str = "store.set_len";
    /// Segment-store manifest commits (the atomic temp-write + rename that
    /// publishes a new segment set).
    pub const STORE_MANIFEST: &str = "store.manifest";
    /// Segment seals (the footer index frame + trailer written when an
    /// active segment rotates out).
    pub const STORE_SEAL: &str = "store.seal";
    /// RPC server stream reads (request frames arriving).
    pub const RPC_READ: &str = "rpc.read";
    /// RPC server stream writes (response frames leaving).
    pub const RPC_WRITE: &str = "rpc.write";
    /// Estimate execution inside the server's in-flight gate (latency or
    /// failure while computing a query answer).
    pub const RPC_ESTIMATE: &str = "rpc.estimate";
    /// Ingest execution under the server's writer lock, checked once per
    /// coalesced ingest job just after the lock is taken. A `panic` here
    /// exercises the daemon's catch-unwind and poisoned-lock recovery; a
    /// `delay` holds the writer lock to back up the upload queue.
    pub const RPC_INGEST: &str = "rpc.ingest";

    /// Every registered site.
    pub const ALL: &[&str] = &[
        STORE_WRITE,
        STORE_FLUSH,
        STORE_SYNC,
        STORE_SET_LEN,
        STORE_MANIFEST,
        STORE_SEAL,
        RPC_READ,
        RPC_WRITE,
        RPC_ESTIMATE,
        RPC_INGEST,
    ];

    /// Whether `name` is a registered site.
    pub fn is_known(name: &str) -> bool {
        ALL.contains(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_its_own_names() {
        for name in sites::ALL {
            assert!(sites::is_known(name));
        }
        assert!(!sites::is_known("store.write "));
        assert!(!sites::is_known(""));
    }
}
