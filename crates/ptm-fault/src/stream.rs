//! A fault-injecting wrapper around any `Read + Write` stream.

use crate::plan::{FaultAction, SiteHandle};
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Wraps a stream and applies scheduled [`FaultAction`]s to its reads and
/// writes.
///
/// With disabled handles (see [`FaultyStream::passthrough`]) every call is a
/// single-branch delegation to the inner stream, so production paths can keep
/// the wrapper unconditionally.
///
/// Every action is **nonblocking-safe**: a [`FaultAction::Delay`] never
/// sleeps on the caller's thread (under a reactor that thread owns every
/// connection, so one injected stall used to freeze them all). Instead the
/// stream arms a release instant and answers `WouldBlock` until it passes —
/// exactly what a slow peer looks like to nonblocking I/O — and the deferred
/// operation then proceeds normally. Blocking callers driving the stream
/// through a retry loop (e.g. a stall-budgeted frame reader) observe the
/// same delayed completion.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    read_site: SiteHandle,
    write_site: SiteHandle,
    /// While set, reads answer `WouldBlock` until this instant (an armed
    /// [`FaultAction::Delay`]); the deferred read then proceeds.
    read_release: Option<Instant>,
    /// Write-side counterpart of `read_release`.
    write_release: Option<Instant>,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`, injecting `read_site` faults on reads and `write_site`
    /// faults on writes.
    pub fn new(inner: S, read_site: SiteHandle, write_site: SiteHandle) -> Self {
        Self {
            inner,
            read_site,
            write_site,
            read_release: None,
            write_release: None,
        }
    }

    /// Wraps `inner` with disabled handles (never injects anything).
    pub fn passthrough(inner: S) -> Self {
        Self::new(inner, SiteHandle::disabled(), SiteHandle::disabled())
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The wrapped stream, mutably.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

/// Resolves an armed delay: still-held stalls answer `WouldBlock`, an
/// expired one clears and lets the deferred operation proceed.
fn stall_pending(release: &mut Option<Instant>) -> bool {
    match release {
        // ptm-analyze: allow(determinism): stall release is wall-clock by design — the schedule that armed it is seeded; only the stall's duration rides the host clock
        Some(at) if Instant::now() < *at => true,
        Some(_) => {
            *release = None;
            false
        }
        None => false,
    }
}

fn would_block(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, format!("injected {what} stall"))
}

/// Arms `release` for `pause` from now and answers `WouldBlock`, deferring
/// the operation instead of sleeping on the caller's thread.
fn arm_stall(release: &mut Option<Instant>, pause: Duration, what: &str) -> io::Error {
    // ptm-analyze: allow(determinism): the fault schedule choosing to stall is seeded and deterministic; the release instant merely measures the requested pause
    *release = Some(Instant::now() + pause);
    would_block(what)
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if stall_pending(&mut self.read_release) {
            return Err(would_block("read"));
        }
        match self.read_site.check() {
            None => self.inner.read(buf),
            Some(FaultAction::Error(kind)) => Err(io::Error::new(kind, "injected read fault")),
            Some(FaultAction::Reset) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection reset",
            )),
            // EOF in the middle of whatever the peer was sending.
            Some(FaultAction::Truncate) => Ok(0),
            Some(FaultAction::Delay(pause)) => {
                Err(arm_stall(&mut self.read_release, pause, "read"))
            }
            Some(FaultAction::WouldBlock) => Err(would_block("read")),
            // A panic on the wire path would unwind the reactor thread, not
            // the handler under test; surface a hard error instead.
            Some(FaultAction::Panic) => Err(io::Error::other("injected read fault (panic site)")),
            Some(FaultAction::Short(limit)) => {
                let limit = limit.min(buf.len());
                if limit == 0 {
                    return Ok(0);
                }
                self.inner.read(&mut buf[..limit])
            }
            Some(FaultAction::Corrupt(mask)) => {
                let moved = self.inner.read(buf)?;
                for byte in &mut buf[..moved] {
                    *byte ^= mask;
                }
                Ok(moved)
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if stall_pending(&mut self.write_release) {
            return Err(would_block("write"));
        }
        match self.write_site.check() {
            None => self.inner.write(buf),
            Some(FaultAction::Error(kind)) => Err(io::Error::new(kind, "injected write fault")),
            Some(FaultAction::Reset) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection reset",
            )),
            // Claim success without delivering a byte (a half-dead peer).
            Some(FaultAction::Truncate) => Ok(buf.len()),
            Some(FaultAction::Delay(pause)) => {
                Err(arm_stall(&mut self.write_release, pause, "write"))
            }
            Some(FaultAction::WouldBlock) => Err(would_block("write")),
            Some(FaultAction::Panic) => Err(io::Error::other("injected write fault (panic site)")),
            Some(FaultAction::Short(limit)) => {
                let limit = limit.min(buf.len());
                self.inner.write(&buf[..limit])
            }
            Some(FaultAction::Corrupt(mask)) => {
                let twisted: Vec<u8> = buf.iter().map(|byte| byte ^ mask).collect();
                self.inner.write(&twisted)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, Rule};
    use crate::sites;
    use std::io::Cursor;

    fn plan_with(site: &str, rule: Rule) -> FaultPlan {
        FaultPlan::builder(7)
            .rule(site, rule)
            .build()
            .expect("plan")
    }

    #[test]
    fn passthrough_moves_bytes_untouched() {
        let mut stream = FaultyStream::passthrough(Cursor::new(Vec::new()));
        stream.write_all(b"hello").expect("write");
        stream.get_mut().set_position(0);
        let mut back = [0u8; 5];
        stream.read_exact(&mut back).expect("read");
        assert_eq!(&back, b"hello");
    }

    #[test]
    fn read_faults_apply_in_schedule_order() {
        let plan = plan_with(sites::RPC_READ, Rule::nth(2, FaultAction::Corrupt(0xFF)));
        let inner = Cursor::new(vec![1u8, 2, 3, 4]);
        let mut stream =
            FaultyStream::new(inner, plan.site(sites::RPC_READ), SiteHandle::disabled());
        let mut buf = [0u8; 2];
        stream.read_exact(&mut buf).expect("clean read");
        assert_eq!(buf, [1, 2]);
        stream
            .read_exact(&mut buf)
            .expect("corrupted read still succeeds");
        assert_eq!(buf, [!3, !4], "second read is XOR-masked");
    }

    #[test]
    fn short_read_limits_one_call_without_losing_data() {
        let plan = plan_with(sites::RPC_READ, Rule::nth(1, FaultAction::Short(1)));
        let inner = Cursor::new(vec![9u8, 8, 7]);
        let mut stream =
            FaultyStream::new(inner, plan.site(sites::RPC_READ), SiteHandle::disabled());
        let mut buf = [0u8; 3];
        // read_exact loops: the first call is clipped to one byte, the rest
        // arrive on later (clean) calls.
        stream.read_exact(&mut buf).expect("read");
        assert_eq!(buf, [9, 8, 7]);
        assert!(stream.get_ref().position() == 3);
    }

    #[test]
    fn truncate_read_reports_eof_and_truncate_write_swallows() {
        let plan = FaultPlan::builder(3)
            .rule(sites::RPC_READ, Rule::nth(1, FaultAction::Truncate))
            .rule(sites::RPC_WRITE, Rule::nth(1, FaultAction::Truncate))
            .build()
            .expect("plan");
        let inner = Cursor::new(vec![1u8, 2, 3]);
        let mut stream = FaultyStream::new(
            inner,
            plan.site(sites::RPC_READ),
            plan.site(sites::RPC_WRITE),
        );
        let mut buf = [0u8; 3];
        assert_eq!(stream.read(&mut buf).expect("eof"), 0, "injected EOF");
        stream.get_mut().set_position(3);
        stream
            .write_all(b"xy")
            .expect("swallowed write claims success");
        assert_eq!(
            stream.get_ref().get_ref().len(),
            3,
            "nothing actually written"
        );
    }

    #[test]
    fn write_errors_and_resets_surface_as_io_errors() {
        let plan = FaultPlan::builder(3)
            .rule(
                sites::RPC_WRITE,
                Rule::nth(1, FaultAction::Error(io::ErrorKind::StorageFull)),
            )
            .rule(sites::RPC_WRITE, Rule::nth(2, FaultAction::Reset))
            .build()
            .expect("plan");
        let mut stream = FaultyStream::new(
            Cursor::new(Vec::new()),
            SiteHandle::disabled(),
            plan.site(sites::RPC_WRITE),
        );
        let err = stream.write(b"abc").expect_err("enospc");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let err = stream.write(b"abc").expect_err("reset");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        stream
            .write_all(b"abc")
            .expect("rules exhausted; writes clean again");
        assert_eq!(stream.get_ref().get_ref(), b"abc");
    }

    #[test]
    fn corrupt_write_flips_delivered_bytes() {
        let plan = plan_with(sites::RPC_WRITE, Rule::nth(1, FaultAction::Corrupt(0x0F)));
        let mut stream = FaultyStream::new(
            Cursor::new(Vec::new()),
            SiteHandle::disabled(),
            plan.site(sites::RPC_WRITE),
        );
        stream.write_all(&[0x00, 0xF0]).expect("write");
        assert_eq!(stream.get_ref().get_ref(), &[0x0F, 0xFF]);
    }

    #[test]
    fn wouldblock_stutters_exactly_one_call() {
        let plan = plan_with(sites::RPC_READ, Rule::nth(1, FaultAction::WouldBlock));
        let inner = Cursor::new(vec![5u8, 6]);
        let mut stream =
            FaultyStream::new(inner, plan.site(sites::RPC_READ), SiteHandle::disabled());
        let mut buf = [0u8; 2];
        let err = stream.read(&mut buf).expect_err("stutter");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(stream.read(&mut buf).expect("next call clean"), 2);
        assert_eq!(buf, [5, 6]);
    }

    #[test]
    fn delay_defers_with_wouldblock_instead_of_sleeping() {
        let pause = Duration::from_millis(40);
        let plan = plan_with(sites::RPC_READ, Rule::nth(1, FaultAction::Delay(pause)));
        let inner = Cursor::new(vec![1u8, 2, 3]);
        let mut stream =
            FaultyStream::new(inner, plan.site(sites::RPC_READ), SiteHandle::disabled());
        let mut buf = [0u8; 3];
        // The faulted call returns immediately (no thread sleep) with
        // WouldBlock, and keeps answering WouldBlock until the release.
        let started = Instant::now();
        let err = stream.read(&mut buf).expect_err("deferred");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(
            started.elapsed() < pause,
            "delay slept on the caller's thread: {:?}",
            started.elapsed()
        );
        let mut stutters = 0u32;
        let done = loop {
            match stream.read(&mut buf) {
                Ok(n) => break n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    stutters += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(err) => panic!("unexpected error during stall: {err}"),
            }
        };
        assert_eq!(done, 3, "deferred read completes after the release");
        assert!(stutters > 0, "stall window never answered WouldBlock");
        assert!(
            started.elapsed() >= pause,
            "release fired early: {:?}",
            started.elapsed()
        );
        // The stall consumed exactly one scheduled op; later ops are clean
        // (only the nth(1) rule existed, and it fired once).
        assert_eq!(plan.site(sites::RPC_READ).fired(), 1);
    }

    #[test]
    fn write_delay_defers_independently_of_reads() {
        let pause = Duration::from_millis(20);
        let plan = plan_with(sites::RPC_WRITE, Rule::nth(1, FaultAction::Delay(pause)));
        let inner = Cursor::new(vec![7u8, 8]);
        let mut stream =
            FaultyStream::new(inner, SiteHandle::disabled(), plan.site(sites::RPC_WRITE));
        let err = stream.write(b"xy").expect_err("deferred write");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Reads proceed while the write side is stalled.
        let mut buf = [0u8; 2];
        assert_eq!(stream.read(&mut buf).expect("read unaffected"), 2);
        std::thread::sleep(pause + Duration::from_millis(5));
        stream.write_all(b"xy").expect("write after release");
    }

    #[test]
    fn panic_action_surfaces_as_error_on_streams() {
        let plan = plan_with(sites::RPC_READ, Rule::nth(1, FaultAction::Panic));
        let inner = Cursor::new(vec![1u8]);
        let mut stream =
            FaultyStream::new(inner, plan.site(sites::RPC_READ), SiteHandle::disabled());
        let mut buf = [0u8; 1];
        let err = stream.read(&mut buf).expect_err("hard error, not a panic");
        assert_eq!(err.kind(), io::ErrorKind::Other);
    }
}
