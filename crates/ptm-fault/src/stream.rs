//! A fault-injecting wrapper around any `Read + Write` stream.

use crate::plan::{FaultAction, SiteHandle};
use std::io::{self, Read, Write};

/// Wraps a stream and applies scheduled [`FaultAction`]s to its reads and
/// writes.
///
/// With disabled handles (see [`FaultyStream::passthrough`]) every call is a
/// single-branch delegation to the inner stream, so production paths can keep
/// the wrapper unconditionally.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    read_site: SiteHandle,
    write_site: SiteHandle,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`, injecting `read_site` faults on reads and `write_site`
    /// faults on writes.
    pub fn new(inner: S, read_site: SiteHandle, write_site: SiteHandle) -> Self {
        Self {
            inner,
            read_site,
            write_site,
        }
    }

    /// Wraps `inner` with disabled handles (never injects anything).
    pub fn passthrough(inner: S) -> Self {
        Self::new(inner, SiteHandle::disabled(), SiteHandle::disabled())
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The wrapped stream, mutably.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.read_site.check() {
            None => self.inner.read(buf),
            Some(FaultAction::Error(kind)) => Err(io::Error::new(kind, "injected read fault")),
            Some(FaultAction::Reset) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection reset",
            )),
            // EOF in the middle of whatever the peer was sending.
            Some(FaultAction::Truncate) => Ok(0),
            Some(FaultAction::Delay(pause)) => {
                std::thread::sleep(pause);
                self.inner.read(buf)
            }
            Some(FaultAction::Short(limit)) => {
                let limit = limit.min(buf.len());
                if limit == 0 {
                    return Ok(0);
                }
                self.inner.read(&mut buf[..limit])
            }
            Some(FaultAction::Corrupt(mask)) => {
                let moved = self.inner.read(buf)?;
                for byte in &mut buf[..moved] {
                    *byte ^= mask;
                }
                Ok(moved)
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.write_site.check() {
            None => self.inner.write(buf),
            Some(FaultAction::Error(kind)) => Err(io::Error::new(kind, "injected write fault")),
            Some(FaultAction::Reset) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection reset",
            )),
            // Claim success without delivering a byte (a half-dead peer).
            Some(FaultAction::Truncate) => Ok(buf.len()),
            Some(FaultAction::Delay(pause)) => {
                std::thread::sleep(pause);
                self.inner.write(buf)
            }
            Some(FaultAction::Short(limit)) => {
                let limit = limit.min(buf.len());
                self.inner.write(&buf[..limit])
            }
            Some(FaultAction::Corrupt(mask)) => {
                let twisted: Vec<u8> = buf.iter().map(|byte| byte ^ mask).collect();
                self.inner.write(&twisted)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, Rule};
    use crate::sites;
    use std::io::Cursor;

    fn plan_with(site: &str, rule: Rule) -> FaultPlan {
        FaultPlan::builder(7)
            .rule(site, rule)
            .build()
            .expect("plan")
    }

    #[test]
    fn passthrough_moves_bytes_untouched() {
        let mut stream = FaultyStream::passthrough(Cursor::new(Vec::new()));
        stream.write_all(b"hello").expect("write");
        stream.get_mut().set_position(0);
        let mut back = [0u8; 5];
        stream.read_exact(&mut back).expect("read");
        assert_eq!(&back, b"hello");
    }

    #[test]
    fn read_faults_apply_in_schedule_order() {
        let plan = plan_with(sites::RPC_READ, Rule::nth(2, FaultAction::Corrupt(0xFF)));
        let inner = Cursor::new(vec![1u8, 2, 3, 4]);
        let mut stream =
            FaultyStream::new(inner, plan.site(sites::RPC_READ), SiteHandle::disabled());
        let mut buf = [0u8; 2];
        stream.read_exact(&mut buf).expect("clean read");
        assert_eq!(buf, [1, 2]);
        stream
            .read_exact(&mut buf)
            .expect("corrupted read still succeeds");
        assert_eq!(buf, [!3, !4], "second read is XOR-masked");
    }

    #[test]
    fn short_read_limits_one_call_without_losing_data() {
        let plan = plan_with(sites::RPC_READ, Rule::nth(1, FaultAction::Short(1)));
        let inner = Cursor::new(vec![9u8, 8, 7]);
        let mut stream =
            FaultyStream::new(inner, plan.site(sites::RPC_READ), SiteHandle::disabled());
        let mut buf = [0u8; 3];
        // read_exact loops: the first call is clipped to one byte, the rest
        // arrive on later (clean) calls.
        stream.read_exact(&mut buf).expect("read");
        assert_eq!(buf, [9, 8, 7]);
        assert!(stream.get_ref().position() == 3);
    }

    #[test]
    fn truncate_read_reports_eof_and_truncate_write_swallows() {
        let plan = FaultPlan::builder(3)
            .rule(sites::RPC_READ, Rule::nth(1, FaultAction::Truncate))
            .rule(sites::RPC_WRITE, Rule::nth(1, FaultAction::Truncate))
            .build()
            .expect("plan");
        let inner = Cursor::new(vec![1u8, 2, 3]);
        let mut stream = FaultyStream::new(
            inner,
            plan.site(sites::RPC_READ),
            plan.site(sites::RPC_WRITE),
        );
        let mut buf = [0u8; 3];
        assert_eq!(stream.read(&mut buf).expect("eof"), 0, "injected EOF");
        stream.get_mut().set_position(3);
        stream
            .write_all(b"xy")
            .expect("swallowed write claims success");
        assert_eq!(
            stream.get_ref().get_ref().len(),
            3,
            "nothing actually written"
        );
    }

    #[test]
    fn write_errors_and_resets_surface_as_io_errors() {
        let plan = FaultPlan::builder(3)
            .rule(
                sites::RPC_WRITE,
                Rule::nth(1, FaultAction::Error(io::ErrorKind::StorageFull)),
            )
            .rule(sites::RPC_WRITE, Rule::nth(2, FaultAction::Reset))
            .build()
            .expect("plan");
        let mut stream = FaultyStream::new(
            Cursor::new(Vec::new()),
            SiteHandle::disabled(),
            plan.site(sites::RPC_WRITE),
        );
        let err = stream.write(b"abc").expect_err("enospc");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let err = stream.write(b"abc").expect_err("reset");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        stream
            .write_all(b"abc")
            .expect("rules exhausted; writes clean again");
        assert_eq!(stream.get_ref().get_ref(), b"abc");
    }

    #[test]
    fn corrupt_write_flips_delivered_bytes() {
        let plan = plan_with(sites::RPC_WRITE, Rule::nth(1, FaultAction::Corrupt(0x0F)));
        let mut stream = FaultyStream::new(
            Cursor::new(Vec::new()),
            SiteHandle::disabled(),
            plan.site(sites::RPC_WRITE),
        );
        stream.write_all(&[0x00, 0xF0]).expect("write");
        assert_eq!(stream.get_ref().get_ref(), &[0x0F, 0xFF]);
    }
}
