//! Seeded, deterministic fault schedules.
//!
//! A [`FaultPlan`] maps *site* names (see [`crate::sites`]) to ordered lists
//! of [`Rule`]s. Instrumented code holds a [`SiteHandle`] per site and calls
//! [`SiteHandle::check`] once per operation; the handle counts operations and
//! returns the [`FaultAction`] of the first rule whose schedule matches the
//! current operation index. A disabled handle is a `None` wrapped in a
//! newtype, so the check compiles down to a single branch.
//!
//! Determinism: operation indices are per-site monotonic counters and
//! probabilistic rules draw from a per-site xorshift stream seeded from
//! `plan_seed ^ fnv1a(site_name)`, so two runs with the same seed, spec, and
//! single-threaded operation order inject exactly the same faults.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an injected fault does to the operation it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with this [`io::ErrorKind`] (e.g.
    /// [`io::ErrorKind::StorageFull`] for `ENOSPC`).
    Error(io::ErrorKind),
    /// Move at most this many bytes (a short read or short write). A limit
    /// of zero behaves like an end-of-file / zero-length write.
    Short(usize),
    /// XOR every byte moved by the operation with this mask.
    Corrupt(u8),
    /// Pretend the stream ended: reads report EOF, writes are silently
    /// swallowed (claimed written, never delivered).
    Truncate,
    /// Stall the operation for this long. [`crate::FaultyStream`] defers
    /// nonblockingly — the faulted call (and every call until the release
    /// instant) returns [`io::ErrorKind::WouldBlock`], then the operation
    /// proceeds — so an injected stall composes with a reactor event loop
    /// instead of sleeping on (and freezing) the caller's thread. Non-stream
    /// sites without a nonblocking caller may still sleep in place.
    Delay(Duration),
    /// Fail with [`io::ErrorKind::ConnectionReset`].
    Reset,
    /// Return [`io::ErrorKind::WouldBlock`] for this one operation: a
    /// nonblocking-readiness stutter (the kernel saying "not now"), gone by
    /// the next call.
    WouldBlock,
    /// Panic at the fault site. Execution sites (e.g. `rpc.ingest`) invoke
    /// the panic themselves to exercise catch-unwind/poison-recovery paths;
    /// [`crate::FaultyStream`] maps it to an [`io::ErrorKind::Other`] error
    /// instead, because a panic on a reactor's wire path would kill the
    /// event loop rather than the handler under test.
    Panic,
}

/// One scheduled fault: *when* (operation index pattern, fire budget,
/// optional probability) and *what* ([`FaultAction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// 1-based operation index at which the rule first becomes eligible.
    pub first: u64,
    /// After `first`, eligible again every this many operations
    /// (`None`: eligible only at exactly `first`).
    pub every: Option<u64>,
    /// Ceiling on total fires (`u64::MAX`: unbounded).
    pub count: u64,
    /// Fire only with this probability in parts-per-million when eligible
    /// (`None`: always fire when eligible).
    pub chance_ppm: Option<u32>,
    /// What happens when the rule fires.
    pub action: FaultAction,
}

impl Rule {
    /// A rule firing exactly once, at the `n`-th operation (1-based).
    pub fn nth(n: u64, action: FaultAction) -> Self {
        Self {
            first: n.max(1),
            every: None,
            count: 1,
            chance_ppm: None,
            action,
        }
    }

    /// A rule eligible at operation `first` and every `every` operations
    /// after that, with no fire ceiling.
    pub fn every(first: u64, every: u64, action: FaultAction) -> Self {
        Self {
            first: first.max(1),
            every: Some(every.max(1)),
            count: u64::MAX,
            chance_ppm: None,
            action,
        }
    }

    /// Caps the total number of fires.
    #[must_use]
    pub fn times(mut self, count: u64) -> Self {
        self.count = count;
        self
    }

    /// Fires only with the given probability (parts-per-million) when the
    /// schedule matches.
    #[must_use]
    pub fn with_chance_ppm(mut self, ppm: u32) -> Self {
        self.chance_ppm = Some(ppm.min(1_000_000));
        self
    }

    fn matches(&self, op: u64) -> bool {
        if op < self.first {
            return false;
        }
        match self.every {
            Some(every) => (op - self.first).is_multiple_of(every),
            None => op == self.first,
        }
    }
}

#[derive(Debug)]
struct RuleState {
    rule: Rule,
    fired: AtomicU64,
}

#[derive(Debug)]
struct SiteState {
    name: String,
    ops: AtomicU64,
    rng: AtomicU64,
    fired_total: AtomicU64,
    rules: Vec<RuleState>,
}

impl SiteState {
    fn fire(&self) -> Option<FaultAction> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        for state in &self.rules {
            if !state.rule.matches(op) {
                continue;
            }
            if state.fired.load(Ordering::Relaxed) >= state.rule.count {
                continue;
            }
            if let Some(ppm) = state.rule.chance_ppm {
                if self.roll() >= u64::from(ppm) {
                    continue;
                }
            }
            state.fired.fetch_add(1, Ordering::Relaxed);
            self.fired_total.fetch_add(1, Ordering::Relaxed);
            if ptm_obs::metrics_enabled() {
                ptm_obs::registry()
                    .counter(format!("fault.injected.{}", self.name))
                    .inc();
            }
            return Some(state.rule.action);
        }
        None
    }

    /// One xorshift64 draw in `0..1_000_000`, threaded through an atomic so
    /// concurrent callers stay lock-free (per-draw determinism then requires
    /// a single-threaded operation order, which the tests arrange).
    fn roll(&self) -> u64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x % 1_000_000
    }
}

/// A cheap, cloneable handle to one fault site.
///
/// The default (and [`SiteHandle::disabled`]) handle carries no state:
/// [`SiteHandle::check`] is then a single `None` branch, which is what makes
/// leaving the hooks compiled into production paths free.
#[derive(Debug, Clone, Default)]
pub struct SiteHandle(Option<Arc<SiteState>>);

impl SiteHandle {
    /// A handle that never fires (the zero-cost production default).
    pub const fn disabled() -> Self {
        Self(None)
    }

    /// Whether this handle is wired to an active plan.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Counts one operation and returns the fault to inject, if any.
    #[inline]
    pub fn check(&self) -> Option<FaultAction> {
        match &self.0 {
            None => None,
            Some(site) => site.fire(),
        }
    }

    /// Operations observed so far (0 for a disabled handle).
    pub fn ops(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |site| site.ops.load(Ordering::Relaxed))
    }

    /// Faults injected so far (0 for a disabled handle).
    pub fn fired(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |site| site.fired_total.load(Ordering::Relaxed))
    }
}

/// Errors building or parsing a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The site name is not in the [`crate::sites`] registry.
    UnknownSite(String),
    /// A spec clause could not be parsed.
    BadClause {
        /// The offending clause, verbatim.
        clause: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownSite(name) => {
                write!(
                    f,
                    "unknown fault site {name:?} (known: {})",
                    crate::sites::ALL.join(", ")
                )
            }
            Self::BadClause { clause, reason } => {
                write!(f, "bad fault clause {clause:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// An immutable, shareable set of per-site fault schedules.
///
/// Cloning shares the underlying operation counters, so a plan handed to a
/// server and inspected by a test observes the same state.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    sites: HashMap<String, Arc<SiteState>>,
}

impl FaultPlan {
    /// Starts building a plan with the given seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rules: Vec::new(),
        }
    }

    /// Parses the compact spec grammar (clauses joined by `;`):
    ///
    /// ```text
    /// site@FIRST[/EVERY][xCOUNT][~PPM]=ACTION[:ARG]
    /// ```
    ///
    /// Actions: `enospc`, `err`, `timeout`, `broken`, `reset`, `truncate`,
    /// `short[:bytes]`, `corrupt[:mask]`, `delay:millis`, `wouldblock`,
    /// `panic`. See `docs/FAULTS.md` for the full grammar.
    ///
    /// # Errors
    ///
    /// [`PlanError::BadClause`] for malformed clauses and
    /// [`PlanError::UnknownSite`] for unregistered site names.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, PlanError> {
        let mut builder = Self::builder(seed);
        for clause in spec
            .split(';')
            .map(str::trim)
            .filter(|clause| !clause.is_empty())
        {
            let (site, rule) = parse_clause(clause)?;
            builder = builder.rule(&site, rule);
        }
        builder.build()
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The handle for a site; disabled if the plan has no rules for it.
    pub fn site(&self, name: &str) -> SiteHandle {
        SiteHandle(self.sites.get(name).cloned())
    }
}

/// Accumulates `(site, rule)` pairs for a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rules: Vec<(String, Rule)>,
}

impl FaultPlanBuilder {
    /// Adds a rule to the named site (rules are tried in insertion order;
    /// the first match wins).
    #[must_use]
    pub fn rule(mut self, site: &str, rule: Rule) -> Self {
        self.rules.push((site.to_string(), rule));
        self
    }

    /// Validates site names and freezes the plan.
    ///
    /// # Errors
    ///
    /// [`PlanError::UnknownSite`] if a rule names a site that is not in the
    /// [`crate::sites`] registry.
    pub fn build(self) -> Result<FaultPlan, PlanError> {
        let mut sites: HashMap<String, Vec<RuleState>> = HashMap::new();
        for (site, rule) in self.rules {
            if !crate::sites::is_known(&site) {
                return Err(PlanError::UnknownSite(site));
            }
            sites.entry(site).or_default().push(RuleState {
                rule,
                fired: AtomicU64::new(0),
            });
        }
        let sites = sites
            .into_iter()
            .map(|(name, rules)| {
                // splitmix64-finalized so nearby seeds (42 vs 43) land on
                // unrelated streams; `| 1` keeps xorshift out of its zero
                // fixed point.
                let rng_seed = mix64(self.seed ^ fnv1a(&name)) | 1;
                let state = SiteState {
                    name: name.clone(),
                    ops: AtomicU64::new(0),
                    rng: AtomicU64::new(rng_seed),
                    fired_total: AtomicU64::new(0),
                    rules,
                };
                (name, Arc::new(state))
            })
            .collect();
        Ok(FaultPlan {
            seed: self.seed,
            sites,
        })
    }
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn parse_clause(clause: &str) -> Result<(String, Rule), PlanError> {
    let bad = |reason: &str| PlanError::BadClause {
        clause: clause.to_string(),
        reason: reason.to_string(),
    };
    let (left, action_text) = clause
        .split_once('=')
        .ok_or_else(|| bad("missing `=action`"))?;
    let (site, schedule) = left
        .split_once('@')
        .ok_or_else(|| bad("missing `@first`"))?;
    let action = parse_action(action_text.trim()).map_err(|reason| bad(&reason))?;

    let schedule = schedule.trim();
    let first_end = schedule.find(['/', 'x', '~']).unwrap_or(schedule.len());
    let first: u64 = schedule[..first_end]
        .parse()
        .map_err(|_| bad("first operation index must be a positive integer"))?;
    if first == 0 {
        return Err(bad("operation indices are 1-based; first must be >= 1"));
    }

    let mut rest = &schedule[first_end..];
    let mut every = None;
    let mut count = 1_u64;
    let mut count_set = false;
    let mut chance_ppm = None;
    while !rest.is_empty() {
        let marker = rest.as_bytes()[0];
        let body = &rest[1..];
        let end = body.find(['/', 'x', '~']).unwrap_or(body.len());
        let value: u64 = body[..end]
            .parse()
            .map_err(|_| bad("schedule values must be integers"))?;
        match marker {
            b'/' => {
                if value == 0 {
                    return Err(bad("`/every` must be >= 1"));
                }
                every = Some(value);
            }
            b'x' => {
                count = value;
                count_set = true;
            }
            b'~' => {
                let ppm = u32::try_from(value).map_err(|_| bad("`~ppm` out of range"))?;
                chance_ppm = Some(ppm.min(1_000_000));
            }
            _ => return Err(bad("expected `/every`, `xcount`, or `~ppm`")),
        }
        rest = &body[end..];
    }
    // A periodic rule without an explicit cap repeats forever.
    if every.is_some() && !count_set {
        count = u64::MAX;
    }
    Ok((
        site.trim().to_string(),
        Rule {
            first,
            every,
            count,
            chance_ppm,
            action,
        },
    ))
}

fn parse_action(text: &str) -> Result<FaultAction, String> {
    let (name, arg) = match text.split_once(':') {
        Some((name, arg)) => (name, Some(arg)),
        None => (text, None),
    };
    match name {
        "enospc" => Ok(FaultAction::Error(io::ErrorKind::StorageFull)),
        "err" => Ok(FaultAction::Error(io::ErrorKind::Other)),
        "timeout" => Ok(FaultAction::Error(io::ErrorKind::TimedOut)),
        "broken" => Ok(FaultAction::Error(io::ErrorKind::BrokenPipe)),
        "reset" => Ok(FaultAction::Reset),
        "truncate" => Ok(FaultAction::Truncate),
        "short" => {
            let keep = match arg {
                Some(arg) => arg
                    .parse()
                    .map_err(|_| "short byte limit must be an integer")?,
                None => 1,
            };
            Ok(FaultAction::Short(keep))
        }
        "corrupt" => {
            let mask = match arg {
                Some(arg) => arg.parse().map_err(|_| "corrupt mask must be 0..=255")?,
                None => 0xFF,
            };
            Ok(FaultAction::Corrupt(mask))
        }
        "delay" => {
            let millis: u64 = arg
                .ok_or("delay needs `:millis`")?
                .parse()
                .map_err(|_| "delay millis must be an integer")?;
            Ok(FaultAction::Delay(Duration::from_millis(millis)))
        }
        "wouldblock" => Ok(FaultAction::WouldBlock),
        "panic" => Ok(FaultAction::Panic),
        other => Err(format!("unknown action {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites;

    fn fires(handle: &SiteHandle, ops: u64) -> Vec<u64> {
        (1..=ops)
            .filter(|_| handle.check().is_some())
            .map(|_| handle.ops())
            .collect()
    }

    #[test]
    fn disabled_handle_never_fires_and_counts_nothing() {
        let handle = SiteHandle::disabled();
        for _ in 0..100 {
            assert!(handle.check().is_none());
        }
        assert_eq!(handle.ops(), 0);
        assert_eq!(handle.fired(), 0);
        assert!(!handle.is_active());
    }

    #[test]
    fn nth_rule_fires_exactly_once_at_its_index() {
        let plan = FaultPlan::builder(1)
            .rule(sites::STORE_WRITE, Rule::nth(3, FaultAction::Reset))
            .build()
            .expect("plan");
        let handle = plan.site(sites::STORE_WRITE);
        assert_eq!(fires(&handle, 10), vec![3]);
        assert_eq!(handle.fired(), 1);
        assert_eq!(handle.ops(), 10);
    }

    #[test]
    fn every_rule_honors_period_and_times_cap() {
        let plan = FaultPlan::builder(1)
            .rule(
                sites::RPC_READ,
                Rule::every(4, 3, FaultAction::Truncate).times(3),
            )
            .build()
            .expect("plan");
        let handle = plan.site(sites::RPC_READ);
        assert_eq!(fires(&handle, 20), vec![4, 7, 10]);
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::builder(1)
            .rule(sites::STORE_SYNC, Rule::nth(2, FaultAction::Reset))
            .rule(sites::STORE_SYNC, Rule::every(1, 1, FaultAction::Truncate))
            .build()
            .expect("plan");
        let handle = plan.site(sites::STORE_SYNC);
        assert_eq!(handle.check(), Some(FaultAction::Truncate));
        assert_eq!(handle.check(), Some(FaultAction::Reset));
        assert_eq!(handle.check(), Some(FaultAction::Truncate));
    }

    #[test]
    fn chance_rules_are_deterministic_under_a_seed() {
        let build = |seed| {
            FaultPlan::builder(seed)
                .rule(
                    sites::RPC_WRITE,
                    Rule::every(1, 1, FaultAction::Reset).with_chance_ppm(300_000),
                )
                .build()
                .expect("plan")
        };
        let run = |plan: &FaultPlan| {
            let handle = plan.site(sites::RPC_WRITE);
            (0..200)
                .map(|_| handle.check().is_some())
                .collect::<Vec<_>>()
        };
        let a = run(&build(42));
        let b = run(&build(42));
        let c = run(&build(43));
        assert_eq!(a, b, "same seed must reproduce the same fault pattern");
        assert_ne!(a, c, "different seeds should diverge");
        let hits = a.iter().filter(|fired| **fired).count();
        assert!(
            (20..=120).contains(&hits),
            "~30% of 200 expected, got {hits}"
        );
    }

    #[test]
    fn unknown_site_rejected() {
        let err = FaultPlan::builder(1)
            .rule("store.wriet", Rule::nth(1, FaultAction::Reset))
            .build()
            .expect_err("typo must be rejected");
        assert!(matches!(err, PlanError::UnknownSite(name) if name == "store.wriet"));
    }

    #[test]
    fn spec_grammar_roundtrip() {
        let plan = FaultPlan::parse(
            "store.write@3=enospc; rpc.read@2/5x4=corrupt:15; rpc.write@1/1~250000=reset; \
             store.sync@2=delay:7; rpc.read@9=short:3",
            99,
        )
        .expect("spec parses");
        let write = plan.site(sites::STORE_WRITE);
        assert_eq!(fires(&write, 10), vec![3]);
        let sync = plan.site(sites::STORE_SYNC);
        sync.check();
        assert_eq!(
            sync.check(),
            Some(FaultAction::Delay(Duration::from_millis(7)))
        );
        let read = plan.site(sites::RPC_READ);
        let mut actions = Vec::new();
        for _ in 0..30 {
            if let Some(action) = read.check() {
                actions.push((read.ops(), action));
            }
        }
        assert_eq!(
            actions,
            vec![
                (2, FaultAction::Corrupt(15)),
                (7, FaultAction::Corrupt(15)),
                (9, FaultAction::Short(3)),
                (12, FaultAction::Corrupt(15)),
                (17, FaultAction::Corrupt(15)),
            ]
        );
        assert!(
            plan.site(sites::STORE_FLUSH).check().is_none(),
            "unscheduled site stays quiet"
        );
    }

    #[test]
    fn bad_specs_rejected_with_context() {
        for spec in [
            "store.write=enospc",     // missing @first
            "store.write@0=enospc",   // 0 is not a valid 1-based index
            "store.write@1",          // missing action
            "store.write@1=explode",  // unknown action
            "store.write@1=delay",    // delay needs millis
            "store.write@1/0=enospc", // zero period
            "store.write@one=enospc", // non-numeric index
            "store.typo@1=enospc",    // unknown site
        ] {
            assert!(
                FaultPlan::parse(spec, 1).is_err(),
                "spec {spec:?} should fail"
            );
        }
        assert!(FaultPlan::parse("  ;; ", 1)
            .expect("empty spec ok")
            .is_empty());
    }
}
