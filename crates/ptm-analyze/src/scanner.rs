//! A hand-rolled Rust token scanner.
//!
//! The rules in this crate reason about *token streams*, not syntax trees:
//! every invariant they check ("no `.unwrap()` after `.lock()`", "this macro
//! argument is a string literal") is visible at the token level, so a full
//! parser would buy nothing but a dependency. The scanner handles the parts
//! of the lexical grammar that break naive text search — string and char
//! literals, raw strings, nested block comments, lifetimes — and two pieces
//! of structure the rules need:
//!
//! * **test regions**: tokens under a `#[cfg(test)]` / `#[test]` item are
//!   flagged `in_test`, so rules scoped to production code can skip them;
//! * **allow directives**: `// ptm-analyze: allow(rule): reason` comments
//!   are collected with their line numbers for the suppression pass.
//!
//! Limitations (accepted, documented in `docs/ANALYSIS.md`): `cfg` predicates
//! are matched structurally rather than evaluated, so exotic forms such as
//! `cfg(any(test, feature = "x"))` are treated as test code only when every
//! `test` ident is outside a `not(...)`; const-generic braces in a signature
//! can end a test region early. Neither shape occurs in this workspace.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident,
    /// A numeric literal, verbatim (suffix included, dot excluded).
    Number,
    /// A string or byte-string literal; `text` holds the *decoded* value.
    StringLit,
    /// A character or byte literal; `text` holds the decoded value.
    CharLit,
    /// A lifetime such as `'a` (text keeps the leading quote).
    Lifetime,
    /// Any single punctuation character.
    Punct,
}

/// One token with its source position and test-region flag.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Lexeme text (decoded for string/char literals).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

impl Token {
    fn new(kind: TokenKind, text: String, line: u32) -> Self {
        Token {
            kind,
            text,
            line,
            in_test: false,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// A `// ptm-analyze: allow(rule): reason` comment found while scanning.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule id inside `allow(...)`.
    pub rule: String,
    /// The reason after the closing paren; `None` when missing or empty.
    pub reason: Option<String>,
}

/// A `// ptm-analyze: reactor-root` / `// ptm-analyze: worker-entry` comment
/// marking the next `fn` for the call-graph rules: roots seed the
/// reactor-reachability traversal, worker entries cut it (work handed to the
/// pool runs off the reactor thread by construction).
#[derive(Debug, Clone)]
pub struct MarkDirective {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The mark name (`reactor-root` or `worker-entry`).
    pub name: String,
}

/// Mark names the scanner recognises; anything else stays a plain comment.
pub const MARK_NAMES: &[&str] = &["reactor-root", "worker-entry"];

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct ScanOutput {
    /// The token stream, comments stripped, test regions marked.
    pub tokens: Vec<Token>,
    /// Every allow directive, malformed ones included.
    pub allows: Vec<AllowDirective>,
    /// Every call-graph mark directive, in source order.
    pub marks: Vec<MarkDirective>,
}

/// Scans Rust source text into tokens plus allow directives.
pub fn scan(source: &str) -> ScanOutput {
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = ScanOutput::default();

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (incl. doc comments): scan for an allow directive,
        // then drop.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            if let Some(directive) = parse_allow(&body, line) {
                out.allows.push(directive);
            } else if let Some(mark) = parse_mark(&body, line) {
                out.marks.push(mark);
            }
            continue;
        }
        // Block comments, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings, raw identifiers, byte strings: r" r#" b" br" br#" r#ident
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            let raw_form = c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'));
            if raw_form && chars.get(j) == Some(&'"') {
                let start_line = line;
                let (value, next) = read_raw_string(&chars, j + 1, hashes, &mut line);
                out.tokens
                    .push(Token::new(TokenKind::StringLit, value, start_line));
                i = next;
                continue;
            }
            if c == 'r' && hashes == 1 && chars.get(j).is_some_and(|&ch| is_ident_start(ch)) {
                // raw identifier r#foo — emit as plain ident
                let (text, next) = read_ident(&chars, j);
                out.tokens.push(Token::new(TokenKind::Ident, text, line));
                i = next;
                continue;
            }
            if c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'"') {
                let start_line = line;
                let (value, next) = read_quoted_string(&chars, i + 2, &mut line);
                out.tokens
                    .push(Token::new(TokenKind::StringLit, value, start_line));
                i = next;
                continue;
            }
            if c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'\'') {
                let (value, next) = read_char_literal(&chars, i + 2);
                out.tokens.push(Token::new(TokenKind::CharLit, value, line));
                i = next;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if c == '"' {
            let start_line = line;
            let (value, next) = read_quoted_string(&chars, i + 1, &mut line);
            out.tokens
                .push(Token::new(TokenKind::StringLit, value, start_line));
            i = next;
            continue;
        }
        if c == '\'' {
            // Lifetime ('a not followed by ') vs char literal ('a', '\n', ...).
            let next_ch = chars.get(i + 1).copied();
            let is_lifetime = next_ch.is_some_and(is_ident_start)
                && chars.get(i + 2).copied() != Some('\'')
                && next_ch != Some('\\');
            if is_lifetime {
                let (ident, next) = read_ident(&chars, i + 1);
                out.tokens
                    .push(Token::new(TokenKind::Lifetime, format!("'{ident}"), line));
                i = next;
                continue;
            }
            let (value, next) = read_char_literal(&chars, i + 1);
            out.tokens.push(Token::new(TokenKind::CharLit, value, line));
            i = next;
            continue;
        }
        if is_ident_start(c) {
            let (text, next) = read_ident(&chars, i);
            out.tokens.push(Token::new(TokenKind::Ident, text, line));
            i = next;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token::new(
                TokenKind::Number,
                chars[start..i].iter().collect(),
                line,
            ));
            continue;
        }
        out.tokens
            .push(Token::new(TokenKind::Punct, c.to_string(), line));
        i += 1;
    }

    mark_test_regions(&mut out.tokens);
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn read_ident(chars: &[char], from: usize) -> (String, usize) {
    let mut i = from;
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    (chars[from..i].iter().collect(), i)
}

/// Reads a `"`-delimited string body starting just after the opening quote,
/// decoding escapes; returns (value, index past the closing quote).
fn read_quoted_string(chars: &[char], from: usize, line: &mut u32) -> (String, usize) {
    let mut value = String::new();
    let mut i = from;
    while i < chars.len() {
        match chars[i] {
            '"' => return (value, i + 1),
            '\\' => {
                let (decoded, next) = decode_escape(chars, i + 1, line);
                if let Some(ch) = decoded {
                    value.push(ch);
                }
                i = next;
            }
            ch => {
                if ch == '\n' {
                    *line += 1;
                }
                value.push(ch);
                i += 1;
            }
        }
    }
    (value, i) // unterminated string: tolerate, EOF ends it
}

/// Reads a raw string body (after the opening quote) terminated by `"` plus
/// `hashes` hash marks.
fn read_raw_string(chars: &[char], from: usize, hashes: usize, line: &mut u32) -> (String, usize) {
    let mut i = from;
    while i < chars.len() {
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            let value = chars[from..i].iter().collect();
            return (value, i + 1 + hashes);
        }
        if chars[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    (chars[from..].iter().collect(), chars.len())
}

/// Reads a char/byte literal body starting just after the opening quote.
fn read_char_literal(chars: &[char], from: usize) -> (String, usize) {
    let mut i = from;
    let mut value = String::new();
    if chars.get(i) == Some(&'\\') {
        let mut dummy_line = 0u32;
        let (decoded, next) = decode_escape(chars, i + 1, &mut dummy_line);
        if let Some(ch) = decoded {
            value.push(ch);
        }
        i = next;
    } else if let Some(&ch) = chars.get(i) {
        value.push(ch);
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        i += 1;
    }
    (value, i)
}

/// Decodes one escape sequence starting after the backslash; returns the
/// decoded char (None for a line-continuation escape) and the next index.
fn decode_escape(chars: &[char], from: usize, line: &mut u32) -> (Option<char>, usize) {
    match chars.get(from) {
        Some('n') => (Some('\n'), from + 1),
        Some('r') => (Some('\r'), from + 1),
        Some('t') => (Some('\t'), from + 1),
        Some('0') => (Some('\0'), from + 1),
        Some('\\') => (Some('\\'), from + 1),
        Some('\'') => (Some('\''), from + 1),
        Some('"') => (Some('"'), from + 1),
        Some('x') => {
            let hex: String = chars[from + 1..].iter().take(2).collect();
            let ch = u8::from_str_radix(&hex, 16).ok().map(char::from);
            (ch, from + 1 + hex.chars().count())
        }
        Some('u') if chars.get(from + 1) == Some(&'{') => {
            let mut i = from + 2;
            let mut hex = String::new();
            while i < chars.len() && chars[i] != '}' {
                hex.push(chars[i]);
                i += 1;
            }
            let ch = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32);
            (ch, i + 1)
        }
        Some('\n') => {
            // Escaped newline: skip it and following leading whitespace.
            *line += 1;
            let mut i = from + 1;
            while i < chars.len() && (chars[i] == ' ' || chars[i] == '\t') {
                i += 1;
            }
            (None, i)
        }
        Some(&other) => (Some(other), from + 1),
        None => (None, from),
    }
}

/// Parses `// ptm-analyze: allow(rule): reason` out of a comment body.
fn parse_allow(comment: &str, line: u32) -> Option<AllowDirective> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let rest = body.strip_prefix("ptm-analyze:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix(':')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    Some(AllowDirective { line, rule, reason })
}

/// Parses `// ptm-analyze: reactor-root` (or `worker-entry`) out of a
/// comment body; an optional trailing `: note` is tolerated and ignored.
fn parse_mark(comment: &str, line: u32) -> Option<MarkDirective> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    let rest = body.strip_prefix("ptm-analyze:")?.trim_start();
    let name = rest.split(':').next().unwrap_or(rest).trim();
    MARK_NAMES.contains(&name).then(|| MarkDirective {
        line,
        name: name.to_string(),
    })
}

/// Flags every token belonging to a `#[cfg(test)]` / `#[test]` item.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = matching_bracket(tokens, i + 1);
            if attr_is_test(&tokens[i + 2..attr_end]) {
                // Skip any stacked attributes after the test marker.
                let mut j = attr_end + 1;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = matching_bracket(tokens, j + 1) + 1;
                }
                let item_end = item_end_from(tokens, j);
                for tok in tokens.iter_mut().take(item_end + 1).skip(i) {
                    tok.in_test = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Whether an attribute body (tokens between `#[` and `]`) marks test code.
fn attr_is_test(body: &[Token]) -> bool {
    let idents: Vec<&str> = body
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    // #[test], #[tokio::test]-style: the last path segment is `test`.
    if body
        .iter()
        .all(|t| t.kind == TokenKind::Ident || t.is_punct(':'))
        && idents.last() == Some(&"test")
    {
        return true;
    }
    // #[cfg(...)]: true iff some `test` ident is not wrapped in not(...).
    if idents.first() == Some(&"cfg") {
        for (k, tok) in body.iter().enumerate() {
            if tok.is_ident("test") {
                let negated = k >= 2 && body[k - 1].is_punct('(') && body[k - 2].is_ident("not");
                if !negated {
                    return true;
                }
            }
        }
    }
    false
}

/// Finds the last token of the item starting at `from`: the matching `}` of
/// its body, or a top-level `;` for braceless items.
fn item_end_from(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0i32; // () and [] nesting before the body opens
    let mut k = from;
    while k < tokens.len() {
        let tok = &tokens[k];
        if tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            depth -= 1;
        } else if tok.is_punct('{') && depth == 0 {
            return matching_brace(tokens, k);
        } else if tok.is_punct(';') && depth == 0 {
            return k;
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let toks = texts(
            r##"
            // commented .unwrap() here
            /* block /* nested */ .expect() */
            let s = "literal .unwrap() inside";
            let r = r#"raw .expect() inside"#;
            let c = '\n';
            "##,
        );
        assert!(toks.contains(&"let".to_string()));
        assert!(!toks.contains(&"unwrap".to_string()));
        assert!(!toks.contains(&"expect".to_string()));
        // string values are preserved as StringLit tokens, not idents
        assert!(toks.contains(&"literal .unwrap() inside".to_string()));
    }

    #[test]
    fn string_escapes_decode() {
        let out = scan(r#"let x = "a\nb\x41\u{2603}";"#);
        let lit = out
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::StringLit)
            .expect("string literal");
        assert_eq!(lit.text, "a\nbA\u{2603}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn line_numbers_track_newlines_inside_literals() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let out = scan(src);
        let b = out
            .tokens
            .iter()
            .find(|t| t.is_ident("b"))
            .expect("ident b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = r#"
            fn production() { touch(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { inside(); }
            }
            fn also_production() {}
        "#;
        let out = scan(src);
        let inside = out
            .tokens
            .iter()
            .find(|t| t.is_ident("inside"))
            .expect("inside");
        assert!(inside.in_test);
        let touch = out
            .tokens
            .iter()
            .find(|t| t.is_ident("touch"))
            .expect("touch");
        assert!(!touch.in_test);
        let after = out
            .tokens
            .iter()
            .find(|t| t.is_ident("also_production"))
            .expect("after");
        assert!(!after.in_test);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = r#"
            #[cfg(not(test))]
            fn production_only() { body(); }
        "#;
        let out = scan(src);
        let body = out
            .tokens
            .iter()
            .find(|t| t.is_ident("body"))
            .expect("body");
        assert!(!body.in_test);
    }

    #[test]
    fn test_attr_with_complex_signature() {
        let src = r#"
            #[test]
            #[should_panic(expected = "boom")]
            fn t(x: [u8; 4]) { marked(); }
            fn unmarked() {}
        "#;
        let out = scan(src);
        assert!(
            out.tokens
                .iter()
                .find(|t| t.is_ident("marked"))
                .expect("marked")
                .in_test
        );
        assert!(
            !out.tokens
                .iter()
                .find(|t| t.is_ident("unmarked"))
                .expect("unmarked")
                .in_test
        );
    }

    #[test]
    fn allow_directive_parses_with_reason() {
        let out = scan("// ptm-analyze: allow(no-unwrap): timing only feeds metrics\nlet x = 1;");
        assert_eq!(out.allows.len(), 1);
        let d = &out.allows[0];
        assert_eq!(d.rule, "no-unwrap");
        assert_eq!(d.reason.as_deref(), Some("timing only feeds metrics"));
        assert_eq!(d.line, 1);
    }

    #[test]
    fn allow_directive_without_reason_is_flagged_as_missing() {
        let out = scan("// ptm-analyze: allow(no-unwrap)\nlet x = 1;");
        assert_eq!(out.allows.len(), 1);
        assert!(out.allows[0].reason.is_none());
        let out = scan("// ptm-analyze: allow(no-unwrap):   \nlet x = 1;");
        assert!(out.allows[0].reason.is_none());
    }

    #[test]
    fn mark_directives_parse_and_unknown_names_are_ignored() {
        let out = scan(
            "// ptm-analyze: reactor-root\nfn reactor() {}\n\
             // ptm-analyze: worker-entry: pool boundary\nfn worker() {}\n\
             // ptm-analyze: not-a-mark\nfn other() {}\n",
        );
        assert_eq!(out.marks.len(), 2);
        assert_eq!(out.marks[0].name, "reactor-root");
        assert_eq!(out.marks[0].line, 1);
        assert_eq!(out.marks[1].name, "worker-entry");
        assert_eq!(out.marks[1].line, 3);
        // A mark is not an allow (and vice versa).
        assert!(out.allows.is_empty());
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let out = scan(r#"let b = b"bytes"; let r#type = 1;"#);
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::StringLit && t.text == "bytes"));
        assert!(out.tokens.iter().any(|t| t.is_ident("type")));
    }
}
