//! A structural layer over the token scanner: items, `fn` bodies, and
//! `impl` contexts.
//!
//! The concurrency rules need more than a flat token stream — they reason
//! about *functions* (what does this body call? which locks does it take?
//! is this the reactor loop?). This module recovers exactly that much
//! structure from the scanner's output: a brace-tree walk that finds every
//! `fn`, records its body's token range, remembers the `impl` block (type
//! and trait) it sits in, and attaches the `// ptm-analyze: reactor-root` /
//! `worker-entry` mark directives to the function they precede. It is
//! still std-only and resolution-free — no `syn`, no types — which keeps
//! the same honest contract as the scanner: approximate structure,
//! documented limits (see `docs/ANALYSIS.md` § Call-graph approximation).

use crate::scanner::{Token, TokenKind};
use crate::workspace::SourceFile;

/// One `fn` item recovered from a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name (`reactor_loop`, `submit`, ...).
    pub name: String,
    /// The `impl` target type when the fn sits in an impl block
    /// (`WorkerPool` for `impl<J, C> WorkerPool<J, C> { fn submit ... }`).
    pub self_type: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` blocks
    /// (`Drop`, `Read`, ...); `None` for inherent impls and free fns.
    pub trait_name: Option<String>,
    /// Index of this fn's file in [`crate::workspace::Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the signature: `[fn keyword, body open brace)`.
    pub sig: (usize, usize),
    /// Token range of the body, *inclusive* of both braces.
    pub body: (usize, usize),
    /// Whether the whole fn sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Mark directives attached to this fn (`reactor-root`, `worker-entry`).
    pub marks: Vec<String>,
    /// Whether the return type mentions a lock guard (`MutexGuard`,
    /// `RwLockReadGuard`, `RwLockWriteGuard`) — the callee hands its lock
    /// back to the caller, so the caller's `let` binding holds it.
    pub returns_guard: bool,
    /// Whether the first parameter is `self` — a method callable with
    /// `recv.name(...)`, as opposed to an associated fn (`Type::name`).
    pub has_self_param: bool,
}

impl FnItem {
    /// Whether this fn carries the given mark directive.
    pub fn has_mark(&self, name: &str) -> bool {
        self.marks.iter().any(|m| m == name)
    }
}

/// Parses every `fn` in `file` (free fns, impl methods, and fns nested in
/// other bodies — each gets its own entry; a nested fn's tokens are also
/// inside its parent's `body` range, which callers exclude via
/// [`nested_spans`]).
pub fn parse_fns(file_index: usize, file: &SourceFile) -> Vec<FnItem> {
    let toks = &file.tokens;
    let mut fns = Vec::new();
    // Impl contexts as (type, trait, body-end-token) — a stack because impl
    // blocks cannot nest but fns containing impl blocks can, cheaply.
    let mut impls: Vec<(Option<String>, Option<String>, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        impls.retain(|(_, _, end)| i <= *end);
        let tok = &toks[i];
        if tok.is_ident("impl") {
            if let Some((ty, tr, open)) = parse_impl_header(toks, i) {
                let end = matching(toks, open, '{', '}');
                impls.push((ty, tr, end));
                i = open + 1;
                continue;
            }
        }
        if tok.is_ident("fn") {
            let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                i += 1;
                continue;
            };
            let Some(open) = body_open(toks, i + 2) else {
                // Trait method declaration (`fn f();`) — no body to index.
                i += 2;
                continue;
            };
            let close = matching(toks, open, '{', '}');
            let (self_type, trait_name) = impls
                .last()
                .map(|(ty, tr, _)| (ty.clone(), tr.clone()))
                .unwrap_or((None, None));
            fns.push(FnItem {
                name: name_tok.text.clone(),
                self_type,
                trait_name,
                file: file_index,
                line: tok.line,
                sig: (i, open),
                body: (open, close),
                in_test: tok.in_test,
                marks: Vec::new(),
                returns_guard: sig_returns_guard(&toks[i..open]),
                has_self_param: sig_has_self_param(&toks[i..open]),
            });
            // Keep walking *inside* the body so nested fns are found too.
            i += 2;
            continue;
        }
        i += 1;
    }
    attach_marks(file, &mut fns);
    fns
}

/// Token index spans of fns declared strictly inside `outer`'s body —
/// callers subtract these so a nested fn's calls and locks are attributed
/// to the nested fn only.
pub fn nested_spans(fns: &[FnItem], outer: &FnItem) -> Vec<(usize, usize)> {
    fns.iter()
        .filter(|f| f.file == outer.file && f.sig.0 > outer.body.0 && f.body.1 <= outer.body.1)
        .map(|f| (f.sig.0, f.body.1))
        .collect()
}

/// Whether token index `i` falls inside any of the (inclusive) `spans`.
pub fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| i >= a && i <= b)
}

/// Token spans of `spawn(...)` argument groups inside `body`: the closure
/// handed to `thread::spawn` / `Builder::spawn` runs on a *different*
/// thread, so calls and lock acquisitions inside it must not be attributed
/// to the spawning fn (they would fabricate held-across edges and
/// reactor-reachability that cross a thread boundary).
pub fn spawn_arg_spans(toks: &[Token], body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let (start, end) = body;
    let mut i = start;
    while i < end && i + 1 < toks.len() {
        if toks[i].is_ident("spawn") && toks[i + 1].is_punct('(') {
            let close = matching(toks, i + 1, '(', ')');
            spans.push((i + 1, close));
            i = close + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Parses an `impl` header starting at the `impl` token: returns the
/// target type, the trait (for `impl Trait for Type`), and the index of
/// the opening body brace. `None` when no body brace is found (e.g. a
/// macro fragment).
fn parse_impl_header(
    toks: &[Token],
    impl_idx: usize,
) -> Option<(Option<String>, Option<String>, usize)> {
    let mut i = impl_idx + 1;
    let mut angle = 0i32;
    let mut paren = 0i32;
    // Path segments seen since the last `for`, and whether a `for` occurred.
    let mut segments: Vec<String> = Vec::new();
    let mut before_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('{') && angle <= 0 && paren == 0 {
            let ty = segments.last().cloned();
            let tr = saw_for.then(|| before_for.last().cloned()).flatten();
            return Some((ty, tr, i));
        } else if t.is_punct(';') && angle <= 0 && paren == 0 {
            return None;
        } else if t.is_ident("for") && angle <= 0 && paren == 0 {
            saw_for = true;
            before_for = std::mem::take(&mut segments);
        } else if t.is_ident("where") && angle <= 0 && paren == 0 {
            // Type path is complete; keep scanning for the brace only.
        } else if t.kind == TokenKind::Ident && angle <= 0 && paren == 0 {
            segments.push(t.text.clone());
        }
        i += 1;
    }
    None
}

/// Finds the opening brace of a fn body: the first `{` at zero
/// paren/bracket depth and zero angle depth after the name (angle depth
/// tracks generics so `fn f<T: Trait<X>>() {` works); a `;` first means a
/// bodyless declaration.
fn body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if t.is_punct('-') && toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            // `->`: the `>` belongs to the arrow, not a generic list.
            i += 2;
            continue;
        } else if t.is_punct('{') && depth == 0 && angle == 0 {
            return Some(i);
        } else if t.is_punct(';') && depth == 0 && angle == 0 {
            return None;
        }
        i += 1;
    }
    None
}

/// Whether a fn's parameter list starts with a `self` receiver. The
/// receiver is always the first thing inside the parens (possibly behind
/// `&`, `&'a`, or `mut`), so only the first few tokens need checking.
fn sig_has_self_param(sig: &[Token]) -> bool {
    let Some(open) = sig.iter().position(|t| t.is_punct('(')) else {
        return false;
    };
    sig[open + 1..]
        .iter()
        .take(4)
        .take_while(|t| {
            t.is_punct('&')
                || t.is_ident("mut")
                || t.kind == TokenKind::Lifetime
                || t.is_ident("self")
        })
        .any(|t| t.is_ident("self"))
}

/// Whether a fn signature's return position names a lock-guard type.
fn sig_returns_guard(sig: &[Token]) -> bool {
    let mut i = 0usize;
    while i + 1 < sig.len() {
        if sig[i].is_punct('-') && sig[i + 1].is_punct('>') {
            return sig[i + 2..].iter().any(|t| {
                t.is_ident("MutexGuard")
                    || t.is_ident("RwLockReadGuard")
                    || t.is_ident("RwLockWriteGuard")
            });
        }
        i += 1;
    }
    false
}

/// Index of the closer matching the opener at `open` (or the last token).
fn matching(toks: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i32;
    for (k, tok) in toks.iter().enumerate().skip(open) {
        if tok.is_punct(open_c) {
            depth += 1;
        } else if tok.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Attaches each mark directive to the first fn declared on a line at or
/// after the mark (attributes and doc comments in between are fine).
fn attach_marks(file: &SourceFile, fns: &mut [FnItem]) {
    for mark in &file.marks {
        let target = fns
            .iter_mut()
            .filter(|f| f.line > mark.line)
            .min_by_key(|f| f.line);
        if let Some(f) = target {
            f.marks.push(mark.name.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile};

    fn parse(src: &str) -> Vec<FnItem> {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        parse_fns(0, &file)
    }

    #[test]
    fn free_fns_and_impl_methods_are_indexed() {
        let fns = parse(
            r#"
            fn free(a: u32) -> u32 { a + 1 }
            struct S;
            impl S {
                fn method(&self) { self.helper(); }
                fn helper(&self) {}
            }
            impl Drop for S {
                fn drop(&mut self) { cleanup(); }
            }
            "#,
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["free", "method", "helper", "drop"]);
        assert_eq!(fns[0].self_type, None);
        assert_eq!(fns[1].self_type.as_deref(), Some("S"));
        assert_eq!(fns[1].trait_name, None);
        assert_eq!(fns[3].self_type.as_deref(), Some("S"));
        assert_eq!(fns[3].trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn generic_signatures_and_where_clauses_find_the_right_body() {
        let fns = parse(
            "fn spawn<F>(workers: usize, run: F) -> io::Result<Self>\n\
             where F: Fn(J) -> C + Send + 'static,\n\
             { inner(run) }\n",
        );
        assert_eq!(fns.len(), 1);
        // The body must be `{ inner(run) }`, not a where-clause brace.
        let f = &fns[0];
        assert!(f.body.1 > f.body.0);
    }

    #[test]
    fn nested_fns_get_their_own_entry_and_spans_exclude_them() {
        let fns = parse(
            r#"
            fn outer() {
                fn inner() { deep_call(); }
                shallow_call();
            }
            "#,
        );
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().find(|f| f.name == "outer").expect("outer");
        let spans = nested_spans(&fns, outer);
        assert_eq!(spans.len(), 1);
        let inner = fns.iter().find(|f| f.name == "inner").expect("inner");
        assert!(in_spans(&spans, inner.body.0 + 1));
    }

    #[test]
    fn marks_attach_to_the_next_fn() {
        let fns = parse(
            "// ptm-analyze: reactor-root\n\
             /// Doc line in between.\n\
             fn event_loop() {}\n\
             fn unmarked() {}\n",
        );
        assert!(fns[0].has_mark("reactor-root"));
        assert!(!fns[1].has_mark("reactor-root"));
    }

    #[test]
    fn guard_returning_signatures_are_detected() {
        let fns = parse(
            "fn lock_writer(w: &Mutex<Store>) -> MutexGuard<'_, Store> { w.lock().unwrap() }\n\
             fn plain() -> usize { 1 }\n",
        );
        assert!(fns[0].returns_guard);
        assert!(!fns[1].returns_guard);
    }

    #[test]
    fn trait_method_declarations_without_bodies_are_skipped() {
        let fns = parse("trait T { fn decl(&self); fn with_default(&self) { body(); } }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "with_default");
    }

    #[test]
    fn test_fns_carry_the_in_test_flag() {
        let fns = parse("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\nfn prod() {}");
        let t = fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.in_test);
        let prod = fns.iter().find(|f| f.name == "prod").expect("prod");
        assert!(!prod.in_test);
    }
}
