//! Workspace discovery: find every `.rs` file and the docs the registry
//! rules cross-check, scan them once, and hand the rules a uniform view.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scanner::{scan, AllowDirective, MarkDirective, Token};

/// Which build role a source file plays — rules scope themselves by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Production code under a crate's `src/`.
    Src,
    /// Integration-test code (`crates/*/tests/`, the `tests/` member).
    Test,
    /// Criterion benchmarks (`crates/*/benches/`).
    Bench,
    /// Example binaries (`examples/`).
    Example,
}

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: String,
    /// The workspace member the file belongs to (directory name under
    /// `crates/`, or `examples` / `tests` for those members).
    pub crate_name: String,
    /// Build role.
    pub kind: FileKind,
    /// Final path component (`lib.rs`, `main.rs`, ...).
    pub file_name: String,
    /// Token stream with test regions marked.
    pub tokens: Vec<Token>,
    /// Allow directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// Call-graph mark directives (`reactor-root` / `worker-entry`).
    pub marks: Vec<MarkDirective>,
}

/// A documentation file the registry rules cross-check against code.
#[derive(Debug)]
pub struct DocFile {
    /// Path relative to the workspace root.
    pub rel_path: String,
    /// The file's lines, for line-addressed findings.
    pub lines: Vec<String>,
}

/// Everything a rule can look at.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Every scanned `.rs` file, sorted by `rel_path`.
    pub files: Vec<SourceFile>,
    /// Docs keyed by relative path (e.g. `docs/OBSERVABILITY.md`).
    pub docs: BTreeMap<String, DocFile>,
}

/// Doc files the rules need; absence is tolerated at load time (the rule
/// that needs a missing doc reports it).
pub const DOC_PATHS: &[&str] = &["docs/OBSERVABILITY.md", "docs/FAULTS.md"];

impl Workspace {
    /// Loads and scans the workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let root = root.canonicalize()?;
        let mut files = Vec::new();

        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for crate_dir in crate_dirs {
                let crate_name = dir_name(&crate_dir);
                for (sub, kind) in [
                    ("src", FileKind::Src),
                    ("tests", FileKind::Test),
                    ("benches", FileKind::Bench),
                ] {
                    collect_rs(&crate_dir.join(sub), &root, &crate_name, kind, &mut files)?;
                }
            }
        }
        collect_rs(
            &root.join("examples"),
            &root,
            "examples",
            FileKind::Example,
            &mut files,
        )?;
        collect_rs(
            &root.join("tests"),
            &root,
            "ptm-integration-tests",
            FileKind::Test,
            &mut files,
        )?;

        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

        let mut docs = BTreeMap::new();
        for rel in DOC_PATHS {
            let path = root.join(rel);
            if let Ok(text) = fs::read_to_string(&path) {
                docs.insert(
                    (*rel).to_string(),
                    DocFile {
                        rel_path: (*rel).to_string(),
                        lines: text.lines().map(str::to_string).collect(),
                    },
                );
            }
        }

        Ok(Workspace { root, files, docs })
    }

    /// Builds an in-memory workspace for rule unit tests.
    pub fn in_memory(files: Vec<SourceFile>, docs: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files,
            docs: docs
                .into_iter()
                .map(|(path, text)| {
                    (
                        path.to_string(),
                        DocFile {
                            rel_path: path.to_string(),
                            lines: text.lines().map(str::to_string).collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl SourceFile {
    /// Scans `source` into an in-memory file for rule unit tests.
    pub fn from_source(crate_name: &str, rel_path: &str, kind: FileKind, source: &str) -> Self {
        let out = scan(source);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            file_name: rel_path.rsplit('/').next().unwrap_or(rel_path).to_string(),
            tokens: out.tokens,
            allows: out.allows,
            marks: out.marks,
        }
    }
}

fn dir_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Recursively collects `.rs` files under `dir` (silently absent dirs ok).
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // The root `tests/` member nests its own `tests/` dir; recurse.
            collect_rs(&path, root, crate_name, kind, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source = fs::read_to_string(&path)?;
            let scanned = scan(&source);
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel_path: rel.clone(),
                crate_name: crate_name.to_string(),
                kind,
                file_name: dir_name(&path),
                tokens: scanned.tokens,
                allows: scanned.allows,
                marks: scanned.marks,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_file_records_name_and_kind() {
        let f = SourceFile::from_source(
            "ptm-rpc",
            "crates/ptm-rpc/src/lib.rs",
            FileKind::Src,
            "fn a() {}",
        );
        assert_eq!(f.file_name, "lib.rs");
        assert_eq!(f.crate_name, "ptm-rpc");
        assert_eq!(f.kind, FileKind::Src);
        assert!(f.tokens.iter().any(|t| t.is_ident("a")));
    }
}
