//! Findings: what a rule reports, and the text / JSON renderings.

use std::fmt::Write as _;

/// Version of the JSON report shape emitted by [`Report::render_json`].
/// Bump on any breaking change to field names or structure; downstream
/// tooling (CI artifact consumers) keys on this. The shape is pinned by
/// `tests/json_schema.rs` and documented in `docs/ANALYSIS.md`.
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// One violation of one rule at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (e.g. `no-unwrap`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// One-line statement of the violation.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
}

/// The result of one full analysis run.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// Findings suppressed by valid allow directives.
    pub suppressed: usize,
}

impl Report {
    /// Human-readable rendering, one finding per line plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            let _ = writeln!(out, "    hint: {}", f.hint);
        }
        let _ = writeln!(
            out,
            "ptm-analyze: {} finding(s) in {} file(s) scanned ({} suppressed by allow directives)",
            self.findings.len(),
            self.files_scanned,
            self.suppressed
        );
        out
    }

    /// Deterministic JSON rendering (schema documented in docs/ANALYSIS.md).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", JSON_SCHEMA_VERSION);
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(out, "  \"finding_count\": {},", self.findings.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": {}, ", json_string(f.rule));
            let _ = write!(out, "\"path\": {}, ", json_string(&f.path));
            let _ = write!(out, "\"line\": {}, ", f.line);
            let _ = write!(out, "\"message\": {}, ", json_string(&f.message));
            let _ = write!(out, "\"hint\": {}", json_string(&f.hint));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                rule: "no-unwrap",
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "`.unwrap()` in non-test code".into(),
                hint: "propagate the error".into(),
            }],
            files_scanned: 3,
            suppressed: 1,
        }
    }

    #[test]
    fn text_rendering_names_file_line_rule() {
        let text = sample().render_text();
        assert!(text.contains("crates/x/src/lib.rs:7: [no-unwrap]"));
        assert!(text.contains("1 finding(s) in 3 file(s)"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut report = sample();
        report.findings[0].message = "a \"quoted\"\nthing".into();
        let json = report.render_json();
        assert!(json.contains("\\\"quoted\\\"\\n"));
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains(&format!("\"schema_version\": {JSON_SCHEMA_VERSION}")));
        // no naked control characters
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let report = Report {
            findings: vec![],
            files_scanned: 0,
            suppressed: 0,
        };
        assert!(report.render_json().contains("\"findings\": []"));
    }
}
