//! `determinism`: no ambient clocks or RNGs in the seeded crates.
//!
//! The chaos suite and the paper-value regression tests are regression
//! gates precisely because a fixed seed reproduces the same run bit for
//! bit. `SystemTime::now`, `Instant::now`, `thread_rng`, and
//! `rand::random` smuggle nondeterminism into that guarantee, so they are
//! banned from the non-test code of `ptm-core`, `ptm-sim`, and
//! `ptm-fault`. Renaming imports does not evade the ban: the rule tracks
//! `use ... as ...` aliases, so `use std::time::Instant as Clock;` makes
//! `Clock::now()` a finding too. Wall-clock reads that only feed metrics
//! may be suppressed with an allow directive stating exactly that.

use std::collections::HashMap;

use super::{ident_at, punct_at, Rule, SEEDED_CRATES};
use crate::findings::Finding;
use crate::scanner::{Token, TokenKind};
use crate::workspace::{FileKind, Workspace};

/// See module docs.
pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no SystemTime::now / Instant::now / thread_rng / rand::random in seeded crates"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != FileKind::Src || !SEEDED_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            let aliases = use_aliases(toks);
            for (i, tok) in toks.iter().enumerate() {
                if tok.in_test || tok.kind != TokenKind::Ident {
                    continue;
                }
                let path_now = punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3, "now");
                let clock_origin = if tok.is_ident("SystemTime") || tok.is_ident("Instant") {
                    Some(tok.text.as_str())
                } else {
                    aliases
                        .get(&tok.text)
                        .map(String::as_str)
                        .filter(|o| *o == "SystemTime" || *o == "Instant")
                };
                if let Some(origin) = clock_origin.filter(|_| path_now) {
                    let renamed = if origin == tok.text {
                        String::new()
                    } else {
                        format!(" (aliased `{}::now`)", origin)
                    };
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`{}::now`{} in seeded crate `{}` breaks fixed-seed reproducibility",
                            tok.text, renamed, file.crate_name
                        ),
                        hint: "thread the time in as a parameter (or allow with a reason if the \
                               value only feeds metrics, never results)"
                            .to_string(),
                    });
                }
                if tok.is_ident("thread_rng") {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`thread_rng` in seeded crate `{}` breaks fixed-seed reproducibility",
                            file.crate_name
                        ),
                        hint: "derive a ChaCha stream from the run seed instead of the ambient \
                               thread RNG"
                            .to_string(),
                    });
                    continue;
                }
                // `rand::random(...)` path-qualified, plus calls through an
                // alias/import of `rand::random` or `rand::thread_rng`.
                let qualified_random = tok.is_ident("random")
                    && i >= 2
                    && punct_at(toks, i - 1, ':')
                    && punct_at(toks, i - 2, ':')
                    && ident_at(toks, i.wrapping_sub(3), "rand")
                    && punct_at(toks, i + 1, '(');
                let rng_origin = aliases
                    .get(&tok.text)
                    .map(String::as_str)
                    .filter(|o| *o == "random" || *o == "thread_rng")
                    .filter(|_| punct_at(toks, i + 1, '('));
                if qualified_random || rng_origin.is_some() {
                    let what = match rng_origin {
                        Some(origin) if origin != tok.text => {
                            format!("`{}` (aliased `rand::{}`)", tok.text, origin)
                        }
                        _ => format!("`rand::{}`", tok.text),
                    };
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "{} in seeded crate `{}` breaks fixed-seed reproducibility",
                            what, file.crate_name
                        ),
                        hint: "derive a ChaCha stream from the run seed instead of the ambient \
                               thread RNG"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Names the banned origins an alias can resolve to.
const ALIASABLE: &[&str] = &["Instant", "SystemTime", "thread_rng", "random"];

/// Collects `use`-statement renames and imports relevant to this rule:
/// maps the in-scope name to its origin (`Clock` → `Instant` for
/// `use std::time::Instant as Clock;`, `random` → `random` for
/// `use rand::random;`). Handles grouped imports (`use rand::{random as
/// r, Rng};`) by tracking the group's path prefix.
fn use_aliases(toks: &[Token]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Walk the use tree up to the `;`, maintaining the current path
        // and a stack of group base lengths.
        let mut path: Vec<String> = Vec::new();
        let mut bases: Vec<usize> = Vec::new();
        let mut alias: Option<String> = None;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct(';') {
                emit(&mut out, &path, alias.take());
                i = j;
                break;
            } else if t.is_punct('{') {
                bases.push(path.len());
            } else if t.is_punct(',') {
                emit(&mut out, &path, alias.take());
                path.truncate(bases.last().copied().unwrap_or(0));
            } else if t.is_punct('}') {
                emit(&mut out, &path, alias.take());
                bases.pop();
                path.truncate(bases.last().copied().unwrap_or(0));
            } else if t.is_ident("as") {
                if let Some(name) = toks.get(j + 1).filter(|n| n.kind == TokenKind::Ident) {
                    alias = Some(name.text.clone());
                    j += 1;
                }
            } else if t.kind == TokenKind::Ident {
                path.push(t.text.clone());
            }
            j += 1;
        }
        i += 1;
    }
    out
}

/// Records one use-tree leaf into the alias map when its origin is one of
/// the banned names (`random` additionally requires a `rand` path prefix,
/// so a local module's `random` is not confused with the crate's).
fn emit(out: &mut HashMap<String, String>, path: &[String], alias: Option<String>) {
    let Some(origin) = path.last() else {
        return;
    };
    if !ALIASABLE.contains(&origin.as_str()) {
        return;
    }
    if origin == "random" && !path.iter().any(|s| s == "rand") {
        return;
    }
    let name = alias.unwrap_or_else(|| origin.clone());
    out.insert(name, origin.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(crate_name: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(crate_name, "crates/x/src/lib.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        Determinism.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn flags_clocks_and_thread_rng_in_seeded_crates() {
        let findings = run(
            "ptm-sim",
            r#"
            fn f() {
                let t = std::time::Instant::now();
                let s = std::time::SystemTime::now();
                let r = rand::thread_rng();
            }
            "#,
        );
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.rule == "determinism"));
    }

    #[test]
    fn other_crates_and_test_code_are_exempt() {
        assert!(run("ptm-rpc", "fn f() { let t = Instant::now(); }").is_empty());
        let findings = run(
            "ptm-core",
            r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let t = std::time::Instant::now(); }
            }
            "#,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn instant_elapsed_without_now_is_fine() {
        let findings = run(
            "ptm-core",
            "fn f(started: std::time::Instant) -> u128 { started.elapsed().as_nanos() }",
        );
        assert!(findings.is_empty(), "got: {findings:?}");
    }

    #[test]
    fn aliased_clock_import_is_flagged() {
        let findings = run(
            "ptm-sim",
            "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }\n",
        );
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(
            findings[0].message.contains("aliased `Instant::now`"),
            "message: {}",
            findings[0].message
        );
    }

    #[test]
    fn grouped_alias_import_is_flagged() {
        let findings = run(
            "ptm-core",
            "use std::time::{Duration, SystemTime as Wall};\nfn f() { let t = Wall::now(); }\n",
        );
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(findings[0].message.contains("SystemTime"));
    }

    #[test]
    fn rand_random_qualified_and_imported_are_flagged() {
        let findings = run("ptm-sim", "fn f() -> f64 { rand::random() }");
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(findings[0].message.contains("rand::random"));

        let findings = run("ptm-sim", "use rand::random;\nfn f() -> f64 { random() }\n");
        assert_eq!(findings.len(), 1, "got: {findings:?}");

        let findings = run(
            "ptm-sim",
            "use rand::random as roll;\nfn f() -> f64 { roll() }\n",
        );
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(findings[0].message.contains("aliased `rand::random`"));
    }

    #[test]
    fn unrelated_random_and_aliases_are_not_flagged() {
        // A local `random` helper is not `rand::random`.
        assert!(run(
            "ptm-sim",
            "fn random() -> u64 { 4 }\nfn f() { let x = random(); }"
        )
        .is_empty());
        // An alias of something harmless stays harmless.
        assert!(run(
            "ptm-sim",
            "use std::time::Duration as Span;\nfn f() { let d = Span::from_secs(1); }"
        )
        .is_empty());
        // `started.elapsed()` through an aliased type is still fine.
        assert!(run(
            "ptm-sim",
            "use std::time::Instant as Clock;\nfn f(s: Clock) -> u128 { s.elapsed().as_nanos() }"
        )
        .is_empty());
    }
}
