//! `determinism`: no ambient clocks or RNGs in the seeded crates.
//!
//! The chaos suite and the paper-value regression tests are regression
//! gates precisely because a fixed seed reproduces the same run bit for
//! bit. `SystemTime::now`, `Instant::now`, and `thread_rng` smuggle
//! nondeterminism into that guarantee, so they are banned from the
//! non-test code of `ptm-core`, `ptm-sim`, and `ptm-fault`. Wall-clock
//! reads that only feed metrics may be suppressed with an allow directive
//! stating exactly that.

use super::{ident_at, punct_at, Rule, SEEDED_CRATES};
use crate::findings::Finding;
use crate::workspace::{FileKind, Workspace};

/// See module docs.
pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no SystemTime::now / Instant::now / thread_rng in seeded crates"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != FileKind::Src || !SEEDED_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if tok.in_test {
                    continue;
                }
                let clock_call = (tok.is_ident("SystemTime") || tok.is_ident("Instant"))
                    && punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3, "now");
                if clock_call {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`{}::now` in seeded crate `{}` breaks fixed-seed reproducibility",
                            tok.text, file.crate_name
                        ),
                        hint: "thread the time in as a parameter (or allow with a reason if the \
                               value only feeds metrics, never results)"
                            .to_string(),
                    });
                }
                if tok.is_ident("thread_rng") {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`thread_rng` in seeded crate `{}` breaks fixed-seed reproducibility",
                            file.crate_name
                        ),
                        hint: "derive a ChaCha stream from the run seed instead of the ambient \
                               thread RNG"
                            .to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(crate_name: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(crate_name, "crates/x/src/lib.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        Determinism.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn flags_clocks_and_thread_rng_in_seeded_crates() {
        let findings = run(
            "ptm-sim",
            r#"
            fn f() {
                let t = std::time::Instant::now();
                let s = std::time::SystemTime::now();
                let r = rand::thread_rng();
            }
            "#,
        );
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.rule == "determinism"));
    }

    #[test]
    fn other_crates_and_test_code_are_exempt() {
        assert!(run("ptm-rpc", "fn f() { let t = Instant::now(); }").is_empty());
        let findings = run(
            "ptm-core",
            r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let t = std::time::Instant::now(); }
            }
            "#,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn instant_elapsed_without_now_is_fine() {
        let findings = run(
            "ptm-core",
            "fn f(started: std::time::Instant) -> u128 { started.elapsed().as_nanos() }",
        );
        assert!(findings.is_empty(), "got: {findings:?}");
    }
}
