//! `poison-recovery`: std sync primitives in server-side crates must
//! recover from poisoning, never unwrap it.
//!
//! The sharded store's outage-cascade fix (PR 3) hinges on every
//! `Mutex::lock` / `RwLock::read` / `RwLock::write` result flowing through
//! `PoisonError::into_inner`: one panicked handler must not turn every
//! later lock acquisition into a second panic. This rule flags
//! `.lock()/.read()/.write()` (the zero-argument sync-primitive forms)
//! followed directly by `.unwrap()` or `.expect(...)`.

use super::{punct_at, Rule, SERVER_CRATES};
use crate::findings::Finding;
use crate::workspace::{FileKind, Workspace};

/// See module docs.
pub struct PoisonRecovery;

const SYNC_METHODS: &[&str] = &["lock", "read", "write"];

impl Rule for PoisonRecovery {
    fn id(&self) -> &'static str {
        "poison-recovery"
    }

    fn description(&self) -> &'static str {
        "lock()/read()/write() results must recover from poisoning, not unwrap it"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != FileKind::Src || !SERVER_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if tok.in_test {
                    continue;
                }
                // `.lock()` / `.read()` / `.write()` — the *empty-argument*
                // call distinguishes sync primitives from io::Read/Write.
                let sync_call = SYNC_METHODS.iter().any(|m| tok.is_ident(m))
                    && i > 0
                    && punct_at(toks, i - 1, '.')
                    && punct_at(toks, i + 1, '(')
                    && punct_at(toks, i + 2, ')');
                if !sync_call {
                    continue;
                }
                let unwrapped = punct_at(toks, i + 3, '.')
                    && toks
                        .get(i + 4)
                        .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
                if unwrapped {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`.{}()` result unwrapped without PoisonError recovery",
                            tok.text
                        ),
                        hint: format!(
                            "use `.{}().unwrap_or_else(std::sync::PoisonError::into_inner)` so a \
                             poisoned lock is recovered instead of cascading the panic",
                            tok.text
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        PoisonRecovery.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn flags_unwrapped_lock_read_write() {
        let findings = run(r#"
            fn f(m: &std::sync::Mutex<u32>, rw: &std::sync::RwLock<u32>) {
                let a = m.lock().unwrap();
                let b = rw.read().expect("fresh");
                let c = rw.write().unwrap();
            }
            "#);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.rule == "poison-recovery"));
    }

    #[test]
    fn accepts_poison_recovery_and_io_calls() {
        let findings = run(r#"
            use std::sync::PoisonError;
            fn f(m: &std::sync::Mutex<u32>, stream: &mut std::net::TcpStream) {
                let a = m.lock().unwrap_or_else(PoisonError::into_inner);
                let mut buf = [0u8; 4];
                // io::Read::read takes a buffer, so it is not a sync primitive call
                let n = std::io::Read::read(stream, &mut buf).unwrap_or(0);
                let n2 = read_helper(&mut buf).unwrap_or(0);
            }
            "#);
        assert!(findings.is_empty(), "got: {findings:?}");
    }

    #[test]
    fn ignores_test_modules() {
        let findings = run(r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t(m: &std::sync::Mutex<u32>) { let _g = m.lock().unwrap(); }
            }
            "#);
        assert!(findings.is_empty());
    }
}
