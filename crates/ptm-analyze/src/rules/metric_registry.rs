//! `metric-registry`: the metric/event names the code emits and the
//! catalogue in `docs/OBSERVABILITY.md` must agree, in both directions.
//!
//! Code side, every *dotted* string literal passed to the `ptm-obs` macros
//! (`counter!`, `gauge!`, `histogram!`, `span!`, `tspan!`, plus event
//! targets in `error!`/`warn!`/`info!`/`debug!`/`trace!`/`event!`) in
//! non-test code is collected. Doc side, the markdown tables are parsed into exact names and
//! wildcard families (`net.server.estimate.*`, `net.server.records.loc<N>`).
//! An undocumented code name and a documented-but-vanished name are both
//! findings — drift is caught whichever way it happens. Dynamic names built
//! at runtime (per-location gauges) bypass the macros and are documented as
//! wildcard families, which the reverse check exempts.

use super::{open_delim_at, punct_at, string_at, Rule};
use crate::docnames::{table_names, DocName};
use crate::findings::Finding;
use crate::workspace::{FileKind, Workspace};
use std::collections::BTreeSet;

/// See module docs.
pub struct MetricRegistry;

const DOC: &str = "docs/OBSERVABILITY.md";
const METRIC_MACROS: &[&str] = &["counter", "gauge", "histogram", "span", "tspan"];
const EVENT_MACROS: &[&str] = &["error", "warn", "info", "debug", "trace"];

impl Rule for MetricRegistry {
    fn id(&self) -> &'static str {
        "metric-registry"
    }

    fn description(&self) -> &'static str {
        "metric/event names in code and docs/OBSERVABILITY.md must agree both ways"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        let Some(doc) = ws.docs.get(DOC) else {
            findings.push(Finding {
                rule: self.id(),
                path: DOC.to_string(),
                line: 1,
                message: format!("{DOC} is missing; the metric catalogue cannot be checked"),
                hint: "restore the observability catalogue document".to_string(),
            });
            return;
        };
        let doc_names: Vec<DocName> = table_names(&doc.lines, None);

        // Code -> doc: every emitted name must be catalogued.
        let mut code_names: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            if !matches!(file.kind, FileKind::Src | FileKind::Example) {
                continue;
            }
            for (name, line) in macro_name_literals(&file.tokens) {
                if !name.contains('.') {
                    continue; // single-segment event targets are out of scope
                }
                code_names.insert(name.clone());
                if !doc_names.iter().any(|d| d.matches(&name)) {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line,
                        message: format!("observability name `{name}` is not catalogued in {DOC}"),
                        hint: format!(
                            "add a table row for `{name}` to {DOC} (or rename the \
                                       metric/event to a catalogued name)"
                        ),
                    });
                }
            }
        }

        // Doc -> code: every exact catalogued name must still be emitted.
        let mut seen_doc = BTreeSet::new();
        for doc_name in &doc_names {
            if doc_name.wildcard || !seen_doc.insert(doc_name.text.clone()) {
                continue;
            }
            if !code_names.contains(&doc_name.text) {
                findings.push(Finding {
                    rule: self.id(),
                    path: DOC.to_string(),
                    line: doc_name.line,
                    message: format!(
                        "documented name `{}` is not emitted by any ptm-obs macro in non-test code",
                        doc_name.text
                    ),
                    hint: "drop the stale catalogue row, or restore the metric/event in code"
                        .to_string(),
                });
            }
        }
    }
}

/// Extracts `(name, line)` for every string-literal name passed to a
/// ptm-obs macro in non-test code.
fn macro_name_literals(tokens: &[crate::scanner::Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || !punct_at(tokens, i + 1, '!') || !open_delim_at(tokens, i + 2) {
            continue;
        }
        let is_metric = METRIC_MACROS.iter().any(|m| tok.is_ident(m));
        let is_event = EVENT_MACROS.iter().any(|m| tok.is_ident(m));
        if is_metric || is_event {
            // name/target is the first argument, which must be a literal
            if let Some(name) = string_at(tokens, i + 3) {
                out.push((name.to_string(), tokens[i + 3].line));
            }
        } else if tok.is_ident("event") {
            // event!(level, target, ...): the target follows the first
            // top-level comma.
            let mut depth = 0i32;
            let mut k = i + 3;
            while let Some(t) = tokens.get(k) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    if let Some(name) = string_at(tokens, k + 1) {
                        out.push((name.to_string(), tokens[k + 1].line));
                    }
                    break;
                }
                k += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    const DOC_TEXT: &str = "\
# Observability
| Name | What |
|---|---|
| `core.encode.record` | encode latency |
| `rpc.frames.in` / `.out` | frames |
| `net.server.estimate.*` | latencies |
| `stale.documented.name` | gone from code |
";

    fn run(src: &str) -> Vec<Finding> {
        let file =
            SourceFile::from_source("ptm-core", "crates/ptm-core/src/x.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![("docs/OBSERVABILITY.md", DOC_TEXT)]);
        let mut findings = Vec::new();
        MetricRegistry.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn flags_undocumented_metric_name() {
        let findings = run(r#"fn f() { ptm_obs::counter!("core.mystery.count").inc(); }"#);
        let undocumented: Vec<_> = findings
            .iter()
            .filter(|f| f.path.ends_with("x.rs"))
            .collect();
        assert_eq!(undocumented.len(), 1);
        assert!(undocumented[0].message.contains("core.mystery.count"));
    }

    #[test]
    fn documented_exact_suffix_and_wildcard_names_pass() {
        let findings = run(r#"
            fn f() {
                ptm_obs::counter!("core.encode.record").inc();
                ptm_obs::counter!("rpc.frames.out").inc();
                ptm_obs::histogram!("net.server.estimate.point").record(1);
            }
            "#);
        assert!(
            findings.iter().all(|f| f.path.starts_with("docs/")),
            "only the stale doc row may fire: {findings:?}"
        );
    }

    #[test]
    fn flags_stale_doc_rows_but_not_wildcards() {
        let findings = run(r#"fn f() { ptm_obs::counter!("core.encode.record").inc(); }"#);
        let stale: Vec<_> = findings
            .iter()
            .filter(|f| f.path.starts_with("docs/"))
            .collect();
        // `stale.documented.name` and the two rpc.frames.* rows are uncode'd;
        // the wildcard row must not fire.
        assert!(stale
            .iter()
            .any(|f| f.message.contains("stale.documented.name")));
        assert!(stale
            .iter()
            .all(|f| !f.message.contains("net.server.estimate")));
    }

    #[test]
    fn tspan_first_argument_is_collected_in_every_form() {
        // The name is the first argument in all three `tspan!` forms, so
        // the extractor sees trace spans exactly like metric names.
        let findings = run(r#"
            fn f(t: std::time::Instant, ctx: ptm_obs::TraceContext) {
                let _a = ptm_obs::tspan!("rpc.mystery.root");
                let _b = ptm_obs::tspan!("rpc.mystery.join", child_of = ctx);
                ptm_obs::tspan!("rpc.mystery.stage", elapsed = t);
            }
            "#);
        let code: Vec<_> = findings
            .iter()
            .filter(|f| f.path.ends_with("x.rs"))
            .collect();
        assert_eq!(code.len(), 3, "got: {code:?}");
    }

    #[test]
    fn event_targets_are_checked_and_test_code_skipped() {
        let findings = run(r#"
            fn f() { ptm_obs::info!("undocumented.target", "hello"; n = 1); }
            fn g() { ptm_obs::event!(ptm_obs::Level::Warn, "other.target", "hi"); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { ptm_obs::counter!("test.only.name").inc(); }
            }
            "#);
        let code: Vec<_> = findings
            .iter()
            .filter(|f| f.path.ends_with("x.rs"))
            .collect();
        assert_eq!(code.len(), 2, "got: {code:?}");
        assert!(code
            .iter()
            .any(|f| f.message.contains("undocumented.target")));
        assert!(code.iter().any(|f| f.message.contains("other.target")));
        assert!(findings
            .iter()
            .all(|f| !f.message.contains("test.only.name")));
    }
}
