//! `proto-tags`: the RPC frame tag constants must stay unique and inside
//! their declared ranges.
//!
//! `crates/ptm-rpc/src/proto.rs` declares the on-wire message tags as
//! `const TAG_*: u8` constants, with requests in `1..=127` and responses in
//! `128..=255` (the header comment is the spec). A duplicated or
//! out-of-range tag silently corrupts protocol dispatch for every peer, so
//! this rule re-derives the request/response split from the decoder bodies
//! and checks each constant against it.

use super::{ident_at, punct_at, Rule};
use crate::findings::Finding;
use crate::scanner::{Token, TokenKind};
use crate::workspace::Workspace;
use std::collections::BTreeSet;

/// See module docs.
pub struct ProtoTags;

const PROTO_FILE: &str = "crates/ptm-rpc/src/proto.rs";

impl Rule for ProtoTags {
    fn id(&self) -> &'static str {
        "proto-tags"
    }

    fn description(&self) -> &'static str {
        "RPC tag constants unique, requests in 1..=127, responses in 128..=255"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        let Some(file) = ws.files.iter().find(|f| f.rel_path == PROTO_FILE) else {
            findings.push(Finding {
                rule: self.id(),
                path: PROTO_FILE.to_string(),
                line: 1,
                message: format!("{PROTO_FILE} not found; the tag-range invariant is unchecked"),
                hint: "update the proto-tags rule if the protocol module moved".to_string(),
            });
            return;
        };
        let toks = &file.tokens;
        let tags = tag_constants(toks);
        if tags.is_empty() {
            findings.push(Finding {
                rule: self.id(),
                path: PROTO_FILE.to_string(),
                line: 1,
                message: "no `const TAG_*: u8` constants found".to_string(),
                hint: "update the proto-tags rule if the tag naming convention changed".to_string(),
            });
            return;
        }

        // Uniqueness.
        for (i, tag) in tags.iter().enumerate() {
            if let Some(first) = tags[..i].iter().find(|t| t.value == tag.value) {
                findings.push(Finding {
                    rule: self.id(),
                    path: PROTO_FILE.to_string(),
                    line: tag.line,
                    message: format!(
                        "tag value {} of `{}` duplicates `{}`",
                        tag.value, tag.name, first.name
                    ),
                    hint: "every on-wire tag byte must map to exactly one message".to_string(),
                });
            }
        }

        // Range check, classified by which decoder dispatches on the tag.
        let requests = decoder_tag_idents(toks, "decode_request");
        let responses = decoder_tag_idents(toks, "decode_response");
        for tag in &tags {
            let in_req = requests.contains(tag.name.as_str());
            let in_resp = responses.contains(tag.name.as_str());
            let (ok, class) = match (in_req, in_resp) {
                (true, true) => {
                    findings.push(Finding {
                        rule: self.id(),
                        path: PROTO_FILE.to_string(),
                        line: tag.line,
                        message: format!(
                            "`{}` is dispatched by both decode_request and decode_response",
                            tag.name
                        ),
                        hint: "a tag must belong to exactly one direction".to_string(),
                    });
                    continue;
                }
                (true, false) => ((1..=127).contains(&tag.value), "request"),
                (false, true) => ((128..=255).contains(&tag.value), "response"),
                (false, false) => {
                    findings.push(Finding {
                        rule: self.id(),
                        path: PROTO_FILE.to_string(),
                        line: tag.line,
                        message: format!(
                            "`{}` is not dispatched by decode_request or decode_response",
                            tag.name
                        ),
                        hint: "wire the tag into a decoder or delete the dead constant".to_string(),
                    });
                    continue;
                }
            };
            if !ok {
                let range = if class == "request" {
                    "1..=127"
                } else {
                    "128..=255"
                };
                findings.push(Finding {
                    rule: self.id(),
                    path: PROTO_FILE.to_string(),
                    line: tag.line,
                    message: format!(
                        "{} tag `{}` = {} is outside the declared {} range {}",
                        class, tag.name, tag.value, class, range
                    ),
                    hint: "keep request and response tag bytes in their declared halves so a \
                           misdirected frame can never decode as the wrong direction"
                        .to_string(),
                });
            }
        }
    }
}

struct TagConst {
    name: String,
    value: u32,
    line: u32,
}

/// Collects `const TAG_*: u8 = N;` declarations.
fn tag_constants(tokens: &[Token]) -> Vec<TagConst> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_ident("const") || tok.in_test {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident || !name_tok.text.starts_with("TAG_") {
            continue;
        }
        if !(punct_at(tokens, i + 2, ':')
            && ident_at(tokens, i + 3, "u8")
            && punct_at(tokens, i + 4, '='))
        {
            continue;
        }
        let Some(value_tok) = tokens.get(i + 5) else {
            continue;
        };
        if value_tok.kind != TokenKind::Number {
            continue;
        }
        if let Some(value) = parse_int(&value_tok.text) {
            out.push(TagConst {
                name: name_tok.text.clone(),
                value,
                line: name_tok.line,
            });
        }
    }
    out
}

fn parse_int(text: &str) -> Option<u32> {
    let clean = text.replace('_', "");
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u32::from_str_radix(hex, 16).ok()
    } else {
        clean.parse().ok()
    }
}

/// The set of `TAG_*` idents referenced inside the body of `fn <name>`.
fn decoder_tag_idents<'t>(tokens: &'t [Token], name: &str) -> BTreeSet<&'t str> {
    let mut out = BTreeSet::new();
    let Some(fn_pos) = tokens
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident(name))
    else {
        return out;
    };
    // find the body `{` (skip the parameter list / return type)
    let mut depth = 0i32;
    let mut k = fn_pos + 2;
    let open = loop {
        let Some(t) = tokens.get(k) else { return out };
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            break k;
        }
        k += 1;
    };
    let mut brace = 0i32;
    for t in &tokens[open..] {
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident && t.text.starts_with("TAG_") {
            out.insert(t.text.as_str());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile};

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source("ptm-rpc", PROTO_FILE, FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        ProtoTags.check(&ws, &mut findings);
        findings
    }

    const CLEAN: &str = r#"
        const TAG_PING: u8 = 1;
        const TAG_PONG: u8 = 128;
        fn decode_request(p: &[u8]) { match p[1] { TAG_PING => {} _ => {} } }
        fn decode_response(p: &[u8]) { match p[1] { TAG_PONG => {} _ => {} } }
    "#;

    #[test]
    fn clean_layout_passes() {
        assert!(run(CLEAN).is_empty(), "got: {:?}", run(CLEAN));
    }

    #[test]
    fn duplicate_tag_values_fire() {
        let findings = run(r#"
            const TAG_PING: u8 = 5;
            const TAG_UPLOAD: u8 = 5;
            fn decode_request(p: &[u8]) { match p[1] { TAG_PING => {} TAG_UPLOAD => {} _ => {} } }
            fn decode_response(p: &[u8]) {}
        "#);
        assert!(findings.iter().any(|f| f.message.contains("duplicates")));
    }

    #[test]
    fn out_of_range_tags_fire() {
        let findings = run(r#"
            const TAG_PING: u8 = 200;
            const TAG_PONG: u8 = 3;
            fn decode_request(p: &[u8]) { match p[1] { TAG_PING => {} _ => {} } }
            fn decode_response(p: &[u8]) { match p[1] { TAG_PONG => {} _ => {} } }
        "#);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.message.contains("outside the declared"))
                .count(),
            2,
            "got: {findings:?}"
        );
    }

    #[test]
    fn dead_and_double_dispatched_tags_fire() {
        let findings = run(r#"
            const TAG_DEAD: u8 = 9;
            const TAG_BOTH: u8 = 10;
            fn decode_request(p: &[u8]) { match p[1] { TAG_BOTH => {} _ => {} } }
            fn decode_response(p: &[u8]) { match p[1] { TAG_BOTH => {} _ => {} } }
        "#);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("not dispatched")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("both decode_request")));
    }
}
