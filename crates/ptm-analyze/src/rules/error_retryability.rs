//! `error-retryability`: every error-range RPC response variant must have
//! an explicit client retry classification.
//!
//! `crates/ptm-rpc/src/proto.rs` declares the authoritative error range in
//! `Response::is_error` — the variants a server can answer *instead of* the
//! requested payload. The client steers its retry loop off
//! `classify_response` in `crates/ptm-rpc/src/client.rs`. A protocol change
//! that adds an error variant without deciding whether the client retries
//! it falls through `classify_response`'s catch-all as "Done" and gets
//! handed to callers as a success-shaped answer. This rule re-derives both
//! variant sets from the two function bodies and fails when the client's
//! set does not cover the protocol's.

use super::Rule;
use crate::findings::Finding;
use crate::scanner::{Token, TokenKind};
use crate::workspace::Workspace;
use std::collections::BTreeSet;

/// See module docs.
pub struct ErrorRetryability;

const PROTO_FILE: &str = "crates/ptm-rpc/src/proto.rs";
const CLIENT_FILE: &str = "crates/ptm-rpc/src/client.rs";

impl Rule for ErrorRetryability {
    fn id(&self) -> &'static str {
        "error-retryability"
    }

    fn description(&self) -> &'static str {
        "every Response error variant appears in the client's retryable-vs-fatal match"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        let missing_anchor = |path: &str, what: &str, hint: &str| Finding {
            rule: "error-retryability",
            path: path.to_string(),
            line: 1,
            message: format!("{what} not found; the error-retryability invariant is unchecked"),
            hint: hint.to_string(),
        };
        let Some(proto) = ws.files.iter().find(|f| f.rel_path == PROTO_FILE) else {
            findings.push(missing_anchor(
                PROTO_FILE,
                "crates/ptm-rpc/src/proto.rs",
                "update the error-retryability rule if the protocol module moved",
            ));
            return;
        };
        let Some(client) = ws.files.iter().find(|f| f.rel_path == CLIENT_FILE) else {
            findings.push(missing_anchor(
                CLIENT_FILE,
                "crates/ptm-rpc/src/client.rs",
                "update the error-retryability rule if the client module moved",
            ));
            return;
        };
        let Some((error_variants, _)) = response_variants(&proto.tokens, "is_error") else {
            findings.push(missing_anchor(
                PROTO_FILE,
                "`fn is_error` (the authoritative Response error range)",
                "keep the error range declared in Response::is_error, or update this rule",
            ));
            return;
        };
        let Some((classified, classify_line)) =
            response_variants(&client.tokens, "classify_response")
        else {
            findings.push(missing_anchor(
                CLIENT_FILE,
                "`fn classify_response` (the client's retryable-vs-fatal match)",
                "keep the client's retry decisions centralized in classify_response, or \
                 update this rule",
            ));
            return;
        };
        for variant in &error_variants {
            if !classified.contains(variant.as_str()) {
                findings.push(Finding {
                    rule: "error-retryability",
                    path: CLIENT_FILE.to_string(),
                    line: classify_line,
                    message: format!(
                        "`Response::{variant}` is in the protocol's error range \
                         (Response::is_error) but has no arm in classify_response"
                    ),
                    hint: "decide whether the client retries this error and add an explicit \
                           arm; the catch-all would misreport it as a successful answer"
                        .to_string(),
                });
            }
        }
    }
}

/// The set of `Response::X` variant names referenced inside the body of
/// `fn <name>`, plus the line the function starts on. `None` when the
/// function is absent.
fn response_variants(tokens: &[Token], name: &str) -> Option<(BTreeSet<String>, u32)> {
    let fn_pos = tokens
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident(name) && !w[0].in_test)?;
    let line = tokens[fn_pos].line;
    // Find the body `{`, skipping the parameter list and return type.
    let mut depth = 0i32;
    let mut k = fn_pos + 2;
    let open = loop {
        let t = tokens.get(k)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            break k;
        }
        k += 1;
    };
    let mut out = BTreeSet::new();
    let mut brace = 0i32;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                break;
            }
        } else if t.is_ident("Response") {
            // Match `Response :: Variant` however the scanner split `::`.
            let mut j = i + 1;
            let mut colons = 0;
            while tokens.get(j).is_some_and(|c| c.is_punct(':')) {
                colons += 1;
                j += 1;
            }
            if colons >= 1 {
                if let Some(variant) = tokens.get(j) {
                    if variant.kind == TokenKind::Ident {
                        out.insert(variant.text.clone());
                        i = j;
                    }
                }
            }
        }
        i += 1;
    }
    Some((out, line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile};

    fn run(proto_src: &str, client_src: &str) -> Vec<Finding> {
        let proto = SourceFile::from_source("ptm-rpc", PROTO_FILE, FileKind::Src, proto_src);
        let client = SourceFile::from_source("ptm-rpc", CLIENT_FILE, FileKind::Src, client_src);
        let ws = Workspace::in_memory(vec![proto, client], vec![]);
        let mut findings = Vec::new();
        ErrorRetryability.check(&ws, &mut findings);
        findings
    }

    const PROTO: &str = r#"
        impl Response {
            pub fn is_error(&self) -> bool {
                matches!(
                    self,
                    Response::Error { .. }
                        | Response::Overloaded { .. }
                        | Response::DeadlineExceeded
                )
            }
        }
    "#;

    #[test]
    fn full_coverage_passes() {
        let client = r#"
            fn classify_response(response: &Response) -> Disposition {
                match response {
                    Response::Overloaded { retry_after_ms } => Disposition::RetryAfter(*retry_after_ms),
                    Response::DeadlineExceeded => Disposition::RetryDoomed,
                    Response::Error { .. } => Disposition::Fatal,
                    _ => Disposition::Done,
                }
            }
        "#;
        let findings = run(PROTO, client);
        assert!(findings.is_empty(), "got: {findings:?}");
    }

    #[test]
    fn uncovered_error_variant_fires() {
        let client = r#"
            fn classify_response(response: &Response) -> Disposition {
                match response {
                    Response::Error { .. } => Disposition::Fatal,
                    Response::Overloaded { retry_after_ms } => Disposition::RetryAfter(*retry_after_ms),
                    _ => Disposition::Done,
                }
            }
        "#;
        let findings = run(PROTO, client);
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(
            findings[0].message.contains("DeadlineExceeded"),
            "got: {findings:?}"
        );
        assert_eq!(findings[0].path, CLIENT_FILE);
    }

    #[test]
    fn missing_classifier_fires() {
        let findings = run(PROTO, "fn other() {}");
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(findings[0].message.contains("classify_response"));
    }

    #[test]
    fn missing_error_range_fires() {
        let findings = run("fn nothing() {}", "fn classify_response() {}");
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(findings[0].message.contains("is_error"));
    }

    #[test]
    fn extra_client_arms_are_fine() {
        // The client may classify more than the protocol's current error
        // range (e.g. a variant behind a feature gate); only gaps fire.
        let client = r#"
            fn classify_response(response: &Response) -> Disposition {
                match response {
                    Response::Error { .. } => Disposition::Fatal,
                    Response::Overloaded { .. } => Disposition::RetryAfter(0),
                    Response::DeadlineExceeded => Disposition::RetryDoomed,
                    Response::GoingAway { .. } => Disposition::RetryElsewhere(0),
                    _ => Disposition::Done,
                }
            }
        "#;
        assert!(run(PROTO, client).is_empty());
    }
}
