//! `gauge-balance`: gauge-style counters in server crates must be
//! decremented somewhere — the static twin of the gauge-leak assertions
//! in `tests/tests/reactor_storm.rs`.

use std::collections::BTreeMap;

use crate::findings::Finding;
use crate::rules::{Rule, SERVER_CRATES};
use crate::scanner::TokenKind;
use crate::workspace::{FileKind, Workspace};

/// Name fragments that mark a counter as a *gauge* (a level that must go
/// back down), as opposed to a monotone counter (totals, failures, ops).
const GAUGE_NAME_HINTS: &[&str] = &[
    "inflight",
    "in_flight",
    "depth",
    "active",
    "pending",
    "outstanding",
    "conn",
    "held",
    "inuse",
    "in_use",
];

/// For every gauge-like field in a server crate that is incremented
/// (`fetch_add`, `.inc()`, `.add(positive)`), requires a matching
/// decrement (`fetch_sub`, `.add(-..)`) somewhere in the same crate —
/// a drop guard's `Drop` impl counts. Fields that are only ever `.set()`
/// are absolute-style gauges and exempt.
pub struct GaugeBalance;

#[derive(Default)]
struct KeyOps {
    incs: Vec<(String, u32, &'static str)>, // (path, line, op)
    decs: usize,
    sets: usize,
}

impl Rule for GaugeBalance {
    fn id(&self) -> &'static str {
        "gauge-balance"
    }

    fn description(&self) -> &'static str {
        "gauge increments in server crates need a matching decrement or drop guard"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        // (crate, key) -> observed ops, over non-test server-crate code.
        let mut ops: BTreeMap<(String, String), KeyOps> = BTreeMap::new();
        for file in &ws.files {
            if !SERVER_CRATES.contains(&file.crate_name.as_str()) || file.kind != FileKind::Src {
                continue;
            }
            let toks = &file.tokens;
            for i in 0..toks.len() {
                let t = &toks[i];
                if t.kind != TokenKind::Ident || t.in_test {
                    continue;
                }
                if i < 2 || !toks[i - 1].is_punct('.') || toks[i - 2].kind != TokenKind::Ident {
                    continue;
                }
                let key = toks[i - 2].text.clone();
                if !is_gauge_like(&key) {
                    continue;
                }
                let open = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if !open {
                    continue;
                }
                enum Op {
                    Inc(&'static str),
                    Dec,
                    Set,
                }
                let op = match t.text.as_str() {
                    "fetch_add" => Op::Inc("fetch_add"),
                    "inc" if toks.get(i + 2).is_some_and(|n| n.is_punct(')')) => Op::Inc(".inc()"),
                    "add" if toks.get(i + 2).is_some_and(|n| n.is_punct('-')) => Op::Dec,
                    "add" => Op::Inc(".add(..)"),
                    "fetch_sub" | "sub" | "dec" => Op::Dec,
                    "set" => Op::Set,
                    _ => continue,
                };
                let entry = ops.entry((file.crate_name.clone(), key)).or_default();
                match op {
                    Op::Inc(label) => entry.incs.push((file.rel_path.clone(), t.line, label)),
                    Op::Dec => entry.decs += 1,
                    Op::Set => entry.sets += 1,
                }
            }
        }
        for ((crate_name, key), key_ops) in &ops {
            if key_ops.decs > 0 || key_ops.sets > 0 || key_ops.incs.is_empty() {
                continue;
            }
            for (path, line, op) in &key_ops.incs {
                findings.push(Finding {
                    rule: self.id(),
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "gauge `{}` is incremented here ({}) but crate `{}` never \
                         decrements it (no fetch_sub / .add(-..) / drop guard)",
                        key, op, crate_name
                    ),
                    hint: "decrement on every exit path, or hand the decrement to a \
                           drop guard so early returns can't leak the level"
                        .to_string(),
                });
            }
        }
    }
}

fn is_gauge_like(key: &str) -> bool {
    let lower = key.to_ascii_lowercase();
    GAUGE_NAME_HINTS.iter().any(|h| lower.contains(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        GaugeBalance.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn unbalanced_increment_is_reported() {
        let findings = check("fn accept(s: &S) { s.conn_count.fetch_add(1, Ordering::SeqCst); }\n");
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        let f = &findings[0];
        assert!(f.message.contains("conn_count"), "message: {}", f.message);
        assert!(f.message.contains("never"), "message: {}", f.message);
    }

    #[test]
    fn matching_decrement_elsewhere_in_the_crate_balances() {
        let findings = check(
            "fn accept(s: &S) { s.conn_count.fetch_add(1, Ordering::SeqCst); }\n\
             fn close(s: &S) { s.conn_count.fetch_sub(1, Ordering::SeqCst); }\n",
        );
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn drop_guard_decrement_balances() {
        let findings = check(
            "fn start(s: &S) -> Guard { s.inflight.fetch_add(1, Ordering::SeqCst); Guard }\n\
             impl Drop for Guard {\n\
                 fn drop(&mut self) { self.inflight.fetch_sub(1, Ordering::SeqCst); }\n\
             }\n",
        );
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn monotone_counters_are_not_gauges() {
        let findings =
            check("fn count(s: &S) { s.total_records.fetch_add(1, Ordering::SeqCst); }\n");
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn set_style_gauges_are_exempt() {
        let findings = check("fn publish(g: &Gauges, v: i64) { g.queue_depth.set(v); }\n");
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn gauge_add_of_negative_literal_counts_as_decrement() {
        let findings = check(
            "fn enter(g: &G) { g.active_jobs.add(1); }\n\
             fn exit(g: &G) { g.active_jobs.add(-1); }\n",
        );
        assert!(findings.is_empty(), "findings: {findings:?}");
    }
}
