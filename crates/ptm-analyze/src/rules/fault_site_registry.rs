//! `fault-site-registry`: fault-site names in code and the table in
//! `docs/FAULTS.md` must agree.
//!
//! `ptm-fault` already rejects plans naming unknown sites at build time;
//! this rule closes the remaining gap between the code registry
//! (`ptm_fault::sites`) and the documentation. Checked both ways: a site
//! constant or `.site("...")` literal missing from the doc table is a
//! finding, and so is a documented site no longer present in the registry.

use super::{ident_at, punct_at, string_at, Rule};
use crate::docnames::table_names;
use crate::findings::Finding;
use crate::scanner::Token;
use crate::workspace::{FileKind, Workspace};
use std::collections::BTreeSet;

/// See module docs.
pub struct FaultSiteRegistry;

const DOC: &str = "docs/FAULTS.md";
const SECTION: &str = "Fault sites";

impl Rule for FaultSiteRegistry {
    fn id(&self) -> &'static str {
        "fault-site-registry"
    }

    fn description(&self) -> &'static str {
        "fault-site names in code and the docs/FAULTS.md table must agree both ways"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        let Some(doc) = ws.docs.get(DOC) else {
            findings.push(Finding {
                rule: self.id(),
                path: DOC.to_string(),
                line: 1,
                message: format!("{DOC} is missing; the fault-site table cannot be checked"),
                hint: "restore the fault-injection document".to_string(),
            });
            return;
        };
        let doc_sites = table_names(&doc.lines, Some(SECTION));

        let mut code_sites: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            if file.kind != FileKind::Src {
                continue;
            }
            let mut sites: Vec<(String, u32)> = site_call_literals(&file.tokens);
            if file.crate_name == "ptm-fault" && file.file_name == "lib.rs" {
                sites.extend(registry_constants(&file.tokens));
            }
            for (site, line) in sites {
                code_sites.insert(site.clone());
                if !doc_sites.iter().any(|d| d.matches(&site)) {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line,
                        message: format!(
                            "fault site `{site}` is not documented in the {DOC} site table"
                        ),
                        hint: format!("add `{site}` to the \"{SECTION}\" table in {DOC}"),
                    });
                }
            }
        }

        for doc_site in &doc_sites {
            if !doc_site.wildcard && !code_sites.contains(&doc_site.text) {
                findings.push(Finding {
                    rule: self.id(),
                    path: DOC.to_string(),
                    line: doc_site.line,
                    message: format!(
                        "documented fault site `{}` does not exist in the code registry",
                        doc_site.text
                    ),
                    hint: "drop the stale table row, or restore the site in ptm_fault::sites"
                        .to_string(),
                });
            }
        }
    }
}

/// String literals passed to `.site("...")` in non-test code.
fn site_call_literals(tokens: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test {
            continue;
        }
        if tok.is_ident("site")
            && i > 0
            && punct_at(tokens, i - 1, '.')
            && punct_at(tokens, i + 1, '(')
        {
            if let Some(name) = string_at(tokens, i + 2) {
                out.push((name.to_string(), tokens[i + 2].line));
            }
        }
    }
    out
}

/// `const NAME: &str = "site.name";` values inside `pub mod sites { ... }`.
fn registry_constants(tokens: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    // locate `mod sites {`
    let Some(start) = tokens
        .windows(2)
        .position(|w| w[0].is_ident("mod") && w[1].is_ident("sites"))
    else {
        return out;
    };
    let Some(open) = (start..tokens.len()).find(|&k| tokens[k].is_punct('{')) else {
        return out;
    };
    let mut depth = 0i32;
    let mut k = open;
    while k < tokens.len() {
        if tokens[k].is_punct('{') {
            depth += 1;
        } else if tokens[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if ident_at(tokens, k, "const")
            && punct_at(tokens, k + 2, ':')
            && punct_at(tokens, k + 3, '&')
            && ident_at(tokens, k + 4, "str")
            && punct_at(tokens, k + 5, '=')
        {
            if let Some(value) = string_at(tokens, k + 6) {
                out.push((value.to_string(), tokens[k + 6].line));
            }
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    const DOC_TEXT: &str = "\
# Faults
## Fault sites
| Site | Fires on |
|---|---|
| `store.write` | writes |
| `rpc.read` | reads |
| `legacy.site` | removed |
## Actions
| `enospc` | not a site table |
";

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        let ws = Workspace::in_memory(files, vec![("docs/FAULTS.md", DOC_TEXT)]);
        let mut findings = Vec::new();
        FaultSiteRegistry.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn flags_undocumented_site_call_literal() {
        let file = SourceFile::from_source(
            "ptm-store",
            "crates/ptm-store/src/io.rs",
            FileKind::Src,
            r#"fn f(plan: &ptm_fault::FaultPlan) { let _h = plan.site("store.mystery"); }"#,
        );
        let findings = run(vec![file]);
        assert!(findings
            .iter()
            .any(|f| f.rule == "fault-site-registry" && f.message.contains("store.mystery")));
    }

    #[test]
    fn registry_constants_are_cross_checked_both_ways() {
        let lib = SourceFile::from_source(
            "ptm-fault",
            "crates/ptm-fault/src/lib.rs",
            FileKind::Src,
            r#"
            pub mod sites {
                pub const STORE_WRITE: &str = "store.write";
                pub const RPC_READ: &str = "rpc.read";
                pub const NEW_SITE: &str = "store.undocumented";
            }
            "#,
        );
        let findings = run(vec![lib]);
        // the undocumented constant fires code->doc
        assert!(findings
            .iter()
            .any(|f| f.message.contains("store.undocumented")));
        // the stale doc row fires doc->code
        assert!(findings
            .iter()
            .any(|f| f.path == "docs/FAULTS.md" && f.message.contains("legacy.site")));
        // documented sites present in the registry do not fire
        assert!(findings
            .iter()
            .all(|f| !f.message.contains("`store.write`")));
    }

    #[test]
    fn documented_sites_in_use_are_clean() {
        let lib = SourceFile::from_source(
            "ptm-fault",
            "crates/ptm-fault/src/lib.rs",
            FileKind::Src,
            r#"
            pub mod sites {
                pub const STORE_WRITE: &str = "store.write";
                pub const RPC_READ: &str = "rpc.read";
                pub const LEGACY: &str = "legacy.site";
            }
            "#,
        );
        let findings = run(vec![lib]);
        assert!(findings.is_empty(), "got: {findings:?}");
    }
}
