//! `crate-header`: every workspace crate root must carry the standard
//! header lints.
//!
//! `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]` are the
//! workspace's baseline: the whole stack is intentionally safe Rust, and
//! every public item is documented. The pair is easy to forget when a new
//! crate is stamped out, so this rule checks the crate root
//! (`src/lib.rs` / `src/main.rs`) of every member under `crates/`.
//!
//! Integration-test roots (`tests/tests/*.rs`) are each compiled as their
//! own crate, so the `forbid(unsafe_code)` guarantee does not flow into
//! them from any library root — they must carry `#![forbid(unsafe_code)]`
//! themselves (`missing_docs` is not required there; test helpers are
//! internal).

use super::{ident_at, punct_at, Rule};
use crate::findings::Finding;
use crate::scanner::Token;
use crate::workspace::{FileKind, Workspace};

/// See module docs.
pub struct CrateHeader;

const REQUIRED: &[(&str, &str)] = &[("forbid", "unsafe_code"), ("warn", "missing_docs")];
const TEST_ROOT_REQUIRED: &[(&str, &str)] = &[("forbid", "unsafe_code")];

impl Rule for CrateHeader {
    fn id(&self) -> &'static str {
        "crate-header"
    }

    fn description(&self) -> &'static str {
        "crate and integration-test roots carry the standard header lints"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        for file in &ws.files {
            let is_crate_root = file.kind == FileKind::Src
                && (file.file_name == "lib.rs" || file.file_name == "main.rs")
                && file.rel_path == format!("crates/{}/src/{}", file.crate_name, file.file_name);
            // Each file directly under `tests/tests/` is its own test
            // crate root.
            let is_test_root = file.kind == FileKind::Test
                && file.rel_path == format!("tests/tests/{}", file.file_name);
            if !is_crate_root && !is_test_root {
                continue;
            }
            let required: &[(&str, &str)] = if is_crate_root {
                REQUIRED
            } else {
                TEST_ROOT_REQUIRED
            };
            let what = if is_crate_root {
                "crate root"
            } else {
                "integration-test root"
            };
            for (level, lint) in required {
                if !has_inner_lint(&file.tokens, level, lint) {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: 1,
                        message: format!("{what} is missing `#![{level}({lint})]`"),
                        hint: "add the standard crate header lints right after the module docs"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Whether the token stream contains `level ( lint )` (the payload of an
/// inner attribute — the compiler enforces attribute placement, we only
/// check presence).
fn has_inner_lint(tokens: &[Token], level: &str, lint: &str) -> bool {
    tokens.windows(4).any(|w| {
        ident_at(w, 0, level) && punct_at(w, 1, '(') && ident_at(w, 2, lint) && punct_at(w, 3, ')')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(rel_path: &str, src: &str) -> Vec<Finding> {
        let crate_name = rel_path.split('/').nth(1).unwrap_or("x").to_string();
        let file = SourceFile::from_source(&crate_name, rel_path, FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        CrateHeader.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn missing_headers_fire_once_per_lint() {
        let findings = run("crates/ptm-cli/src/main.rs", "fn main() {}");
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("forbid(unsafe_code)")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("warn(missing_docs)")));
    }

    #[test]
    fn complete_header_is_clean() {
        let findings = run(
            "crates/ptm-core/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}",
        );
        assert!(findings.is_empty(), "got: {findings:?}");
    }

    #[test]
    fn non_root_files_are_exempt() {
        assert!(run("crates/ptm-core/src/bitmap.rs", "fn f() {}").is_empty());
    }

    fn run_test_root(src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(
            "ptm-integration-tests",
            "tests/tests/chaos.rs",
            FileKind::Test,
            src,
        );
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        CrateHeader.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn integration_test_root_requires_forbid_unsafe_only() {
        let findings = run_test_root("#[test]\nfn t() {}\n");
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert!(findings[0].message.contains("integration-test root"));
        assert!(findings[0].message.contains("forbid(unsafe_code)"));

        let findings = run_test_root("#![forbid(unsafe_code)]\n#[test]\nfn t() {}\n");
        assert!(findings.is_empty(), "got: {findings:?}");
    }

    #[test]
    fn test_helper_modules_are_exempt() {
        let file = SourceFile::from_source(
            "ptm-integration-tests",
            "tests/tests/helpers/mod.rs",
            FileKind::Test,
            "pub fn helper() {}",
        );
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        CrateHeader.check(&ws, &mut findings);
        assert!(findings.is_empty(), "got: {findings:?}");
    }
}
