//! `lock-order`: a cycle in the interprocedural lock-order graph is a
//! potential deadlock.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::locks;
use crate::rules::{Rule, SERVER_CRATES};
use crate::workspace::Workspace;

/// Flags cycles in the lock-order graph of the server crates, with the
/// full witness chain (who holds what while acquiring what) in the
/// finding message.
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "no cycles in the server crates' lock-order graph (potential deadlock)"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        let graph = CallGraph::build(ws, SERVER_CRATES);
        let analysis = locks::analyze(ws, &graph);
        for cycle in &analysis.cycles {
            let ring = cycle.keys.join(" -> ");
            let witness = cycle.witnesses.join("; ");
            findings.push(Finding {
                rule: self.id(),
                path: cycle.path.clone(),
                line: cycle.line,
                message: format!(
                    "lock-order cycle `{}` — potential deadlock; witness: {}",
                    ring, witness
                ),
                hint: "acquire these locks in one global order, or narrow a guard's \
                       scope so they are never held together"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    fn check(src: &str) -> Vec<Finding> {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        LockOrder.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn inversion_pair_is_reported_with_witness_chain() {
        let findings = check(
            "fn ingest(manifest: &Mutex<u32>, shard: &RwLock<u32>) {\n\
                 let m = manifest.lock().unwrap();\n\
                 let s = shard.write().unwrap();\n\
             }\n\
             fn compact(manifest: &Mutex<u32>, shard: &RwLock<u32>) {\n\
                 let s = shard.write().unwrap();\n\
                 let m = manifest.lock().unwrap();\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        let f = &findings[0];
        assert!(f.message.contains("manifest"), "message: {}", f.message);
        assert!(f.message.contains("shard"), "message: {}", f.message);
        assert!(f.message.contains("ingest"), "message: {}", f.message);
        assert!(f.message.contains("compact"), "message: {}", f.message);
        assert!(f.message.contains("holds"), "message: {}", f.message);
    }

    #[test]
    fn consistent_order_is_clean() {
        let findings = check(
            "fn ingest(manifest: &Mutex<u32>, shard: &RwLock<u32>) {\n\
                 let m = manifest.lock().unwrap();\n\
                 let s = shard.write().unwrap();\n\
             }\n\
             fn compact(manifest: &Mutex<u32>, shard: &RwLock<u32>) {\n\
                 let m = manifest.lock().unwrap();\n\
                 let s = shard.write().unwrap();\n\
             }\n",
        );
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn interprocedural_inversion_is_reported() {
        let findings = check(
            "fn a_then_b(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
                 take_b(b);\n\
             }\n\
             fn take_b(b: &Mutex<u32>) {\n\
                 let gb = b.lock().unwrap();\n\
             }\n\
             fn b_then_a(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                 let gb = b.lock().unwrap();\n\
                 take_a(a);\n\
             }\n\
             fn take_a(a: &Mutex<u32>) {\n\
                 let ga = a.lock().unwrap();\n\
             }\n",
        );
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert!(findings[0].message.contains("take_b") || findings[0].message.contains("take_a"));
    }
}
