//! `reactor-blocking`: nothing that blocks may be reachable from the
//! reactor event loop without going through the worker pool.

use std::collections::{HashMap, HashSet};

use crate::callgraph::{CallGraph, CallSite};
use crate::findings::Finding;
use crate::rules::{Rule, SERVER_CRATES};
use crate::workspace::Workspace;

/// Condvar waits — blocking at any arity.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];
/// Channel receives.
const RECV_METHODS: &[&str] = &["recv", "recv_timeout"];
/// Durability syncs (block on the disk).
const SYNC_METHODS: &[&str] = &["sync_all", "sync_data"];
/// Qualifiers whose associated fns do file/socket I/O.
const IO_QUALIFIERS: &[&str] = &["File", "OpenOptions", "fs", "TcpStream", "UnixStream"];

/// Flags blocking operations — lock waits, condvar waits, `thread::sleep`,
/// file/socket I/O, channel receives — reachable from a fn marked
/// `// ptm-analyze: reactor-root` without passing through a fn marked
/// `// ptm-analyze: worker-entry`. The finding carries the call chain from
/// the root as its witness.
pub struct ReactorBlocking;

impl Rule for ReactorBlocking {
    fn id(&self) -> &'static str {
        "reactor-blocking"
    }

    fn description(&self) -> &'static str {
        "no blocking calls reachable from the reactor loop outside the worker pool"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        let graph = CallGraph::build(ws, SERVER_CRATES);
        let roots = graph.marked("reactor-root");
        if roots.is_empty() {
            return;
        }
        let cut: HashSet<usize> = graph.marked("worker-entry").into_iter().collect();
        let reach: HashMap<usize, _> = graph.reach(&roots, &cut);
        let mut ids: Vec<usize> = reach.keys().copied().collect();
        ids.sort();
        for id in ids {
            // Cut fns are reached but their bodies run on worker threads.
            if cut.contains(&id) && !roots.contains(&id) {
                continue;
            }
            let f = &graph.fns[id];
            if f.in_test {
                continue;
            }
            for site in &graph.calls[id] {
                let Some(what) = blocking_op(ws, &graph, id, site) else {
                    continue;
                };
                let chain = graph.witness(&reach, id);
                findings.push(Finding {
                    rule: self.id(),
                    path: ws.files[f.file].rel_path.clone(),
                    line: site.line,
                    message: format!("{} on the reactor thread; reachable via {}", what, chain),
                    hint: "move the blocking work behind the worker pool (submit a job) \
                           or use a non-blocking variant (try_lock / try_recv)"
                        .to_string(),
                });
            }
        }
    }
}

/// Classifies a call site as a blocking operation, returning a short
/// description, or `None` for non-blocking calls.
fn blocking_op(ws: &Workspace, graph: &CallGraph, fn_id: usize, site: &CallSite) -> Option<String> {
    let toks = &ws.files[graph.fns[fn_id].file].tokens;
    let arity0 = toks.get(site.token + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(site.token + 2).is_some_and(|t| t.is_punct(')'));
    let name = site.name.as_str();
    if site.is_method {
        if WAIT_METHODS.contains(&name) {
            return Some(format!("condvar `.{}()` wait", name));
        }
        if RECV_METHODS.contains(&name) {
            return Some(format!("blocking channel `.{}()`", name));
        }
        if SYNC_METHODS.contains(&name) {
            return Some(format!("blocking disk sync `.{}()`", name));
        }
        // Arity-0 `.lock()` / `.read()` / `.write()` are Mutex/RwLock
        // acquisitions; with arguments they are io::Read/Write instead
        // (those still block, but the reactor's socket I/O is nonblocking
        // by construction — see docs/ANALYSIS.md).
        if arity0 && name == "lock" {
            return Some("blocking mutex `.lock()`".to_string());
        }
        if arity0 && (name == "read" || name == "write") {
            return Some(format!("blocking RwLock `.{}()`", name));
        }
        return None;
    }
    match site.qualifier.as_deref() {
        Some("thread") if name == "sleep" => Some("`thread::sleep`".to_string()),
        Some(q) if IO_QUALIFIERS.contains(&q) => Some(format!("blocking I/O `{}::{}`", q, name)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    fn check(src: &str) -> Vec<Finding> {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        ReactorBlocking.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn sleep_reachable_from_root_is_reported_with_chain() {
        let findings = check(
            "// ptm-analyze: reactor-root\n\
             fn event_loop() { dispatch(); }\n\
             fn dispatch() { backoff(); }\n\
             fn backoff() { thread::sleep(d); }\n",
        );
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        let f = &findings[0];
        assert!(
            f.message.contains("thread::sleep"),
            "message: {}",
            f.message
        );
        assert!(
            f.message.contains("event_loop -> dispatch -> backoff"),
            "message: {}",
            f.message
        );
    }

    #[test]
    fn worker_entry_cuts_the_reachability() {
        let findings = check(
            "// ptm-analyze: reactor-root\n\
             fn event_loop() { worker_loop(); }\n\
             // ptm-analyze: worker-entry\n\
             fn worker_loop() { run_job(); }\n\
             fn run_job() { thread::sleep(d); }\n",
        );
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn blocking_locks_and_condvar_waits_are_reported() {
        let findings = check(
            "// ptm-analyze: reactor-root\n\
             fn event_loop(m: &Mutex<u32>, cv: &Condvar) {\n\
                 let g = m.lock().unwrap();\n\
                 let g = cv.wait(g).unwrap();\n\
             }\n",
        );
        assert_eq!(findings.len(), 2, "findings: {findings:?}");
        assert!(findings.iter().any(|f| f.message.contains(".lock()")));
        assert!(findings.iter().any(|f| f.message.contains("wait")));
    }

    #[test]
    fn nonblocking_variants_and_io_read_are_clean() {
        let findings = check(
            "// ptm-analyze: reactor-root\n\
             fn event_loop(m: &Mutex<u32>, sock: &mut TcpStream, buf: &mut [u8]) {\n\
                 if let Ok(g) = m.try_lock() { use_it(g); }\n\
                 let n = sock.read(buf);\n\
             }\n\
             fn use_it(g: MutexGuard<u32>) {}\n",
        );
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn unmarked_workspaces_produce_nothing() {
        let findings = check("fn free_standing() { thread::sleep(d); }");
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn file_io_from_root_is_reported() {
        let findings = check(
            "// ptm-analyze: reactor-root\n\
             fn event_loop() { let f = File::open(path); }\n",
        );
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert!(findings[0].message.contains("File::open"));
    }
}
