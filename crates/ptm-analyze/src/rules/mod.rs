//! The rule engine: the [`Rule`] trait, the registry of shipped rules, and
//! shared token-pattern helpers.

use crate::findings::Finding;
use crate::scanner::{Token, TokenKind};
use crate::workspace::Workspace;

mod crate_header;
mod determinism;
mod error_retryability;
mod fault_site_registry;
mod gauge_balance;
mod lock_order;
mod metric_registry;
mod no_unwrap;
mod poison_recovery;
mod proto_tags;
mod reactor_blocking;

pub use crate_header::CrateHeader;
pub use determinism::Determinism;
pub use error_retryability::ErrorRetryability;
pub use fault_site_registry::FaultSiteRegistry;
pub use gauge_balance::GaugeBalance;
pub use lock_order::LockOrder;
pub use metric_registry::MetricRegistry;
pub use no_unwrap::NoUnwrap;
pub use poison_recovery::PoisonRecovery;
pub use proto_tags::ProtoTags;
pub use reactor_blocking::ReactorBlocking;

/// One invariant checker over the scanned workspace.
pub trait Rule {
    /// Stable rule id, used in findings and allow directives.
    fn id(&self) -> &'static str;
    /// One-line description for `ptm-analyze rules`.
    fn description(&self) -> &'static str;
    /// Appends findings for every violation in `ws`.
    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>);
}

/// Crates whose non-test code must never abort: they run inside the daemon
/// or on its durable-write path (see docs/ANALYSIS.md).
pub const SERVER_CRATES: &[&str] = &["ptm-rpc", "ptm-store", "ptm-fault", "ptm-net"];

/// Crates whose results must be a pure function of their seeds.
pub const SEEDED_CRATES: &[&str] = &["ptm-core", "ptm-sim", "ptm-fault"];

/// Every shipped rule, in catalogue order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrap),
        Box::new(PoisonRecovery),
        Box::new(MetricRegistry),
        Box::new(FaultSiteRegistry),
        Box::new(ProtoTags),
        Box::new(ErrorRetryability),
        Box::new(Determinism),
        Box::new(CrateHeader),
        Box::new(LockOrder),
        Box::new(ReactorBlocking),
        Box::new(GaugeBalance),
    ]
}

/// Whether the token at `i` is an identifier equal to `name`.
pub(crate) fn ident_at(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(name))
}

/// Whether the token at `i` is the punctuation `c`.
pub(crate) fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

/// Whether the token at `i` opens a macro argument list.
pub(crate) fn open_delim_at(tokens: &[Token], i: usize) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
}

/// Whether the token at `i` is a string literal.
pub(crate) fn string_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens
        .get(i)
        .and_then(|t| (t.kind == TokenKind::StringLit).then_some(t.text.as_str()))
}
