//! `no-unwrap`: forbid `.unwrap()`, `.expect(...)`, and `panic!` in the
//! non-test code of server-side crates.
//!
//! The daemon's availability story depends on request handlers returning
//! errors instead of aborting: a panic tears down a connection thread at
//! best and poisons shared locks at worst. This rule replaces the old
//! second clippy invocation in `scripts/ci.sh` (crate-level
//! `clippy::unwrap_used` warns escalated by `-D warnings`) with a direct,
//! workspace-aware check.

use super::{punct_at, Rule, SERVER_CRATES};
use crate::findings::Finding;
use crate::workspace::{FileKind, Workspace};

/// See module docs.
pub struct NoUnwrap;

impl Rule for NoUnwrap {
    fn id(&self) -> &'static str {
        "no-unwrap"
    }

    fn description(&self) -> &'static str {
        "no .unwrap()/.expect()/panic! in non-test code of server-side crates"
    }

    fn check(&self, ws: &Workspace, findings: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.kind != FileKind::Src || !SERVER_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.tokens;
            for (i, tok) in toks.iter().enumerate() {
                if tok.in_test {
                    continue;
                }
                let method_call = (tok.is_ident("unwrap") || tok.is_ident("expect"))
                    && i > 0
                    && punct_at(toks, i - 1, '.')
                    && punct_at(toks, i + 1, '(');
                if method_call {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`.{}()` in non-test code of server-side crate `{}`",
                            tok.text, file.crate_name
                        ),
                        hint: "propagate the error with `?` or recover explicitly; daemon code \
                               must not abort (docs/ANALYSIS.md#no-unwrap)"
                            .to_string(),
                    });
                }
                if tok.is_ident("panic") && punct_at(toks, i + 1, '!') {
                    findings.push(Finding {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "`panic!` in non-test code of server-side crate `{}`",
                            file.crate_name
                        ),
                        hint: "return an error variant instead; a panicking handler takes the \
                               connection (and any held lock) down with it"
                            .to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(crate_name: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        let file = SourceFile::from_source(crate_name, "crates/x/src/lib.rs", kind, src);
        let ws = Workspace::in_memory(vec![file], vec![]);
        let mut findings = Vec::new();
        NoUnwrap.check(&ws, &mut findings);
        findings
    }

    #[test]
    fn flags_unwrap_expect_and_panic_in_server_src() {
        let findings = run(
            "ptm-rpc",
            FileKind::Src,
            r#"
            fn handler() {
                let v = compute().unwrap();
                let w = compute().expect("always");
                panic!("boom");
            }
            "#,
        );
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.rule == "no-unwrap"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn ignores_test_code_and_non_server_crates() {
        let in_tests = run(
            "ptm-store",
            FileKind::Src,
            r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { compute().unwrap(); }
            }
            "#,
        );
        assert!(in_tests.is_empty());
        let other_crate = run("ptm-core", FileKind::Src, "fn f() { g().unwrap(); }");
        assert!(other_crate.is_empty());
    }

    #[test]
    fn ignores_unwrap_family_helpers_and_comments() {
        let findings = run(
            "ptm-net",
            FileKind::Src,
            r#"
            // a comment mentioning .unwrap() and panic! is fine
            fn f() {
                let a = value().unwrap_or_default();
                let b = value().unwrap_or_else(|| 0);
                let msg = ".unwrap() in a string";
                let p = std::panic::catch_unwind(|| 1);
            }
            "#,
        );
        assert!(findings.is_empty(), "got: {findings:?}");
    }
}
