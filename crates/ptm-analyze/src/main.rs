//! `ptm-analyze` — the workspace invariant linter's command line.
//!
//! ```text
//! ptm-analyze check [--root DIR] [--format text|json] [--json-out PATH]
//!                   [--lockgraph-out PATH]
//! ptm-analyze rules
//! ```
//!
//! `check` scans every `.rs` file in the workspace plus the docs tree and
//! exits 1 on any finding (0 when clean, 2 on usage or I/O errors).
//! `--json-out` additionally writes the JSON report to a file so CI can
//! archive it (`out/analysis.json`) for trend tracking; `--lockgraph-out`
//! writes the server crates' lock-order graph (`out/lockgraph.json`) so
//! reviewers can see which locks are held across which acquisitions even
//! when the check is clean. `rules` lists the rule catalogue. See
//! `docs/ANALYSIS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ptm_analyze::workspace::Workspace;

const USAGE: &str = "\
usage: ptm-analyze check [--root DIR] [--format text|json] [--json-out PATH]
                         [--lockgraph-out PATH]
       ptm-analyze rules

check   scan the workspace and exit 1 on any finding
rules   list the rule catalogue
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("check");
    match command {
        "check" => check(&args[1..]),
        "rules" => {
            for rule in ptm_analyze::rules::all() {
                println!("{:<20} {}", rule.id(), rule.description());
            }
            println!(
                "{:<20} allow directives must carry reasons and suppress something",
                ptm_analyze::ALLOW_HYGIENE_RULE
            );
            ExitCode::SUCCESS
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("ptm-analyze: unknown command `{other}`");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut json_out: Option<PathBuf> = None;
    let mut lockgraph_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage_error("--format takes `text` or `json`"),
            },
            "--json-out" => match it.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage_error("--json-out needs a path"),
            },
            "--lockgraph-out" => match it.next() {
                Some(path) => lockgraph_out = Some(PathBuf::from(path)),
                None => return usage_error("--lockgraph-out needs a path"),
            },
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("ptm-analyze: {message}");
            return ExitCode::from(2);
        }
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!(
                "ptm-analyze: failed to load workspace at {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let report = ptm_analyze::run(&ws);

    if let Some(path) = &json_out {
        if let Err(code) = write_artifact(path, &report.render_json()) {
            return code;
        }
    }
    if let Some(path) = &lockgraph_out {
        let graph =
            ptm_analyze::callgraph::CallGraph::build(&ws, ptm_analyze::rules::SERVER_CRATES);
        let analysis = ptm_analyze::locks::analyze(&ws, &graph);
        let json = ptm_analyze::locks::render_lockgraph_json(&analysis, &graph);
        if let Err(code) = write_artifact(path, &json) {
            return code;
        }
    }
    match format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Text,
    Json,
}

/// Writes a CI artifact, creating its parent directory first.
fn write_artifact(path: &Path, contents: &str) -> Result<(), ExitCode> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(err) = std::fs::create_dir_all(parent) {
            eprintln!("ptm-analyze: cannot create {}: {err}", parent.display());
            return Err(ExitCode::from(2));
        }
    }
    if let Err(err) = std::fs::write(path, contents) {
        eprintln!("ptm-analyze: cannot write {}: {err}", path.display());
        return Err(ExitCode::from(2));
    }
    Ok(())
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("ptm-analyze: {message}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]` section.
fn find_workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace Cargo.toml found above {} (use --root)",
                    start.display()
                ))
            }
        }
    }
}
