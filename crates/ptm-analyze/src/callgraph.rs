//! Approximate per-workspace call graph over the [`crate::syntax`] layer.
//!
//! Resolution is name-based, not type-based: a call site `self.submit(...)`
//! resolves to *every* fn named `submit` in the server crates (with a
//! preference for methods of the caller's own impl type, then the caller's
//! own crate). That over-approximates — which is the right direction for
//! the reachability rules built on top (`reactor-blocking` never misses a
//! path because of a resolution gap) — and the few false edges in this
//! workspace are documented in `docs/ANALYSIS.md` § Call-graph
//! approximation and its limits.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::scanner::TokenKind;
use crate::syntax::{self, FnItem};
use crate::workspace::Workspace;

/// Rust keywords and control constructs that look like `ident (` in the
/// token stream but are never calls.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "let", "in", "loop", "move", "as", "ref", "mut",
    "else", "break", "continue", "where", "impl", "dyn", "box", "await", "unsafe", "Some", "Ok",
    "Err", "None", "Box", "Vec", "String", "Arc", "Rc", "Cell", "RefCell",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (`submit`, `run_single`, `sleep`, ...).
    pub name: String,
    /// Path qualifier immediately before the name (`thread` for
    /// `thread::sleep`, `Self` for `Self::helper`), when present.
    pub qualifier: Option<String>,
    /// Whether the call is a method call (`recv.name(...)`).
    pub is_method: bool,
    /// Whether the call is exactly `self.name(...)` — the receiver is the
    /// caller's own type, so resolution can filter to its impl block.
    pub self_receiver: bool,
    /// 1-based source line of the call.
    pub line: u32,
    /// Token index of the name in the file's token stream.
    pub token: usize,
}

/// The workspace call graph: every fn, its call sites, and name-resolved
/// edges between fns.
pub struct CallGraph {
    /// All fns, indexed by the ids used everywhere else in this struct.
    pub fns: Vec<FnItem>,
    /// Call sites per fn (parallel to [`CallGraph::fns`]).
    pub calls: Vec<Vec<CallSite>>,
    /// Resolved edges per fn: `(call site index, callee fn id)`.
    pub edges: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    /// Builds the graph over `crates` (e.g. the server crates). Fns from
    /// other crates are invisible — calls into them become unresolved
    /// leaves, which the rules treat by name (e.g. `sleep`).
    pub fn build(ws: &Workspace, crates: &[&str]) -> CallGraph {
        let mut fns: Vec<FnItem> = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if !crates.contains(&file.crate_name.as_str()) {
                continue;
            }
            fns.extend(syntax::parse_fns(fi, file));
        }
        let calls: Vec<Vec<CallSite>> = fns.iter().map(|f| extract_calls(ws, &fns, f)).collect();
        let fn_crates: Vec<String> = fns
            .iter()
            .map(|f| ws.files[f.file].crate_name.clone())
            .collect();

        // Name → candidate fn ids, for resolution.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }

        let mut edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(fns.len());
        for (id, sites) in calls.iter().enumerate() {
            let caller = &fns[id];
            let mut out = Vec::new();
            for (si, site) in sites.iter().enumerate() {
                for callee in resolve(site, caller, &fn_crates[id], &fns, &fn_crates, &by_name) {
                    out.push((si, callee));
                }
            }
            edges.push(out);
        }
        CallGraph { fns, calls, edges }
    }

    /// Ids of fns carrying `mark` (from `// ptm-analyze: <mark>` comments).
    pub fn marked(&self, mark: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.has_mark(mark))
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS closure from `roots`, never stepping *into* fns in `cut` (they
    /// are still reported as reached, but their bodies are not explored —
    /// this is how `reactor-blocking` models the worker-pool handoff).
    /// Returns `reached fn id → (parent fn id, call site index in parent)`;
    /// roots map to `None`.
    pub fn reach(
        &self,
        roots: &[usize],
        cut: &HashSet<usize>,
    ) -> HashMap<usize, Option<(usize, usize)>> {
        let mut parent: HashMap<usize, Option<(usize, usize)>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if cut.contains(&id) && !roots.contains(&id) {
                continue;
            }
            for &(si, callee) in &self.edges[id] {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(Some((id, si)));
                    queue.push_back(callee);
                }
            }
        }
        parent
    }

    /// Renders the call chain from a root to `id` as
    /// `root -> a -> b -> id`, using the parent map from [`CallGraph::reach`].
    pub fn witness(&self, parents: &HashMap<usize, Option<(usize, usize)>>, id: usize) -> String {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(Some((p, _))) = parents.get(&cur) {
            chain.push(*p);
            cur = *p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&f| self.fns[f].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Extracts call sites from `f`'s body, skipping nested fns, macros, and
/// the bodies of `spawn(...)` closures (those run on another thread).
fn extract_calls(ws: &Workspace, all: &[FnItem], f: &FnItem) -> Vec<CallSite> {
    let toks = &ws.files[f.file].tokens;
    let mut skip = syntax::nested_spans(all, f);
    skip.extend(syntax::spawn_arg_spans(toks, f.body));
    let mut out = Vec::new();
    let (start, end) = f.body;
    let mut i = start;
    while i <= end && i < toks.len() {
        if syntax::in_spans(&skip, i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NON_CALL_IDENTS.contains(&t.text.as_str())
        {
            // `name!(...)` macro invocations have a `!` before the paren —
            // already excluded since we require `(` at i+1. Exclude struct
            // literal shorthand is not needed (that's `{`, not `(`).
            let before = i.checked_sub(1).map(|k| &toks[k]);
            let is_method = before.is_some_and(|b| b.is_punct('.'));
            // `self.name(...)` exactly: `self` right before the dot, and
            // not itself a field access (`x.self` is not Rust anyway).
            let self_receiver = is_method
                && i >= 2
                && toks[i - 2].is_ident("self")
                && (i < 4 || !toks[i - 3].is_punct('.'));
            let qualifier =
                if !is_method && i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                    i.checked_sub(3)
                        .map(|k| &toks[k])
                        .filter(|q| q.kind == TokenKind::Ident)
                        .map(|q| q.text.clone())
                } else {
                    None
                };
            // `fn f(` declarations are excluded by NON_CALL_IDENTS ("fn"
            // precedes the name): check the token before isn't `fn`.
            let is_decl = before.is_some_and(|b| b.is_ident("fn"));
            if !is_decl {
                out.push(CallSite {
                    name: t.text.clone(),
                    qualifier,
                    is_method,
                    self_receiver,
                    line: t.line,
                    token: i,
                });
            }
        }
        i += 1;
    }
    out
}

/// Resolves a call site to candidate fn ids.
///
/// Precision ladder (documented in `docs/ANALYSIS.md`):
/// - `Type::name` → only methods in `impl Type` blocks (a std path like
///   `thread::sleep` matching no workspace type resolves to nothing);
/// - `Self::name` / `self.name(...)` → only methods of the caller's own
///   impl type;
/// - `crate::name` / `self::name` / `super::name` → free fns and methods
///   in the caller's crate;
/// - other method calls `x.name(...)` → every *method* with the name
///   (union — receiver types are unknown, over-approximation is the safe
///   direction for reachability rules). Associated fns without `self`
///   cannot be method-called and are excluded, as are `impl Trait for`
///   methods: those are invoked through trait-typed receivers (sockets,
///   files) that are never the workspace type itself here, and including
///   them makes every `stream.write(..)` alias every `io::Write` impl;
/// - plain `name(...)` → same-crate fns when any exist, else the union,
///   excluding trait-impl methods for the same reason (`drop(x)` must not
///   alias every `Drop` impl).
fn resolve(
    site: &CallSite,
    caller: &FnItem,
    caller_crate: &str,
    fns: &[FnItem],
    fn_crates: &[String],
    by_name: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let Some(candidates) = by_name.get(site.name.as_str()) else {
        return Vec::new();
    };
    if let Some(q) = &site.qualifier {
        if q == "Self" {
            return filter(candidates, |id| {
                caller.self_type.is_some() && fns[id].self_type == caller.self_type
            });
        }
        if q == "crate" || q == "super" || q == "self" {
            return filter(candidates, |id| fn_crates[id] == caller_crate);
        }
        let type_match = filter(candidates, |id| fns[id].self_type.as_deref() == Some(q));
        // A qualifier naming no workspace impl type is a std/external path.
        return type_match;
    }
    if site.is_method {
        if site.self_receiver {
            return filter(candidates, |id| {
                caller.self_type.is_some() && fns[id].self_type == caller.self_type
            });
        }
        return filter(candidates, |id| {
            fns[id].has_self_param && fns[id].trait_name.is_none()
        });
    }
    let plain = filter(candidates, |id| fns[id].trait_name.is_none());
    let same_crate = filter(&plain, |id| fn_crates[id] == caller_crate);
    if same_crate.is_empty() {
        plain
    } else {
        same_crate
    }
}

fn filter(candidates: &[usize], keep: impl Fn(usize) -> bool) -> Vec<usize> {
    candidates.iter().copied().filter(|&id| keep(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    fn graph(src: &str) -> CallGraph {
        let file =
            SourceFile::from_source("ptm-rpc", "crates/ptm-rpc/src/x.rs", FileKind::Src, src);
        CallGraph::build(&Workspace::in_memory(vec![file], vec![]), &["ptm-rpc"])
    }

    fn id(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).expect(name)
    }

    #[test]
    fn direct_and_method_calls_produce_edges() {
        let g = graph(
            r#"
            struct S;
            impl S {
                fn a(&self) { self.b(); free(); }
                fn b(&self) {}
            }
            fn free() {}
            "#,
        );
        let a = id(&g, "a");
        let callees: Vec<&str> = g.edges[a]
            .iter()
            .map(|&(_, c)| g.fns[c].name.as_str())
            .collect();
        assert!(callees.contains(&"b"), "callees: {callees:?}");
        assert!(callees.contains(&"free"), "callees: {callees:?}");
    }

    #[test]
    fn std_qualified_calls_stay_unresolved_but_are_recorded() {
        let g = graph("fn a() { thread::sleep(d); }\nmod thread_shadow { }\nfn sleep() {}");
        let a = id(&g, "a");
        // `thread` is not a workspace impl type, so no edge to fn sleep.
        assert!(g.edges[a].is_empty(), "edges: {:?}", g.edges[a]);
        // But the call site itself is visible for name-based blocking checks.
        assert_eq!(g.calls[a].len(), 1);
        assert_eq!(g.calls[a][0].name, "sleep");
        assert_eq!(g.calls[a][0].qualifier.as_deref(), Some("thread"));
    }

    #[test]
    fn reachability_respects_the_cut_set() {
        let g = graph(
            r#"
            // ptm-analyze: reactor-root
            fn root() { handoff(); direct(); }
            fn handoff() { deep(); }
            fn direct() {}
            fn deep() {}
            "#,
        );
        let root = id(&g, "root");
        let handoff = id(&g, "handoff");
        let cut: HashSet<usize> = [handoff].into_iter().collect();
        let reach = g.reach(&[root], &cut);
        assert!(reach.contains_key(&id(&g, "direct")));
        assert!(reach.contains_key(&handoff), "cut fns are reached");
        assert!(
            !reach.contains_key(&id(&g, "deep")),
            "but not explored through"
        );
        assert_eq!(g.witness(&reach, id(&g, "direct")), "root -> direct");
    }

    #[test]
    fn marked_fns_are_found() {
        let g = graph("// ptm-analyze: worker-entry\nfn w() {}\nfn other() {}");
        assert_eq!(g.marked("worker-entry"), vec![id(&g, "w")]);
    }
}
