//! Extraction of dotted registry names (`rpc.server.panics`,
//! `net.server.estimate.*`) from markdown documentation tables.
//!
//! The metric and fault-site catalogues live in markdown tables whose first
//! cell is a backtick-quoted name. Cells sometimes pack several names —
//! `` `a.b.c` / `.d` `` (suffix shorthand expanding against the previous
//! name) or `` `a.b.{x,y}` `` (alternation) — and dynamic families use
//! wildcards (`*`, `<N>`). This module turns table rows into a list of
//! [`DocName`]s: exact names plus wildcard patterns with a tiny glob
//! matcher.

/// One name extracted from a doc table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocName {
    /// The name or pattern as written (after expansion).
    pub text: String,
    /// 1-based line in the doc file.
    pub line: u32,
    /// Whether the name contains `*` or `<...>` wildcards.
    pub wildcard: bool,
}

impl DocName {
    /// Whether a concrete name matches this entry (exact or glob).
    pub fn matches(&self, name: &str) -> bool {
        if !self.wildcard {
            return self.text == name;
        }
        glob_match(&to_glob(&self.text), name)
    }
}

/// Converts a doc pattern to a simple glob: `<...>` becomes `*`.
fn to_glob(pattern: &str) -> String {
    let mut out = String::new();
    let mut in_angle = false;
    for c in pattern.chars() {
        match c {
            '<' => {
                in_angle = true;
                out.push('*');
            }
            '>' => in_angle = false,
            _ if in_angle => {}
            c => out.push(c),
        }
    }
    out
}

/// Matches `pattern` (literal text plus `*` = one-or-more characters)
/// against `name`.
fn glob_match(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((prefix, rest)) => {
            let Some(tail) = name.strip_prefix(prefix) else {
                return false;
            };
            if rest.is_empty() {
                return !tail.is_empty();
            }
            // Try every non-empty split point for this `*`.
            (1..=tail.len())
                .filter(|&i| tail.is_char_boundary(i))
                .any(|i| glob_match(rest, &tail[i..]))
        }
    }
}

/// Whether a backtick span looks like a dotted registry name or pattern.
/// Uppercase is only legal inside a `<...>` placeholder (`loc<N>`).
fn is_name_shaped(span: &str) -> bool {
    let mut in_angle = false;
    !span.is_empty()
        && span.contains('.')
        && span.chars().all(|c| {
            match c {
                '<' => in_angle = true,
                '>' => in_angle = false,
                _ => {}
            }
            c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || "._{},*<>".contains(c)
                || (in_angle && c.is_ascii_uppercase())
        })
}

/// Expands `{a,b}` alternations into one name per alternative.
fn expand_alternation(name: &str) -> Vec<String> {
    let (Some(open), Some(close)) = (name.find('{'), name.find('}')) else {
        return vec![name.to_string()];
    };
    if close < open {
        return vec![name.to_string()];
    }
    let mut out = Vec::new();
    for alt in name[open + 1..close].split(',') {
        let expanded = format!("{}{}{}", &name[..open], alt.trim(), &name[close + 1..]);
        out.extend(expand_alternation(&expanded));
    }
    out
}

/// Extracts all backtick spans from one line.
fn backtick_spans(line: &str) -> Vec<String> {
    let mut spans = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        spans.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    spans
}

/// Extracts registry names from markdown table rows in `lines`.
///
/// Only lines whose first non-space character is `|` are considered. Within
/// a row, a span starting with `.` is suffix shorthand: its segments replace
/// the trailing segments of the previous full name on the same row.
/// When `section` is given, only rows between the heading containing that
/// text and the next same-or-higher-level heading are read.
pub fn table_names(lines: &[String], section: Option<&str>) -> Vec<DocName> {
    let mut names: Vec<DocName> = Vec::new();
    let mut in_section = section.is_none();
    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim_start();
        if let Some(wanted) = section {
            if line.starts_with('#') {
                in_section = line.contains(wanted);
                continue;
            }
        }
        if !in_section || !line.starts_with('|') {
            continue;
        }
        let doc_line = idx as u32 + 1;
        let mut prev_full: Option<String> = None;
        for span in backtick_spans(line) {
            if !is_name_shaped(&span) {
                continue;
            }
            let resolved = if let Some(stripped) = span.strip_prefix('.') {
                // Suffix shorthand: `.out` after `rpc.server.frames.in`
                // yields `rpc.server.frames.out`.
                let Some(base) = prev_full.as_deref() else {
                    continue;
                };
                let suffix_segments = stripped.split('.').count();
                let base_segments: Vec<&str> = base.split('.').collect();
                if base_segments.len() <= suffix_segments {
                    continue;
                }
                let kept = &base_segments[..base_segments.len() - suffix_segments];
                format!("{}.{}", kept.join("."), stripped)
            } else {
                prev_full = Some(span.clone());
                span
            };
            for expanded in expand_alternation(&resolved) {
                let wildcard = expanded.contains('*') || expanded.contains('<');
                names.push(DocName {
                    text: expanded,
                    line: doc_line,
                    wildcard,
                });
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(text: &str) -> Vec<String> {
        text.lines().map(str::to_string).collect()
    }

    #[test]
    fn extracts_plain_table_names() {
        let doc = lines("| `a.b.c` | counts things |\n| `x.y` | more |\nprose `z.w` ignored");
        let names = table_names(&doc, None);
        let texts: Vec<_> = names.iter().map(|n| n.text.as_str()).collect();
        assert_eq!(texts, vec!["a.b.c", "x.y"]);
        assert_eq!(names[0].line, 1);
    }

    #[test]
    fn expands_alternation_and_suffix_shorthand() {
        let doc =
            lines("| `net.q.{volume,point}` | queries |\n| `rpc.frames.in` / `.out` | frames |");
        let texts: Vec<_> = table_names(&doc, None)
            .into_iter()
            .map(|n| n.text)
            .collect();
        assert_eq!(
            texts,
            vec![
                "net.q.volume",
                "net.q.point",
                "rpc.frames.in",
                "rpc.frames.out"
            ]
        );
    }

    #[test]
    fn wildcards_match_but_exact_names_do_not_glob() {
        let doc =
            lines("| `net.est.*` | latencies |\n| `net.rec.loc<N>` | per-loc |\n| `a.b` | x |");
        let names = table_names(&doc, None);
        assert!(names[0].wildcard);
        assert!(names[0].matches("net.est.point"));
        assert!(!names[0].matches("net.est."));
        assert!(names[1].wildcard);
        assert!(names[1].matches("net.rec.loc3"));
        assert!(!names[1].matches("net.rec.loc"));
        assert!(!names[2].wildcard);
        assert!(names[2].matches("a.b"));
        assert!(!names[2].matches("a.bc"));
    }

    #[test]
    fn section_scoping_reads_only_the_named_section() {
        let doc = lines(
            "## Fault sites\n| `store.write` | writes |\n## Actions\n| `other.name` | nope |",
        );
        let texts: Vec<_> = table_names(&doc, Some("Fault sites"))
            .into_iter()
            .map(|n| n.text)
            .collect();
        assert_eq!(texts, vec!["store.write"]);
    }

    #[test]
    fn non_name_spans_are_ignored() {
        let doc = lines("| `--metrics out/metrics.json` | flag |\n| `File::sync_all` | api |\n| `RwLock` | type |");
        assert!(table_names(&doc, None).is_empty());
    }
}
